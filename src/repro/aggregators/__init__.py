"""Gradient filters (robust aggregation rules) — Section 4.2 and baselines."""

from .base import (
    GradientAggregator,
    validate_gradient_batch,
    validate_gradients,
)
from .bulyan import BulyanAggregator
from .cge import AveragedCGE, CGEAggregator, cge_selection, cge_selection_batch
from .clipping import CenteredClipAggregator, NormClipAggregator
from .geometric_median import (
    GeometricMedianAggregator,
    MedianOfMeansAggregator,
    geometric_median,
    geometric_median_batch,
)
from .krum import KrumAggregator, MultiKrumAggregator, krum_scores, krum_scores_batch
from .masked import (
    aggregator_label,
    degree_grouped_kernel_for,
    front_packed_counts,
    masked_cge_batch,
    masked_kernel_for,
    masked_mean_batch,
    masked_median_batch,
    masked_partial_kernel_for,
    masked_trimmed_mean_batch,
)
from .meamed import MeaMedAggregator, SignMajorityAggregator
from .mean import MeanAggregator, SumAggregator
from .registry import aggregator_descriptions, available_aggregators, make_aggregator
from .trimmed_mean import (
    CoordinateWiseMedian,
    CWTMAggregator,
    nan_last_median,
    trimmed_mean,
    trimmed_mean_batch,
)

__all__ = [
    "GradientAggregator",
    "validate_gradients",
    "validate_gradient_batch",
    "MeanAggregator",
    "SumAggregator",
    "CGEAggregator",
    "AveragedCGE",
    "cge_selection",
    "cge_selection_batch",
    "CWTMAggregator",
    "CoordinateWiseMedian",
    "trimmed_mean",
    "trimmed_mean_batch",
    "nan_last_median",
    "KrumAggregator",
    "MultiKrumAggregator",
    "krum_scores",
    "krum_scores_batch",
    "GeometricMedianAggregator",
    "MedianOfMeansAggregator",
    "geometric_median",
    "geometric_median_batch",
    "BulyanAggregator",
    "CenteredClipAggregator",
    "NormClipAggregator",
    "MeaMedAggregator",
    "SignMajorityAggregator",
    "make_aggregator",
    "available_aggregators",
    "aggregator_descriptions",
    "masked_mean_batch",
    "masked_trimmed_mean_batch",
    "masked_median_batch",
    "masked_cge_batch",
    "masked_kernel_for",
    "masked_partial_kernel_for",
    "degree_grouped_kernel_for",
    "front_packed_counts",
    "aggregator_label",
]
