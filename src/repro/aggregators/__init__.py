"""Gradient filters (robust aggregation rules) — Section 4.2 and baselines."""

from .base import GradientAggregator, validate_gradients
from .bulyan import BulyanAggregator
from .cge import AveragedCGE, CGEAggregator, cge_selection
from .clipping import CenteredClipAggregator, NormClipAggregator
from .geometric_median import (
    GeometricMedianAggregator,
    MedianOfMeansAggregator,
    geometric_median,
)
from .krum import KrumAggregator, MultiKrumAggregator, krum_scores
from .meamed import MeaMedAggregator, SignMajorityAggregator
from .mean import MeanAggregator, SumAggregator
from .registry import available_aggregators, make_aggregator
from .trimmed_mean import CoordinateWiseMedian, CWTMAggregator, trimmed_mean

__all__ = [
    "GradientAggregator",
    "validate_gradients",
    "MeanAggregator",
    "SumAggregator",
    "CGEAggregator",
    "AveragedCGE",
    "cge_selection",
    "CWTMAggregator",
    "CoordinateWiseMedian",
    "trimmed_mean",
    "KrumAggregator",
    "MultiKrumAggregator",
    "krum_scores",
    "GeometricMedianAggregator",
    "MedianOfMeansAggregator",
    "geometric_median",
    "BulyanAggregator",
    "CenteredClipAggregator",
    "NormClipAggregator",
    "MeaMedAggregator",
    "SignMajorityAggregator",
    "make_aggregator",
    "available_aggregators",
]
