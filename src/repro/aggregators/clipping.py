"""Clipping-based aggregators.

``CenteredClipAggregator`` implements the iterative centered-clipping rule of
Karimireddy, He & Jaggi (reference [28] — "Learning from history for
Byzantine robust optimization"); ``NormClipAggregator`` is the simpler
clip-to-radius-then-average rule.  Both serve as modern baselines alongside
CGE/CWTM in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import GradientAggregator, validate_gradient_batch, validate_gradients

__all__ = ["CenteredClipAggregator", "NormClipAggregator"]


class CenteredClipAggregator(GradientAggregator):
    """Iterative centered clipping around a running center.

    Each inner iteration moves the center by the average of the *clipped*
    deviations ``(g_i - c) * min(1, radius / ||g_i - c||)``.
    """

    name = "centered_clip"

    def __init__(self, radius: float = 1.0, iterations: int = 3):
        if radius <= 0:
            raise ValueError("radius must be positive")
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.radius = float(radius)
        self.iterations = int(iterations)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        center = np.median(arr, axis=0)  # robust warm start
        for _ in range(self.iterations):
            deltas = arr - center
            norms = np.linalg.norm(deltas, axis=1)
            scales = np.ones_like(norms)
            big = norms > self.radius
            scales[big] = self.radius / norms[big]
            center = center + (deltas * scales[:, None]).mean(axis=0)
        return center

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks)
        centers = np.median(arr, axis=1)
        for _ in range(self.iterations):
            deltas = arr - centers[:, None, :]
            norms = np.linalg.norm(deltas, axis=2)
            scales = np.where(
                norms > self.radius,
                self.radius / np.maximum(norms, 1e-300),
                1.0,
            )
            centers = centers + (deltas * scales[:, :, None]).mean(axis=1)
        return centers


class NormClipAggregator(GradientAggregator):
    """Clip every gradient to ``radius`` and average.

    ``radius=None`` auto-selects the median norm of the received gradients,
    a common heuristic that bounds the influence of large Byzantine vectors.
    """

    name = "norm_clip"

    def __init__(self, radius: Optional[float] = None):
        if radius is not None and radius <= 0:
            raise ValueError("radius must be positive when given")
        self.radius = radius

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        norms = np.linalg.norm(arr, axis=1)
        radius = self.radius if self.radius is not None else float(np.median(norms))
        if radius == 0.0:
            return np.zeros(arr.shape[1])
        scales = np.minimum(1.0, radius / np.maximum(norms, 1e-300))
        return (arr * scales[:, None]).mean(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks)
        norms = np.linalg.norm(arr, axis=2)
        if self.radius is not None:
            radii = np.full(arr.shape[0], float(self.radius))
        else:
            radii = np.median(norms, axis=1)
        scales = np.minimum(
            1.0, radii[:, None] / np.maximum(norms, 1e-300)
        )
        out = (arr * scales[:, :, None]).mean(axis=1)
        out[radii == 0.0] = 0.0
        return out
