"""Clipping-based aggregators.

``CenteredClipAggregator`` implements the iterative centered-clipping rule of
Karimireddy, He & Jaggi (reference [28] — "Learning from history for
Byzantine robust optimization"); ``NormClipAggregator`` is the simpler
clip-to-radius-then-average rule.  Both serve as modern baselines alongside
CGE/CWTM in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend import xp
from ..health import all_moderate, hostile_rows, overflow_safe_norms
from .base import GradientAggregator, validate_gradient_batch, validate_gradients
from .trimmed_mean import nan_last_median

__all__ = ["CenteredClipAggregator", "NormClipAggregator"]


class CenteredClipAggregator(GradientAggregator):
    """Iterative centered clipping around a running center.

    Each inner iteration moves the center by the average of the *clipped*
    deviations ``(g_i - c) * min(1, radius / ||g_i - c||)``.
    """

    name = "centered_clip"

    def __init__(self, radius: float = 1.0, iterations: int = 3):
        if radius <= 0:
            raise ValueError("radius must be positive")
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.radius = float(radius)
        self.iterations = int(iterations)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        if all_moderate(arr):
            center = np.median(arr, axis=0)  # robust warm start
            for _ in range(self.iterations):
                deltas = arr - center
                norms = np.linalg.norm(deltas, axis=1)
                scales = np.ones_like(norms)
                big = norms > self.radius
                scales[big] = self.radius / norms[big]
                center = center + (deltas * scales[:, None]).mean(axis=0)
            return center
        # A hostile row sits at an (effectively) infinite distance with an
        # undefined direction, so its clipped deviation is taken as zero;
        # the divisor stays n, matching the exact rule's mass.
        hostile = hostile_rows(arr)
        safe = np.where(hostile[:, None], 0.0, arr)
        center = nan_last_median(arr, axis=0)
        if not np.isfinite(center).all():  # past the breakdown point
            return center
        for _ in range(self.iterations):
            deltas = safe - center
            norms = np.linalg.norm(deltas, axis=1)
            scales = np.ones_like(norms)
            big = norms > self.radius
            scales[big] = self.radius / norms[big]
            scales[hostile] = 0.0
            center = center + (deltas * scales[:, None]).mean(axis=0)
        return center

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        if all_moderate(arr):
            hostile = None
            safe = arr
            centers = xp.median(arr, axis=1)
        else:
            hostile = hostile_rows(arr)
            safe = xp.where(hostile[:, :, None], 0.0, arr)
            centers = nan_last_median(arr, axis=1)
            # Trials past the breakdown point keep a non-finite center;
            # zero it inside the loop so the arithmetic stays silent and
            # restore it afterwards for the engines' screen to catch.
            broken = ~np.isfinite(centers).all(axis=1)
            broken_centers = centers[broken]
            centers = xp.where(broken[:, None], 0.0, centers)
        for _ in range(self.iterations):
            deltas = safe - centers[:, None, :]
            norms = xp.norm(deltas, axis=2)
            scales = xp.where(
                norms > self.radius,
                self.radius / np.maximum(norms, 1e-300),
                1.0,
            )
            if hostile is not None:
                scales = xp.where(hostile, 0.0, scales)
            centers = centers + (deltas * scales[:, :, None]).mean(axis=1)
        if hostile is not None and broken.any():
            centers[broken] = broken_centers
        return centers


class NormClipAggregator(GradientAggregator):
    """Clip every gradient to ``radius`` and average.

    ``radius=None`` auto-selects the median norm of the received gradients,
    a common heuristic that bounds the influence of large Byzantine vectors.
    """

    name = "norm_clip"

    def __init__(self, radius: Optional[float] = None):
        if radius is not None and radius <= 0:
            raise ValueError("radius must be positive when given")
        self.radius = radius

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        if all_moderate(arr):
            norms = np.linalg.norm(arr, axis=1)
            hostile = None
        else:
            # Hostile rows rank with norm +Inf and, their direction being
            # undefined, contribute zero instead of a radius-length step.
            norms = overflow_safe_norms(arr)
            hostile = np.isinf(norms)
            arr = np.where(hostile[:, None], 0.0, arr)
        radius = self.radius if self.radius is not None else float(np.median(norms))
        if radius == 0.0:
            return np.zeros(arr.shape[1])
        with np.errstate(invalid="ignore"):
            scales = np.minimum(1.0, radius / np.maximum(norms, 1e-300))
        if hostile is not None:
            scales = np.where(hostile, 0.0, scales)
        return (arr * scales[:, None]).mean(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        if all_moderate(arr):
            norms = xp.norm(arr, axis=2)
            hostile = None
        else:
            norms = overflow_safe_norms(arr)
            hostile = np.isinf(norms)
            arr = xp.where(hostile[:, :, None], 0.0, arr)
        if self.radius is not None:
            radii = xp.full(arr.shape[0], float(self.radius))
        else:
            radii = xp.median(norms, axis=1)
        with np.errstate(invalid="ignore"):
            scales = np.minimum(
                1.0, radii[:, None] / np.maximum(norms, 1e-300)
            )
        if hostile is not None:
            scales = xp.where(hostile, 0.0, scales)
        out = (arr * scales[:, :, None]).mean(axis=1)
        out[radii == 0.0] = 0.0
        return out
