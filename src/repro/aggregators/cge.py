"""Comparative Gradient Elimination (CGE) — equation (23).

The server sorts the n received gradients by Euclidean norm (ties broken by
agent index, matching "ties broken arbitrarily") and outputs the *vector sum*
of the n − f gradients with smallest norms.  Theorems 4 and 5 give its
(f, O(ε))-resilience under (2f, ε)-redundancy.

``AveragedCGE`` divides by n − f; the direction is identical, so resilience
properties transfer with rescaled step sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend import xp
from ..health import all_moderate, overflow_safe_norms
from .base import (
    GradientAggregator,
    check_attendance,
    require_fault_capacity,
    validate_gradient_batch,
    validate_gradients,
)

__all__ = ["CGEAggregator", "AveragedCGE", "cge_selection", "cge_selection_batch"]


def _norm_keys(arr: np.ndarray) -> np.ndarray:
    """Row-norm sort keys over the trailing axis, hostile-input safe.

    All-finite moderate stacks take the exact ``np.linalg.norm`` path;
    stacks containing NaN/±Inf or overflow-scale rows switch to
    :func:`~repro.health.overflow_safe_norms`, which ranks every hostile
    row ``+Inf`` (ties broken by agent index as usual) without squaring
    anything that would overflow.
    """
    if all_moderate(arr):
        return xp.norm(arr, axis=-1)
    return overflow_safe_norms(arr)


def cge_selection(gradients: np.ndarray, f: int) -> np.ndarray:
    """Indices of the ``n - f`` smallest-norm gradients in sorted order.

    Sorting is by ``(norm, agent index)`` so the rule is deterministic — the
    paper allows arbitrary tie-breaking and determinism is required for the
    deterministic-algorithm framework of Section 1.2.  Hostile rows sort
    last (norm key ``+Inf``), so at most ``f`` of them are eliminated
    exactly like any other largest-norm gradients.
    """
    arr = validate_gradients(gradients, allow_nonfinite=True)
    n = arr.shape[0]
    require_fault_capacity(n, f, minimum_honest=1)
    norms = _norm_keys(arr)
    order = xp.lexsort((xp.arange(n), norms))
    return order[: n - f]


def cge_selection_batch(stacks: np.ndarray, f: int) -> np.ndarray:
    """Batched :func:`cge_selection`: ``(S, n, d) -> (S, n - f)`` indices.

    A stable argsort on the norms reproduces the (norm, agent index)
    lexicographic order of the per-item rule for every trial at once.
    """
    arr = validate_gradient_batch(stacks, allow_nonfinite=True)
    n = arr.shape[1]
    require_fault_capacity(n, f, minimum_honest=1)
    norms = _norm_keys(arr)
    order = xp.argsort(norms, axis=1, kind="stable")
    return order[:, : n - f]


def _cge_gather(stacks: np.ndarray, f: int) -> np.ndarray:
    """Retained gradients per trial, norm-sorted: ``(S, n - f, d)``."""
    selected = cge_selection_batch(stacks, f)
    return xp.take_along_axis(stacks, selected[:, :, None], axis=1)


class CGEAggregator(GradientAggregator):
    """Sum of the ``n - f`` smallest-norm gradients (equation (23)).

    ``expected_n`` (set by the registry) makes attendance explicit: the
    rule always eliminates ``f`` of whatever arrived, but when fewer than
    ``expected_n`` gradients are received the shortfall is named in the
    capacity error instead of being conflated with a mis-shaped stack, and
    receiving *more* than ``expected_n`` is rejected outright.
    """

    name = "cge"

    def __init__(self, f: int, expected_n: Optional[int] = None):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)
        self.expected_n = None if expected_n is None else int(expected_n)

    def _check_attendance(self, n_received: int) -> None:
        if self.expected_n is not None:
            check_attendance(
                n_received, self.expected_n, self.f,
                removed=self.f, minimum_honest=1,
            )

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        self._check_attendance(arr.shape[0])
        selected = cge_selection(arr, self.f)
        # Hostile rows beyond the f eliminated ones (past the rule's
        # breakdown point) may survive into the sum; the errstate keeps
        # even that case warning-free — the engines' candidate screen is
        # what turns a non-finite aggregate into a quarantine.
        with np.errstate(invalid="ignore", over="ignore"):
            return arr[selected].sum(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        self._check_attendance(arr.shape[1])
        with np.errstate(invalid="ignore", over="ignore"):
            return _cge_gather(arr, self.f).sum(axis=1)


class AveragedCGE(CGEAggregator):
    """CGE normalized by the number of retained gradients.

    Useful when comparing against mean-style rules at a common step size
    (e.g. in the Appendix-K learning experiments).
    """

    name = "cge_mean"

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        self._check_attendance(arr.shape[0])
        selected = cge_selection(arr, self.f)
        with np.errstate(invalid="ignore", over="ignore"):
            return arr[selected].mean(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        self._check_attendance(arr.shape[1])
        with np.errstate(invalid="ignore", over="ignore"):
            return _cge_gather(arr, self.f).mean(axis=1)
