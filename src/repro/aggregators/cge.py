"""Comparative Gradient Elimination (CGE) — equation (23).

The server sorts the n received gradients by Euclidean norm (ties broken by
agent index, matching "ties broken arbitrarily") and outputs the *vector sum*
of the n − f gradients with smallest norms.  Theorems 4 and 5 give its
(f, O(ε))-resilience under (2f, ε)-redundancy.

``AveragedCGE`` divides by n − f; the direction is identical, so resilience
properties transfer with rescaled step sizes.
"""

from __future__ import annotations

import numpy as np

from .base import GradientAggregator, require_fault_capacity, validate_gradients

__all__ = ["CGEAggregator", "AveragedCGE", "cge_selection"]


def cge_selection(gradients: np.ndarray, f: int) -> np.ndarray:
    """Indices of the ``n - f`` smallest-norm gradients in sorted order.

    Sorting is by ``(norm, agent index)`` so the rule is deterministic — the
    paper allows arbitrary tie-breaking and determinism is required for the
    deterministic-algorithm framework of Section 1.2.
    """
    arr = validate_gradients(gradients)
    n = arr.shape[0]
    require_fault_capacity(n, f, minimum_honest=1)
    norms = np.linalg.norm(arr, axis=1)
    order = np.lexsort((np.arange(n), norms))
    return order[: n - f]


class CGEAggregator(GradientAggregator):
    """Sum of the ``n - f`` smallest-norm gradients (equation (23))."""

    name = "cge"

    def __init__(self, f: int):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        selected = cge_selection(arr, self.f)
        return arr[selected].sum(axis=0)


class AveragedCGE(CGEAggregator):
    """CGE normalized by the number of retained gradients.

    Useful when comparing against mean-style rules at a common step size
    (e.g. in the Appendix-K learning experiments).
    """

    name = "cge_mean"

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        selected = cge_selection(arr, self.f)
        return arr[selected].mean(axis=0)
