"""Name-based construction of gradient filters.

The experiment harness and CLI refer to filters by short names ("cge",
"cwtm", ...).  ``make_aggregator`` builds the filter, supplying ``n``/``f``
context where the rule requires it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import GradientAggregator
from .bulyan import BulyanAggregator
from .cge import AveragedCGE, CGEAggregator
from .clipping import CenteredClipAggregator, NormClipAggregator
from .geometric_median import GeometricMedianAggregator, MedianOfMeansAggregator
from .krum import KrumAggregator, MultiKrumAggregator
from .meamed import MeaMedAggregator, SignMajorityAggregator
from .mean import MeanAggregator, SumAggregator
from .trimmed_mean import CoordinateWiseMedian, CWTMAggregator

__all__ = ["make_aggregator", "available_aggregators"]

_BUILDERS: Dict[str, Callable[[int, int], GradientAggregator]] = {
    "mean": lambda n, f: MeanAggregator(),
    "sum": lambda n, f: SumAggregator(),
    "cge": lambda n, f: CGEAggregator(f),
    "cge_mean": lambda n, f: AveragedCGE(f),
    "cwtm": lambda n, f: CWTMAggregator(f),
    "median": lambda n, f: CoordinateWiseMedian(),
    "krum": lambda n, f: KrumAggregator(f),
    "multikrum": lambda n, f: MultiKrumAggregator(f, m=max(1, n - 2 * f)),
    "geomedian": lambda n, f: GeometricMedianAggregator(),
    "gmom": lambda n, f: MedianOfMeansAggregator(groups=max(1, 2 * f + 1)),
    "bulyan": lambda n, f: BulyanAggregator(f),
    "centered_clip": lambda n, f: CenteredClipAggregator(),
    "norm_clip": lambda n, f: NormClipAggregator(),
    "meamed": lambda n, f: MeaMedAggregator(f),
    "sign_majority": lambda n, f: SignMajorityAggregator(),
}


def available_aggregators() -> List[str]:
    """Sorted registry names."""
    return sorted(_BUILDERS)


def make_aggregator(name: str, n: int, f: int) -> GradientAggregator:
    """Build the filter ``name`` for a system of ``n`` agents, ``f`` faulty."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown aggregator {name!r}; known: {', '.join(available_aggregators())}"
        ) from None
    return builder(int(n), int(f))
