"""Name-based construction of gradient filters.

The experiment harness and CLI refer to filters by short names ("cge",
"cwtm", ...).  ``make_aggregator`` builds the filter, supplying ``n``/``f``
context where the rule requires it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .base import GradientAggregator
from .bulyan import BulyanAggregator
from .cge import AveragedCGE, CGEAggregator
from .clipping import CenteredClipAggregator, NormClipAggregator
from .geometric_median import GeometricMedianAggregator, MedianOfMeansAggregator
from .krum import KrumAggregator, MultiKrumAggregator
from .meamed import MeaMedAggregator, SignMajorityAggregator
from .mean import MeanAggregator, SumAggregator
from .trimmed_mean import CoordinateWiseMedian, CWTMAggregator

__all__ = ["make_aggregator", "available_aggregators", "aggregator_descriptions"]

#: Registry: name -> (one-line description, builder).  Keeping the
#: description next to the builder makes it impossible to register a filter
#: without one (``repro-experiments list`` renders these).
_REGISTRY: Dict[str, Tuple[str, Callable[[int, int], GradientAggregator]]] = {
    "mean": (
        "arithmetic mean (no robustness; the fault-free baseline)",
        lambda n, f: MeanAggregator(),
    ),
    "sum": (
        "plain vector sum of all received gradients",
        lambda n, f: SumAggregator(),
    ),
    "cge": (
        "Comparative Gradient Elimination: sum of n-f smallest norms (eq. 23)",
        lambda n, f: CGEAggregator(f, expected_n=n),
    ),
    "cge_mean": (
        "CGE normalized by the number of retained gradients",
        lambda n, f: AveragedCGE(f, expected_n=n),
    ),
    "cwtm": (
        "coordinate-wise trimmed mean, trim level f (eq. 24)",
        lambda n, f: CWTMAggregator(f, expected_n=n),
    ),
    "median": (
        "coordinate-wise median",
        lambda n, f: CoordinateWiseMedian(),
    ),
    "krum": (
        "Krum: gradient with the smallest n-f-1 nearest-neighbor score",
        lambda n, f: KrumAggregator(f),
    ),
    "multikrum": (
        "Multi-Krum: average of the m best Krum scorers",
        lambda n, f: MultiKrumAggregator(f, m=max(1, n - 2 * f)),
    ),
    "geomedian": (
        "geometric median (Weiszfeld with Vardi-Zhang correction)",
        lambda n, f: GeometricMedianAggregator(),
    ),
    "gmom": (
        "geometric median of bucket means (GMoM)",
        lambda n, f: MedianOfMeansAggregator(groups=max(1, 2 * f + 1)),
    ),
    "bulyan": (
        "Bulyan: Multi-Krum selection then per-coordinate trimming",
        lambda n, f: BulyanAggregator(f),
    ),
    "centered_clip": (
        "iterative centered clipping around a running center",
        lambda n, f: CenteredClipAggregator(),
    ),
    "norm_clip": (
        "mean of norm-clipped gradients",
        lambda n, f: NormClipAggregator(),
    ),
    "meamed": (
        "mean-around-median: per-coordinate closest n-f to the median",
        lambda n, f: MeaMedAggregator(f),
    ),
    "sign_majority": (
        "coordinate-wise sign majority vote (signSGD-style)",
        lambda n, f: SignMajorityAggregator(),
    ),
}


def available_aggregators() -> List[str]:
    """Sorted registry names."""
    return sorted(_REGISTRY)


def aggregator_descriptions() -> Dict[str, str]:
    """One-line description per registered filter, sorted by name."""
    return {name: _REGISTRY[name][0] for name in available_aggregators()}


def make_aggregator(name: str, n: int, f: int) -> GradientAggregator:
    """Build the filter ``name`` for a system of ``n`` agents, ``f`` faulty."""
    try:
        _, builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown aggregator {name!r}; known: {', '.join(available_aggregators())}"
        ) from None
    return builder(int(n), int(f))
