"""Averaging aggregators — the non-robust baselines.

Plain averaging is "technically a gradient-filter ... however, averaging is
not quite robust against Byzantine faulty agents" (Section 4).  The paper's
figures include plain gradient descent as the failure baseline; ``SumAggregator``
matches the un-normalized sum the CGE analysis is written against.
"""

from __future__ import annotations

import numpy as np

from .base import GradientAggregator, validate_gradient_batch, validate_gradients

__all__ = ["MeanAggregator", "SumAggregator"]


class MeanAggregator(GradientAggregator):
    """Coordinate-wise arithmetic mean of all received gradients.

    Strict: an average has no defined non-finite semantics (one NaN row
    poisons it), so hostile rows raise
    :class:`~repro.health.QuarantineError` and the engines quarantine the
    trial instead.
    """

    name = "mean"
    quarantines_on_nonfinite = True

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        return arr.mean(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        return validate_gradient_batch(stacks).mean(axis=1)


class SumAggregator(GradientAggregator):
    """Sum of all received gradients (the classic DGD aggregate).

    Strict, like :class:`MeanAggregator`: hostile rows refuse rather than
    poison the sum.
    """

    name = "sum"
    quarantines_on_nonfinite = True

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        return arr.sum(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        return validate_gradient_batch(stacks).sum(axis=1)
