"""Masked (neighborhood-wise) variants of the batched gradient filters.

The decentralized graph engine hands every agent the messages of its closed
in-neighborhood.  On a *regular* topology those neighborhoods all have the
same size ``k`` and the standard ``aggregate_batch`` kernels apply after
folding agents into the batch axis (``(S, n, k, d) -> (S * n, k, d)``).  On
an *irregular* graph (e.g. Erdős–Rényi) neighborhood sizes differ, so the
engine pads every neighborhood to ``k = max closed in-degree`` and the
kernels here aggregate under a validity mask — one tensor expression per
filter, no per-agent Python loop.

Conventions shared by every kernel:

* ``values`` has shape ``(S, n, k, d)``: ``S`` lockstep trials, ``n``
  receiving agents, ``k`` padded neighborhood slots, dimension ``d``;
* ``mask`` has shape ``(n, k)``: ``mask[i, s]`` marks slot ``s`` of agent
  ``i``'s neighborhood valid.  Slot order is ascending sender id, which
  makes the deterministic tie-breaking of the masked kernels coincide with
  the unmasked ones on full masks;
* invalid slots are ignored entirely — they carry no NaN poison and never
  influence the trim/selection order statistics.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..backend import xp
from ..health import (
    OVERFLOW_LIMIT,
    QuarantineError,
    current_round_context,
)
from ..telemetry.recorder import current_recorder

__all__ = [
    "aggregator_label",
    "masked_mean_batch",
    "masked_trimmed_mean_batch",
    "masked_median_batch",
    "masked_cge_batch",
    "masked_kernel_for",
    "masked_partial_kernel_for",
    "front_packed_counts",
    "degree_grouped_kernel_for",
    "masked_min_attendance",
    "masked_min_attendance_for_tolerance",
    "aggregate_batch_masked",
]


def _count_kernel(kernel: str) -> None:
    """Count one masked-kernel invocation on the ambient recorder.

    A single attribute check when recording is off, so the kernels stay
    on the zero-overhead contract of :mod:`repro.telemetry.recorder`.
    """
    recorder = current_recorder()
    if recorder.enabled:
        recorder.count("masked_kernel_calls", kernel=kernel)


def _check_masked(
    values: np.ndarray,
    mask: np.ndarray,
    allow_nonfinite: bool = False,
    label: Optional[str] = None,
):
    """Validate a masked stack; returns ``(values, mask, counts, finite_ok)``.

    ``finite_ok`` reports whether every *valid* slot is finite.  Strict
    callers (``allow_nonfinite=False``) instead get a typed
    :class:`~repro.health.QuarantineError` naming the receiving agents,
    the affected trials, the ambient round, and the aggregator ``label``.
    """
    values = xp.asarray(values, dtype=float)
    if values.ndim != 4:
        raise ValueError(
            f"expected (S, n, k, d) neighborhood stacks, got shape {values.shape}"
        )
    mask = xp.asarray(mask, dtype=bool)
    if mask.shape != values.shape[1:3]:
        raise ValueError(
            f"mask shape {mask.shape} does not match neighborhoods "
            f"{values.shape[1:3]}"
        )
    counts = mask.sum(axis=1)  # (n,) valid messages per receiving agent
    if counts.min() < 1:
        raise ValueError("every agent needs at least one valid message")
    # Finite check on the valid slots only — invalid slots may hold
    # arbitrary padding.  OR-ing the inverted mask beats the boolean
    # fancy-index gather the engines would otherwise pay per kernel call.
    finite_ok = bool((np.isfinite(values) | ~mask[None, :, :, None]).all())
    if not finite_ok and not allow_nonfinite:
        bad = ~np.isfinite(values) & mask[None, :, :, None]
        receivers = xp.to_numpy(xp.nonzero(bad.any(axis=(0, 2, 3)))[0])
        trials = xp.to_numpy(xp.nonzero(bad.any(axis=(1, 2, 3)))[0])
        round_index, context_label = current_round_context()
        label = label if label is not None else context_label
        parts = [
            "gradients contain non-finite entries in the neighborhoods of "
            f"agents {[int(i) for i in receivers]}",
            f"in trials {[int(s) for s in trials]}",
        ]
        if round_index is not None:
            parts.append(f"at round {round_index}")
        if label is not None:
            parts.append(f"(aggregator {label})")
        raise QuarantineError(
            " ".join(parts),
            agent_indices=receivers,
            trial_indices=trials,
            round_index=round_index,
            aggregator=label,
        )
    return values, mask, counts, finite_ok


def _take_slot(csum: np.ndarray, slot: np.ndarray) -> np.ndarray:
    """Per-agent gather along the slot axis: ``csum[s, i, slot[i], :]``."""
    s, n, k, d = csum.shape
    flat = xp.ascontiguousarray(csum).reshape(s, n * k, d)
    return flat[:, xp.arange(n) * k + slot, :]


def masked_mean_batch(
    values: np.ndarray, mask: np.ndarray, label: Optional[str] = None
) -> np.ndarray:
    """Mean of the valid neighborhood messages: ``(S, n, k, d) -> (S, n, d)``.

    The mean has no defense against a single hostile entry, so this kernel
    keeps the strict finite check (it ``quarantines_on_nonfinite``): a
    hostile valid slot raises :class:`~repro.health.QuarantineError` naming
    the receivers, trials, round, and ``label``.
    """
    _count_kernel("mean")
    values, mask, counts, _ = _check_masked(values, mask, label=label)
    weighted = xp.where(mask[None, :, :, None], values, 0.0)
    return weighted.sum(axis=2) / counts[None, :, None]


def _per_receiver_tolerance(
    tolerance, counts: np.ndarray, name: str
) -> np.ndarray:
    """Broadcast a scalar or per-receiver tolerance to ``counts``' shape."""
    arr = xp.asarray(tolerance, dtype=int)
    if arr.ndim == 0:
        arr = xp.broadcast_to(arr, counts.shape)
    elif arr.shape != counts.shape:
        raise ValueError(
            f"per-receiver {name} has shape {arr.shape}, expected scalar "
            f"or {counts.shape}"
        )
    if (arr < 0).any():
        raise ValueError(f"{name} must be non-negative")
    return arr


def masked_trimmed_mean_batch(
    values: np.ndarray, mask: np.ndarray, trim
) -> np.ndarray:
    """Neighborhood-wise coordinate trimmed mean under a validity mask.

    For every agent and coordinate, drops the ``trim`` largest and ``trim``
    smallest of its *valid* entries and averages the rest — the CWTM rule of
    equation (24) applied per in-neighborhood.  ``trim`` is a scalar or a
    per-receiver ``(n,)`` array (the delay-tolerant engines shrink the trim
    per agent with its round's attendance).  Implemented with one sort
    (+inf padding pushes invalid slots past every valid order statistic) and
    a prefix-sum gather, so ragged neighborhoods cost no Python loop.

    Hostile valid entries (non-finite or overflow-scale) rank with the
    extremes — NaN sorts past the +Inf padding, ±Inf sorts outermost — so
    with at most ``trim`` of them per tail they land in the trimmed region.
    On such inputs the trimmed slots are zeroed before the prefix sum: the
    zeros cancel exactly in the upper−lower subtraction, so a ±Inf tail can
    no longer poison the cumulative sum and a ±1e300 tail can no longer
    cancel the kept entries catastrophically.  Past the breakdown point a
    hostile entry survives inside the kept range and the output goes
    non-finite — honestly, for the engines' screen to quarantine.
    """
    _count_kernel("trimmed_mean")
    values, mask, counts, finite_ok = _check_masked(
        values, mask, allow_nonfinite=True
    )
    trim = _per_receiver_tolerance(trim, counts, "trim")
    kept = counts - 2 * trim
    if kept.min() < 1:
        worst = int(kept.argmin())
        raise ValueError(
            f"agent {worst} has {int(counts[worst])} messages, cannot trim "
            f"{int(trim[worst])} from both sides"
        )
    padded = xp.where(mask[None, :, :, None], values, np.inf)
    ordered = xp.sort(padded, axis=2)
    hostile = not finite_ok
    if not hostile:
        # Cheap overflow screen: only the extreme order statistics of each
        # valid region can exceed the moderate band, so two slot gathers
        # replace a full pass over the stack.
        smallest = _take_slot(ordered, xp.zeros_like(counts))
        largest = _take_slot(ordered, counts - 1)
        hostile = bool(
            (np.abs(smallest) > OVERFLOW_LIMIT).any()
            or (np.abs(largest) > OVERFLOW_LIMIT).any()
        )
    if hostile:
        slots = xp.arange(ordered.shape[2])
        keep_slot = (slots[None, :] >= trim[:, None]) & (
            slots[None, :] <= (counts - trim - 1)[:, None]
        )  # (n, k): the slots whose sum the subtraction actually keeps
        ordered = xp.where(keep_slot[None, :, :, None], ordered, 0.0)
        with np.errstate(invalid="ignore", over="ignore"):
            csum = xp.cumsum(ordered, axis=2)
    else:
        csum = xp.cumsum(ordered, axis=2)
    upper = _take_slot(csum, counts - trim - 1)
    if trim.any():
        lower = _take_slot(csum, np.maximum(trim - 1, 0))
        upper = upper - xp.where((trim > 0)[None, :, None], lower, 0.0)
    return upper / kept[None, :, None]


def masked_median_batch(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Neighborhood-wise coordinate median under a validity mask.

    Hostile valid entries rank with the extremes (NaN past the +Inf
    padding), so with fewer than half of a neighborhood hostile the median
    slots stay finite; past that the blend goes non-finite — silently, via
    the errstate — for the engines' screen to quarantine.
    """
    _count_kernel("median")
    values, mask, counts, finite_ok = _check_masked(
        values, mask, allow_nonfinite=True
    )
    padded = xp.where(mask[None, :, :, None], values, np.inf)
    ordered = xp.sort(padded, axis=2)
    low = _take_slot(ordered, (counts - 1) // 2)
    high = _take_slot(ordered, counts // 2)
    if finite_ok:
        return 0.5 * (low + high)
    with np.errstate(invalid="ignore", over="ignore"):
        return 0.5 * (low + high)


def masked_cge_batch(
    values: np.ndarray, mask: np.ndarray, f, average: bool = False
) -> np.ndarray:
    """Neighborhood-wise Comparative Gradient Elimination under a mask.

    Each agent keeps the ``c_i - f`` smallest-norm messages of its ``c_i``
    valid ones (ties broken by slot order — ascending sender id) and outputs
    their vector sum (equation (23)), or their mean when ``average``.
    ``f`` is a scalar or a per-receiver ``(n,)`` array.

    Hostile valid messages (whose norm is NaN or overflows to +Inf) rank
    last with norm +Inf — the overflow-safe semantics of the unmasked CGE
    kernel — so with at most ``f`` of them per neighborhood they are always
    eliminated; more than ``f`` drives the affected receiver rows to NaN
    for the engines' screen to quarantine.
    """
    _count_kernel("cge")
    values, mask, counts, _ = _check_masked(values, mask, allow_nonfinite=True)
    f = _per_receiver_tolerance(f, counts, "f")
    kept = counts - f
    if kept.min() < 1:
        worst = int(kept.argmin())
        raise ValueError(
            f"agent {worst} has {int(counts[worst])} messages, cannot "
            f"eliminate f={int(f[worst])}"
        )
    # Zero out invalid slots before the norm: they may hold arbitrary junk
    # (padding), and norming junk can overflow even though it is never kept.
    safe = xp.where(mask[None, :, :, None], values, 0.0)
    with np.errstate(over="ignore", invalid="ignore"):
        raw = xp.norm(safe, axis=3)
    norms = xp.where(mask[None, :, :] & np.isfinite(raw), raw, np.inf)
    hostile = not bool((np.isfinite(raw) | ~mask[None, :, :]).all())
    order = xp.argsort(norms, axis=2, kind="stable")
    gathered = xp.take_along_axis(values, order[:, :, :, None], axis=2)
    if hostile:
        # Every +Inf-ranked slot (invalid padding or hostile message) sits
        # past the kept prefix when at most f messages are hostile; zeroing
        # them keeps the prefix sums exact and warning-free.  Receivers
        # past the breakdown point — fewer finite-norm messages than they
        # must keep — are forced to NaN instead of a silently wrong sum.
        dropped = xp.take_along_axis(np.isinf(norms), order, axis=2)
        gathered = xp.where(dropped[:, :, :, None], 0.0, gathered)
        with np.errstate(invalid="ignore", over="ignore"):
            csum = xp.cumsum(gathered, axis=2)
    else:
        csum = xp.cumsum(gathered, axis=2)
    total = _take_slot(csum, kept - 1)
    if hostile:
        finite_counts = np.isfinite(norms).sum(axis=2)  # (S, n)
        broken = kept[None, :] > finite_counts
        if broken.any():
            total = xp.where(broken[:, :, None], np.nan, total)
    if average:
        return total / kept[None, :, None]
    return total


def aggregator_label(aggregator) -> str:
    """The filter's registry name when it has one, else its class name.

    Rejection messages must *name* the offending filter — ``"krum"`` reads
    better in a traceback than ``KrumAggregator`` alone, so both appear.
    """
    name = getattr(aggregator, "name", None)
    type_name = type(aggregator).__name__
    if isinstance(name, str) and name and name != "abstract":
        return f"{name!r} ({type_name})"
    return type_name


def masked_kernel_for(
    aggregator,
) -> Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]]:
    """The masked kernel matching a registered aggregator, if one exists.

    Returns a ``(values, mask) -> (S, n, d)`` callable for the filters with
    neighborhood-wise variants (mean, CWTM, coordinate median, CGE), or
    ``None`` — callers fall back to regular-topology folding or reject the
    configuration with a clear error.
    """
    from .cge import AveragedCGE, CGEAggregator
    from .mean import MeanAggregator
    from .trimmed_mean import CoordinateWiseMedian, CWTMAggregator

    if isinstance(aggregator, AveragedCGE):
        return lambda values, mask: masked_cge_batch(
            values, mask, aggregator.f, average=True
        )
    if isinstance(aggregator, CGEAggregator):
        return lambda values, mask: masked_cge_batch(values, mask, aggregator.f)
    if isinstance(aggregator, CWTMAggregator):
        return lambda values, mask: masked_trimmed_mean_batch(
            values, mask, aggregator.f
        )
    if isinstance(aggregator, CoordinateWiseMedian):
        return lambda values, mask: masked_median_batch(values, mask)
    if isinstance(aggregator, MeanAggregator):
        return lambda values, mask: masked_mean_batch(
            values, mask, label=aggregator_label(aggregator)
        )
    return None


def front_packed_counts(mask: np.ndarray) -> Optional[np.ndarray]:
    """Per-row valid counts when ``mask`` rows are front-packed, else ``None``.

    A mask is *front-packed* when every row lists its valid slots as a
    contiguous prefix — the layout
    :meth:`repro.distsys.topology.CommunicationTopology.neighborhoods`
    produces (ascending sender id, padding at the tail).  Degree-grouped
    dispatch requires it: slicing a bucket's prefix then yields a dense
    stack with no invalid slots.
    """
    mask = xp.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected an (n, k) mask, got shape {mask.shape}")
    counts = mask.sum(axis=1)
    slots = xp.arange(mask.shape[1])
    if bool((mask == (slots[None, :] < counts[:, None])).all()):
        return counts
    return None


def degree_grouped_kernel_for(
    aggregator, mask: np.ndarray
) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """Degree-bucketed dense dispatch over a *static* validity mask.

    The masked kernels pad every neighborhood to the widest degree ``k``
    and drag that padding through every sort and prefix sum.  When the
    mask is static (a topology's closed in-neighborhoods) and
    front-packed, receivers can instead be bucketed by valid count: each
    bucket's prefix slice ``values[:, ids, :degree, :]`` is dense, so the
    plain ``aggregate_batch`` kernel applies per bucket — no mask
    machinery, no widest-pad work, and on a mostly-regular graph the
    ragged cost is paid only by the odd-degree buckets.  Agrees with the
    one-shot masked kernel to float rounding (the masked kernels reduce
    the same valid slots in the same order).

    Returns a ``(S, n, k, d) -> (S, n, d)`` callable closed over the
    bucket plan, or ``None`` when the aggregator has no masked kernel or
    the mask is not front-packed — callers fall back to the masked
    kernel.
    """
    if masked_kernel_for(aggregator) is None:
        return None
    counts = front_packed_counts(mask)
    if counts is None:
        return None
    counts = xp.to_numpy(counts)
    buckets = [
        (int(degree), np.flatnonzero(counts == degree))
        for degree in np.unique(counts)
    ]
    n = int(counts.shape[0])

    def dispatch(values: np.ndarray) -> np.ndarray:
        _count_kernel("degree_grouped")
        values = xp.asarray(values, dtype=float)
        if values.ndim != 4 or values.shape[1] != n:
            raise ValueError(
                f"expected (S, {n}, k, d) neighborhood stacks, got shape "
                f"{values.shape}"
            )
        s, d = values.shape[0], values.shape[3]
        out = xp.empty((s, n, d))
        for degree, ids in buckets:
            dense = values[:, ids, :degree, :].reshape(
                s * ids.size, degree, d
            )
            out[:, ids] = aggregator.aggregate_batch(dense).reshape(
                s, ids.size, d
            )
        return out

    return dispatch


def aggregate_batch_masked(
    aggregator, values: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Apply an aggregator's masked kernel to ``S`` partially-attended stacks.

    ``values`` is ``(S, n, d)`` — one padded gradient stack per trial — and
    ``mask`` is ``(S, n)`` marking the slots that actually hold a received
    message; returns the ``(S, d)`` aggregates.  The trials ride the masked
    kernels' *receiver* axis (each receiver row carries its own validity
    mask), so a whole asynchronous batch with per-trial attendance patterns
    is one kernel invocation.  Entries at invalid slots are ignored entirely
    but must be finite (the kernels validate valid slots only, so callers
    may leave true-gradient padding in place).  Raises for aggregators
    without a masked kernel.
    """
    kernel = masked_kernel_for(aggregator)
    if kernel is None:
        raise ValueError(
            f"aggregator {aggregator_label(aggregator)} has no masked kernel"
        )
    values = xp.asarray(values, dtype=float)
    if values.ndim != 3:
        raise ValueError(
            f"expected (S, n, d) gradient stacks, got shape {values.shape}"
        )
    mask = xp.asarray(mask, dtype=bool)
    if mask.shape != values.shape[:2]:
        raise ValueError(
            f"mask shape {mask.shape} does not match stacks "
            f"{values.shape[:2]}"
        )
    return kernel(values[None], mask)[0]


def masked_min_attendance(aggregator) -> int:
    """Fewest valid messages the matching masked kernel can aggregate.

    The asynchronous engine's ``"masked"`` missing-value policy keeps the
    filter's declared tolerance ``f`` even under partial attendance, so a
    round with fewer valid messages than this cannot produce a safe update
    and must stall.  Raises for aggregators without a masked kernel (use
    :func:`masked_kernel_for` to detect those first).
    """
    from .cge import CGEAggregator
    from .trimmed_mean import CoordinateWiseMedian, CWTMAggregator

    if isinstance(aggregator, CGEAggregator):  # includes AveragedCGE
        return aggregator.f + 1
    if isinstance(aggregator, CWTMAggregator):
        return 2 * aggregator.f + 1
    if masked_kernel_for(aggregator) is not None:
        return 1  # mean / coordinate median aggregate any non-empty set
    raise ValueError(
        f"aggregator {aggregator_label(aggregator)} has no masked kernel"
    )


def masked_partial_kernel_for(
    aggregator,
) -> Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]]:
    """The *tolerance-parameterized* masked kernel matching an aggregator.

    Returns a ``(values, mask, tolerance) -> (S, n, d)`` callable where
    ``tolerance`` is a per-receiver ``(n,)`` int array overriding the
    filter's declared ``f``/trim — the hook the delay-tolerant engines use
    to shrink the tolerance per agent with its round's attendance (filters
    without a tolerance parameter — mean, coordinate median — ignore it).
    Returns ``None`` for filters without a masked kernel.
    """
    from .cge import AveragedCGE, CGEAggregator
    from .mean import MeanAggregator
    from .trimmed_mean import CoordinateWiseMedian, CWTMAggregator

    if isinstance(aggregator, AveragedCGE):
        return lambda values, mask, tolerance: masked_cge_batch(
            values, mask, tolerance, average=True
        )
    if isinstance(aggregator, CGEAggregator):
        return lambda values, mask, tolerance: masked_cge_batch(
            values, mask, tolerance
        )
    if isinstance(aggregator, CWTMAggregator):
        return lambda values, mask, tolerance: masked_trimmed_mean_batch(
            values, mask, tolerance
        )
    if isinstance(aggregator, CoordinateWiseMedian):
        return lambda values, mask, tolerance: masked_median_batch(
            values, mask
        )
    if isinstance(aggregator, MeanAggregator):
        return lambda values, mask, tolerance: masked_mean_batch(
            values, mask, label=aggregator_label(aggregator)
        )
    return None


def masked_min_attendance_for_tolerance(aggregator, tolerance) -> np.ndarray:
    """Per-receiver attendance floor of the tolerance-parameterized kernel.

    The fewest valid messages each receiver needs for
    :func:`masked_partial_kernel_for`'s kernel to produce a defined output
    at the given per-receiver ``tolerance``: ``2·trim + 1`` for CWTM,
    ``f + 1`` for CGE, ``1`` for mean / coordinate median.
    """
    from .cge import CGEAggregator
    from .trimmed_mean import CWTMAggregator

    tolerance = xp.asarray(tolerance, dtype=int)
    if isinstance(aggregator, CGEAggregator):  # includes AveragedCGE
        return tolerance + 1
    if isinstance(aggregator, CWTMAggregator):
        return 2 * tolerance + 1
    if masked_kernel_for(aggregator) is not None:
        return xp.ones_like(tolerance)
    raise ValueError(
        f"aggregator {aggregator_label(aggregator)} has no masked kernel"
    )
