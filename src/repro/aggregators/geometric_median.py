"""Geometric median and geometric median-of-means.

The geometric median minimizes ``sum_i ||z - g_i||`` and is the robust core
of the GMoM filter of Chen, Su & Xu (reference [14]).  Computed with the
Weiszfeld fixed-point iteration, safeguarded against iterates landing on an
input point.
"""

from __future__ import annotations

import numpy as np

from .base import GradientAggregator, validate_gradients

__all__ = [
    "geometric_median",
    "GeometricMedianAggregator",
    "MedianOfMeansAggregator",
]


def geometric_median(
    points: np.ndarray, tolerance: float = 1e-10, max_iterations: int = 1_000
) -> np.ndarray:
    """Weiszfeld iteration for the geometric median of row-stacked points."""
    arr = validate_gradients(points)
    if arr.shape[0] == 1:
        return arr[0].copy()
    z = arr.mean(axis=0)
    for _ in range(max_iterations):
        dists = np.linalg.norm(arr - z, axis=1)
        at_point = dists < 1e-14
        if at_point.any():
            # Weiszfeld is undefined on data points; nudge off the point.
            z = z + 1e-10 * np.ones_like(z)
            dists = np.linalg.norm(arr - z, axis=1)
        weights = 1.0 / dists
        new_z = (weights[:, None] * arr).sum(axis=0) / weights.sum()
        if np.linalg.norm(new_z - z) <= tolerance * (1.0 + np.linalg.norm(z)):
            return new_z
        z = new_z
    return z


class GeometricMedianAggregator(GradientAggregator):
    """Geometric median of all received gradients."""

    name = "geomedian"

    def __init__(self, tolerance: float = 1e-10, max_iterations: int = 1_000):
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return geometric_median(
            gradients, tolerance=self.tolerance, max_iterations=self.max_iterations
        )


class MedianOfMeansAggregator(GradientAggregator):
    """Geometric median of means (GMoM, reference [14]).

    Gradients are partitioned (by agent index) into ``groups`` buckets whose
    means are combined by geometric median.  With ``groups == n`` this
    reduces to the plain geometric median.
    """

    name = "gmom"

    def __init__(self, groups: int):
        if groups < 1:
            raise ValueError("groups must be at least 1")
        self.groups = int(groups)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        n = arr.shape[0]
        if self.groups > n:
            raise ValueError(f"cannot split {n} gradients into {self.groups} groups")
        buckets = np.array_split(np.arange(n), self.groups)
        means = np.vstack([arr[idx].mean(axis=0) for idx in buckets])
        return geometric_median(means)
