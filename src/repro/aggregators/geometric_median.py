"""Geometric median and geometric median-of-means.

The geometric median minimizes ``sum_i ||z - g_i||`` and is the robust core
of the GMoM filter of Chen, Su & Xu (reference [14]).  Computed with the
Weiszfeld fixed-point iteration; iterates that land on an input point are
handled by the Vardi–Zhang correction (Vardi & Zhang, PNAS 2000), which
keeps the update well-defined without biasing the iterate — the historical
"nudge by a constant" trick shifts every coordinate identically and can
itself land on another input point.
"""

from __future__ import annotations

import numpy as np

from ..backend import xp
from ..health import all_moderate, hostile_rows
from .base import GradientAggregator, validate_gradient_batch, validate_gradients

__all__ = [
    "geometric_median",
    "geometric_median_batch",
    "GeometricMedianAggregator",
    "MedianOfMeansAggregator",
]

#: distance below which an iterate counts as sitting on an input point
_COINCIDENCE_TOL = 1e-14


def _snap_to_best_input(arr: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Return the input point that beats the iterate ``z``, if any.

    Weiszfeld converges sublinearly when the geometric median sits *at* an
    input point of multiplicity ``eta`` with ``||R|| ~ eta`` (the boundary of
    the Vardi–Zhang optimality condition): the iterate crawls toward the
    point and the step-size stopping rule can fire while still measurably
    away from the optimum.  Since in every such case the optimum *is* an
    input point, comparing the objective at ``z`` against the objective at
    each input point and keeping the argmin guarantees the result is never
    worse than the best input point.
    """
    return _snap_to_best_input_batch(arr[None, :, :], z[None, :])[0]


def _input_point_objectives(arr: np.ndarray) -> np.ndarray:
    """``sum_i ||x_i - x_j||`` per input point ``j`` of each stack: ``(S, n)``.

    Uses the Gram identity ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` (as
    the Krum kernel does) so no ``(S, n, n, d)`` difference tensor is ever
    materialized.  The stack is centered first: the objective only depends
    on differences, and the raw identity cancels catastrophically when the
    points share a large common offset (``eps * ||x||^2`` absolute error).
    """
    arr = arr - arr.mean(axis=1, keepdims=True)
    squares = xp.einsum("snd,snd->sn", arr, arr)
    gram = xp.einsum("sid,sjd->sij", arr, arr)
    distances_sq = np.maximum(
        squares[:, :, None] + squares[:, None, :] - 2.0 * gram, 0.0
    )
    return np.sqrt(distances_sq).sum(axis=1)


def geometric_median(
    points: np.ndarray, tolerance: float = 1e-14, max_iterations: int = 20_000
) -> np.ndarray:
    """Weiszfeld iteration for the geometric median of row-stacked points.

    When the iterate coincides with one or more input points, the plain
    Weiszfeld map is undefined; the Vardi–Zhang correction blends the
    weighted mean of the *other* points with the current iterate:
    ``z' = (1 - eta/r) T(z) + (eta/r) z`` where ``eta`` is the multiplicity
    of the coincident point and ``r = ||sum_i (x_i - z)/||x_i - z||||``.
    If ``r <= eta`` the coincident point *is* the geometric median.

    Hostile rows (NaN/±Inf or overflow-scale, which would poison the
    Weiszfeld weights or overflow the snap objective's squared
    distances) are excluded — weight zero — and the median is taken over
    the moderate rows.  A stack with *no* moderate row returns all-NaN,
    which the engines' candidate screen turns into a quarantine.
    """
    arr = validate_gradients(points, allow_nonfinite=True)
    if not all_moderate(arr):
        moderate = ~hostile_rows(arr)
        if not moderate.any():
            return np.full(arr.shape[1], np.nan)
        arr = arr[moderate]
    if arr.shape[0] == 1:
        return arr[0].copy()
    return _snap_to_best_input(arr, _weiszfeld(arr, tolerance, max_iterations))


def _weiszfeld(
    arr: np.ndarray, tolerance: float, max_iterations: int
) -> np.ndarray:
    z = arr.mean(axis=0)
    for _ in range(max_iterations):
        diffs = arr - z
        dists = np.linalg.norm(diffs, axis=1)
        at_point = dists < _COINCIDENCE_TOL
        weights = np.where(at_point, 0.0, 1.0 / np.where(at_point, 1.0, dists))
        total = weights.sum()
        if total == 0.0:
            return z  # every input coincides with the iterate
        t_z = (weights[:, None] * arr).sum(axis=0) / total
        if at_point.any():
            r_vec = (weights[:, None] * diffs).sum(axis=0)
            r = float(np.linalg.norm(r_vec))
            eta = float(at_point.sum())
            if r <= eta:
                return z  # optimality condition: z is the geometric median
            step = eta / r
            new_z = (1.0 - step) * t_z + step * z
        else:
            new_z = t_z
        if np.linalg.norm(new_z - z) <= tolerance * (1.0 + np.linalg.norm(z)):
            return new_z
        z = new_z
    return z


def geometric_median_batch(
    stacks: np.ndarray, tolerance: float = 1e-14, max_iterations: int = 20_000
) -> np.ndarray:
    """Batched Weiszfeld: geometric median of each ``(n, d)`` stack.

    Runs the same iteration as :func:`geometric_median` on all ``S`` stacks
    in lockstep; trials that converge are frozen while the rest continue, so
    the per-trial results match the scalar routine.

    Trials containing hostile rows drop to the scalar routine (which
    excludes those rows); the remaining trials keep the lockstep path.
    """
    arr = validate_gradient_batch(stacks, allow_nonfinite=True)
    n = arr.shape[1]
    if n == 1:
        return arr[:, 0, :].copy()
    if all_moderate(arr):
        return _snap_to_best_input_batch(
            arr, _weiszfeld_batch(arr, tolerance, max_iterations)
        )
    bad_trials = hostile_rows(arr).any(axis=1)
    out = np.empty((arr.shape[0], arr.shape[2]))
    good = ~bad_trials
    if good.any():
        out[good] = _snap_to_best_input_batch(
            arr[good], _weiszfeld_batch(arr[good], tolerance, max_iterations)
        )
    for s in xp.to_numpy(xp.nonzero(bad_trials)[0]):
        out[s] = geometric_median(
            xp.to_numpy(arr[s]), tolerance=tolerance, max_iterations=max_iterations
        )
    return out


def _snap_to_best_input_batch(arr: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_snap_to_best_input` over ``S`` stacks."""
    objectives = _input_point_objectives(arr)
    best = objectives.argmin(axis=1)
    rows = xp.arange(arr.shape[0])
    z_objectives = xp.norm(arr - out[:, None, :], axis=2).sum(axis=1)
    snap = objectives[rows, best] < z_objectives
    return xp.where(snap[:, None], arr[rows, best], out)


def _weiszfeld_batch(
    arr: np.ndarray, tolerance: float, max_iterations: int
) -> np.ndarray:
    out = arr.mean(axis=1)
    # Iterate on compact copies of the unconverged trials; converged rows
    # are scattered back and dropped, so the steady-state inner iteration
    # pays no masking or gather cost.
    order = np.arange(arr.shape[0])  # original index of each compact row
    a = arr
    za = out.copy()
    for _ in range(max_iterations):
        diffs = a - za[:, None, :]
        dists = xp.norm(diffs, axis=2)
        at_point = dists < _COINCIDENCE_TOL
        if at_point.any():
            weights = xp.where(
                at_point, 0.0, 1.0 / xp.where(at_point, 1.0, dists)
            )
            totals = weights.sum(axis=1)
            degenerate = totals == 0.0
            t_z = (weights[:, :, None] * a).sum(axis=1) / xp.where(
                degenerate, 1.0, totals
            )[:, None]
            eta = at_point.sum(axis=1).astype(float)
            r_vec = (weights[:, :, None] * diffs).sum(axis=1)
            r = xp.norm(r_vec, axis=1)
            coincident = eta > 0.0
            stalled = degenerate | (coincident & (r <= eta))
            step = xp.where(
                coincident & ~stalled, eta / xp.where(r == 0.0, 1.0, r), 0.0
            )
            new_z = (1.0 - step)[:, None] * t_z + step[:, None] * za
            new_z = xp.where(stalled[:, None], za, new_z)
        else:
            weights = 1.0 / dists
            t_z = (weights[:, :, None] * a).sum(axis=1)
            t_z /= weights.sum(axis=1)[:, None]
            stalled = np.zeros(a.shape[0], dtype=bool)
            new_z = t_z
        converged = xp.norm(new_z - za, axis=1) <= tolerance * (
            1.0 + xp.norm(za, axis=1)
        )
        finished = stalled | converged
        if finished.any():
            out[order[finished]] = new_z[finished]
            keep = ~finished
            if not keep.any():
                return out
            a = a[keep]
            order = order[keep]
            za = new_z[keep]
        else:
            za = new_z
    out[order] = za
    return out


class GeometricMedianAggregator(GradientAggregator):
    """Geometric median of all received gradients."""

    name = "geomedian"

    def __init__(self, tolerance: float = 1e-14, max_iterations: int = 20_000):
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return geometric_median(
            gradients, tolerance=self.tolerance, max_iterations=self.max_iterations
        )

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        return geometric_median_batch(
            stacks, tolerance=self.tolerance, max_iterations=self.max_iterations
        )


class MedianOfMeansAggregator(GradientAggregator):
    """Geometric median of means (GMoM, reference [14]).

    Gradients are partitioned (by agent index) into ``groups`` buckets whose
    means are combined by geometric median.  With ``groups == n`` this
    reduces to the plain geometric median.
    """

    name = "gmom"

    def __init__(self, groups: int):
        if groups < 1:
            raise ValueError("groups must be at least 1")
        self.groups = int(groups)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        n = arr.shape[0]
        if self.groups > n:
            raise ValueError(f"cannot split {n} gradients into {self.groups} groups")
        buckets = np.array_split(np.arange(n), self.groups)
        # A hostile row poisons only its own bucket's mean; the errstate
        # keeps the poisoned means silent (±Inf sums go NaN) and the
        # geometric median then excludes those buckets as hostile rows.
        with np.errstate(invalid="ignore", over="ignore"):
            means = np.vstack([arr[idx].mean(axis=0) for idx in buckets])
        return geometric_median(means)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        n = arr.shape[1]
        if self.groups > n:
            raise ValueError(f"cannot split {n} gradients into {self.groups} groups")
        buckets = np.array_split(np.arange(n), self.groups)
        with np.errstate(invalid="ignore", over="ignore"):
            means = xp.stack(
                [arr[:, idx, :].mean(axis=1) for idx in buckets], axis=1
            )
        return geometric_median_batch(means)
