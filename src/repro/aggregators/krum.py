"""Krum and Multi-Krum (Blanchard et al., NeurIPS 2017 — reference [6]).

Krum scores each received gradient by the sum of its squared distances to its
``n - f - 2`` nearest neighbours and outputs the gradient with the lowest
score; Multi-Krum averages the ``m`` best-scored gradients.  Included as the
best-known baseline filter the paper cites in Section 2.2.
"""

from __future__ import annotations

import numpy as np

from .base import GradientAggregator, require_fault_capacity, validate_gradients

__all__ = ["KrumAggregator", "MultiKrumAggregator", "krum_scores"]


def krum_scores(
    gradients: np.ndarray, f: int, allow_zero_neighbours: bool = False
) -> np.ndarray:
    """Krum score of each gradient (lower is more trustworthy).

    The score of gradient ``i`` is the sum of squared Euclidean distances to
    its ``n - f - 2`` closest other gradients.  ``allow_zero_neighbours``
    permits ``n - f - 2 == 0`` (all scores zero) — needed by Bulyan's
    recursive selection, whose final rounds shrink the candidate pool to
    ``2f + 1`` gradients.
    """
    arr = validate_gradients(gradients)
    n = arr.shape[0]
    minimum = 2 if allow_zero_neighbours else 3
    require_fault_capacity(n, f, minimum_honest=minimum)
    neighbours = n - f - 2
    if neighbours == 0:
        return np.zeros(n)
    diffs = arr[:, None, :] - arr[None, :, :]
    sq_dists = np.einsum("ijk,ijk->ij", diffs, diffs)
    np.fill_diagonal(sq_dists, np.inf)
    nearest = np.sort(sq_dists, axis=1)[:, :neighbours]
    return nearest.sum(axis=1)


class KrumAggregator(GradientAggregator):
    """Select the single gradient with the smallest Krum score."""

    name = "krum"

    def __init__(self, f: int):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        scores = krum_scores(arr, self.f)
        return arr[int(np.argmin(scores))].copy()


class MultiKrumAggregator(GradientAggregator):
    """Average the ``m`` gradients with the smallest Krum scores."""

    name = "multikrum"

    def __init__(self, f: int, m: int = 1):
        if f < 0:
            raise ValueError("f must be non-negative")
        if m < 1:
            raise ValueError("m must be at least 1")
        self.f = int(f)
        self.m = int(m)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        if self.m > arr.shape[0]:
            raise ValueError(
                f"cannot select m={self.m} from {arr.shape[0]} gradients"
            )
        scores = krum_scores(arr, self.f)
        best = np.argsort(scores, kind="stable")[: self.m]
        return arr[best].mean(axis=0)
