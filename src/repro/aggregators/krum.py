"""Krum and Multi-Krum (Blanchard et al., NeurIPS 2017 — reference [6]).

Krum scores each received gradient by the sum of its squared distances to its
``n - f - 2`` nearest neighbours and outputs the gradient with the lowest
score; Multi-Krum averages the ``m`` best-scored gradients.  Included as the
best-known baseline filter the paper cites in Section 2.2.
"""

from __future__ import annotations

import numpy as np

from ..backend import xp
from ..health import all_moderate, hostile_rows
from .base import (
    GradientAggregator,
    require_fault_capacity,
    validate_gradient_batch,
    validate_gradients,
)

__all__ = [
    "KrumAggregator",
    "MultiKrumAggregator",
    "krum_scores",
    "krum_scores_batch",
]


def _neighbour_count(n: int, f: int, allow_zero_neighbours: bool) -> int:
    minimum = 2 if allow_zero_neighbours else 3
    require_fault_capacity(n, f, minimum_honest=minimum)
    return n - f - 2


def _clean(arr: np.ndarray) -> bool:
    """Whether the exact gram-identity path is safe: finite and moderate."""
    return all_moderate(arr)


def krum_scores(
    gradients: np.ndarray, f: int, allow_zero_neighbours: bool = False
) -> np.ndarray:
    """Krum score of each gradient (lower is more trustworthy).

    The score of gradient ``i`` is the sum of squared Euclidean distances to
    its ``n - f - 2`` closest other gradients.  ``allow_zero_neighbours``
    permits ``n - f - 2 == 0`` (all scores zero) — needed by Bulyan's
    recursive selection, whose final rounds shrink the candidate pool to
    ``2f + 1`` gradients.

    Pairwise distances come from the gram-matrix identity
    ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a·b`` — O(n^2 d) work and O(n^2)
    memory instead of the O(n^2 d) broadcasted differences tensor — and the
    nearest-neighbour sum uses a partial ``np.partition`` rather than a full
    sort of every row.

    Hostile rows (NaN/±Inf or overflow-scale, whose squared distances
    would poison or overflow the gram identity) are ranked last: every
    distance to them is ``+Inf`` and their own score is ``+Inf``, so with
    at most ``f`` hostile rows the selection never touches them and the
    moderate rows' distances stay exact.
    """
    arr = validate_gradients(gradients, allow_nonfinite=True)
    n = arr.shape[0]
    neighbours = _neighbour_count(n, f, allow_zero_neighbours)
    clean = _clean(arr)
    if neighbours == 0:
        scores = np.zeros(n)
        if not clean:
            scores[hostile_rows(arr)] = np.inf
        return scores
    if clean:
        safe = arr
        hostile = None
    else:
        hostile = hostile_rows(arr)
        safe = np.where(hostile[:, None], 0.0, arr)
    sq_norms = np.einsum("id,id->i", safe, safe)
    sq_dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (safe @ safe.T)
    np.maximum(sq_dists, 0.0, out=sq_dists)  # clamp cancellation noise
    if hostile is not None:
        sq_dists[hostile, :] = np.inf
        sq_dists[:, hostile] = np.inf
    np.fill_diagonal(sq_dists, np.inf)
    nearest = np.partition(sq_dists, neighbours - 1, axis=1)[:, :neighbours]
    return nearest.sum(axis=1)


def krum_scores_batch(
    stacks: np.ndarray, f: int, allow_zero_neighbours: bool = False
) -> np.ndarray:
    """Batched :func:`krum_scores`: ``(S, n, d) -> (S, n)``.

    Trials without hostile rows score identically on either path (their
    ``np.where`` pass-through leaves every value bit-unchanged), so one
    hostile trial never perturbs its batch neighbours.
    """
    arr = validate_gradient_batch(stacks, allow_nonfinite=True)
    n = arr.shape[1]
    neighbours = _neighbour_count(n, f, allow_zero_neighbours)
    clean = _clean(arr)
    if neighbours == 0:
        scores = xp.zeros(arr.shape[:2])
        if not clean:
            scores[hostile_rows(arr)] = np.inf
        return scores
    if clean:
        safe = arr
        hostile = None
    else:
        hostile = hostile_rows(arr)
        safe = xp.where(hostile[:, :, None], 0.0, arr)
    sq_norms = xp.einsum("snd,snd->sn", safe, safe)
    grams = xp.einsum("snd,smd->snm", safe, safe)
    sq_dists = sq_norms[:, :, None] + sq_norms[:, None, :] - 2.0 * grams
    np.maximum(sq_dists, 0.0, out=sq_dists)
    if hostile is not None:
        sq_dists[hostile[:, :, None] | hostile[:, None, :]] = np.inf
    diag = xp.arange(n)
    sq_dists[:, diag, diag] = np.inf
    nearest = xp.partition(sq_dists, neighbours - 1, axis=2)[:, :, :neighbours]
    return nearest.sum(axis=2)


class KrumAggregator(GradientAggregator):
    """Select the single gradient with the smallest Krum score."""

    name = "krum"

    def __init__(self, f: int):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        scores = krum_scores(arr, self.f)
        return arr[int(np.argmin(scores))].copy()

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        scores = krum_scores_batch(arr, self.f)
        winners = scores.argmin(axis=1)
        return arr[xp.arange(arr.shape[0]), winners].copy()


class MultiKrumAggregator(GradientAggregator):
    """Average the ``m`` gradients with the smallest Krum scores."""

    name = "multikrum"

    def __init__(self, f: int, m: int = 1):
        if f < 0:
            raise ValueError("f must be non-negative")
        if m < 1:
            raise ValueError("m must be at least 1")
        self.f = int(f)
        self.m = int(m)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        if self.m > arr.shape[0]:
            raise ValueError(
                f"cannot select m={self.m} from {arr.shape[0]} gradients"
            )
        scores = krum_scores(arr, self.f)
        best = np.argsort(scores, kind="stable")[: self.m]
        # Past the breakdown point (> f hostile rows) a hostile row can
        # score into the best m; keep even that mean warning-free.
        with np.errstate(invalid="ignore", over="ignore"):
            return arr[best].mean(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        if self.m > arr.shape[1]:
            raise ValueError(
                f"cannot select m={self.m} from {arr.shape[1]} gradients"
            )
        scores = krum_scores_batch(arr, self.f)
        best = xp.argsort(scores, axis=1, kind="stable")[:, : self.m]
        chosen = xp.take_along_axis(arr, best[:, :, None], axis=1)
        with np.errstate(invalid="ignore", over="ignore"):
            return chosen.mean(axis=1)
