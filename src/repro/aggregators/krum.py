"""Krum and Multi-Krum (Blanchard et al., NeurIPS 2017 — reference [6]).

Krum scores each received gradient by the sum of its squared distances to its
``n - f - 2`` nearest neighbours and outputs the gradient with the lowest
score; Multi-Krum averages the ``m`` best-scored gradients.  Included as the
best-known baseline filter the paper cites in Section 2.2.
"""

from __future__ import annotations

import numpy as np

from .base import (
    GradientAggregator,
    require_fault_capacity,
    validate_gradient_batch,
    validate_gradients,
)

__all__ = [
    "KrumAggregator",
    "MultiKrumAggregator",
    "krum_scores",
    "krum_scores_batch",
]


def _neighbour_count(n: int, f: int, allow_zero_neighbours: bool) -> int:
    minimum = 2 if allow_zero_neighbours else 3
    require_fault_capacity(n, f, minimum_honest=minimum)
    return n - f - 2


def krum_scores(
    gradients: np.ndarray, f: int, allow_zero_neighbours: bool = False
) -> np.ndarray:
    """Krum score of each gradient (lower is more trustworthy).

    The score of gradient ``i`` is the sum of squared Euclidean distances to
    its ``n - f - 2`` closest other gradients.  ``allow_zero_neighbours``
    permits ``n - f - 2 == 0`` (all scores zero) — needed by Bulyan's
    recursive selection, whose final rounds shrink the candidate pool to
    ``2f + 1`` gradients.

    Pairwise distances come from the gram-matrix identity
    ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a·b`` — O(n^2 d) work and O(n^2)
    memory instead of the O(n^2 d) broadcasted differences tensor — and the
    nearest-neighbour sum uses a partial ``np.partition`` rather than a full
    sort of every row.
    """
    arr = validate_gradients(gradients)
    n = arr.shape[0]
    neighbours = _neighbour_count(n, f, allow_zero_neighbours)
    if neighbours == 0:
        return np.zeros(n)
    sq_norms = np.einsum("id,id->i", arr, arr)
    sq_dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (arr @ arr.T)
    np.maximum(sq_dists, 0.0, out=sq_dists)  # clamp cancellation noise
    np.fill_diagonal(sq_dists, np.inf)
    nearest = np.partition(sq_dists, neighbours - 1, axis=1)[:, :neighbours]
    return nearest.sum(axis=1)


def krum_scores_batch(
    stacks: np.ndarray, f: int, allow_zero_neighbours: bool = False
) -> np.ndarray:
    """Batched :func:`krum_scores`: ``(S, n, d) -> (S, n)``."""
    arr = validate_gradient_batch(stacks)
    n = arr.shape[1]
    neighbours = _neighbour_count(n, f, allow_zero_neighbours)
    if neighbours == 0:
        return np.zeros(arr.shape[:2])
    sq_norms = np.einsum("snd,snd->sn", arr, arr)
    grams = np.einsum("snd,smd->snm", arr, arr)
    sq_dists = sq_norms[:, :, None] + sq_norms[:, None, :] - 2.0 * grams
    np.maximum(sq_dists, 0.0, out=sq_dists)
    diag = np.arange(n)
    sq_dists[:, diag, diag] = np.inf
    nearest = np.partition(sq_dists, neighbours - 1, axis=2)[:, :, :neighbours]
    return nearest.sum(axis=2)


class KrumAggregator(GradientAggregator):
    """Select the single gradient with the smallest Krum score."""

    name = "krum"

    def __init__(self, f: int):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        scores = krum_scores(arr, self.f)
        return arr[int(np.argmin(scores))].copy()

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks)
        scores = krum_scores_batch(arr, self.f)
        winners = np.argmin(scores, axis=1)
        return arr[np.arange(arr.shape[0]), winners].copy()


class MultiKrumAggregator(GradientAggregator):
    """Average the ``m`` gradients with the smallest Krum scores."""

    name = "multikrum"

    def __init__(self, f: int, m: int = 1):
        if f < 0:
            raise ValueError("f must be non-negative")
        if m < 1:
            raise ValueError("m must be at least 1")
        self.f = int(f)
        self.m = int(m)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        if self.m > arr.shape[0]:
            raise ValueError(
                f"cannot select m={self.m} from {arr.shape[0]} gradients"
            )
        scores = krum_scores(arr, self.f)
        best = np.argsort(scores, kind="stable")[: self.m]
        return arr[best].mean(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks)
        if self.m > arr.shape[1]:
            raise ValueError(
                f"cannot select m={self.m} from {arr.shape[1]} gradients"
            )
        scores = krum_scores_batch(arr, self.f)
        best = np.argsort(scores, axis=1, kind="stable")[:, : self.m]
        chosen = np.take_along_axis(arr, best[:, :, None], axis=1)
        return chosen.mean(axis=1)
