"""Mean-around-median and sign-majority aggregators.

Two more baselines from works the paper cites:

* MeaMed (Xie, Koyejo & Gupta — "Generalized Byzantine-tolerant SGD",
  reference [53]): per coordinate, average the ``n − f`` received entries
  closest to the coordinate median — a cheaper cousin of the trimmed mean
  that keeps exactly n − f values.
* signSGD with majority vote (Bernstein et al., reference [3]): the server
  outputs the coordinate-wise majority of gradient *signs*; magnitude
  information is discarded, which makes the rule inherently bounded and
  fault-tolerant at the cost of scale-free updates (pair with small
  constant steps).
"""

from __future__ import annotations

import numpy as np

from ..backend import xp
from .base import (
    GradientAggregator,
    require_fault_capacity,
    validate_gradient_batch,
    validate_gradients,
)
from .trimmed_mean import nan_last_median

__all__ = ["MeaMedAggregator", "SignMajorityAggregator"]


class MeaMedAggregator(GradientAggregator):
    """Coordinate-wise mean of the ``n − f`` entries nearest the median."""

    name = "meamed"

    def __init__(self, f: int):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        n = arr.shape[0]
        require_fault_capacity(n, self.f, minimum_honest=1)
        keep = n - self.f
        if np.isfinite(arr).all():
            median = np.median(arr, axis=0)
            gaps = np.abs(arr - median)
            order = np.argsort(gaps, axis=0, kind="stable")[:keep]
            nearest = np.take_along_axis(arr, order, axis=0)
            return nearest.mean(axis=0)
        # Hostile entries have gap +Inf (or NaN, which argsort places even
        # later), so with at most f hostile rows the kept n − f entries of
        # every coordinate are finite.
        median = nan_last_median(arr, axis=0)
        with np.errstate(invalid="ignore", over="ignore"):
            gaps = np.abs(arr - median)
            order = np.argsort(gaps, axis=0, kind="stable")[:keep]
            nearest = np.take_along_axis(arr, order, axis=0)
            return nearest.mean(axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        n = arr.shape[1]
        require_fault_capacity(n, self.f, minimum_honest=1)
        keep = n - self.f
        if np.isfinite(arr).all():
            median = xp.median(arr, axis=1)
            gaps = np.abs(arr - median[:, None, :])
        else:
            median = nan_last_median(arr, axis=1)
            with np.errstate(invalid="ignore", over="ignore"):
                gaps = np.abs(arr - median[:, None, :])
        order = xp.argsort(gaps, axis=1, kind="stable")[:, :keep, :]
        nearest = xp.take_along_axis(arr, order, axis=1)
        with np.errstate(invalid="ignore", over="ignore"):
            return nearest.mean(axis=1)


class SignMajorityAggregator(GradientAggregator):
    """Coordinate-wise sign of the sum of signs (majority vote).

    Output entries are in {−1, 0, +1}; ties vote 0.  ``scale`` sets the
    magnitude of the emitted step direction.
    """

    name = "sign_majority"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        votes = self._votes(arr).sum(axis=0)
        return self.scale * np.sign(votes)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        votes = self._votes(arr).sum(axis=1)
        return self.scale * np.sign(votes)

    @staticmethod
    def _votes(arr: np.ndarray) -> np.ndarray:
        """Per-entry votes in {−1, 0, +1}: ``±Inf`` votes its sign, NaN abstains."""
        if np.isfinite(arr).all():
            return np.sign(arr)
        with np.errstate(invalid="ignore"):
            signs = np.sign(arr)
        return xp.where(np.isnan(signs), 0.0, signs)
