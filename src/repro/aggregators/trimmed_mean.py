"""Coordinate-wise trimmed mean (CWTM) — equation (24) — and relatives.

For each coordinate ``k`` the server discards the ``f`` largest and ``f``
smallest of the received k-th entries and averages the remaining ``n - 2f``.
Theorem 6 gives its (f, D'ε)-resilience under (2f, ε)-redundancy and the
gradient-dissimilarity Assumption 5.

``CoordinateWiseMedian`` is the ``f = floor((n-1)/2)`` limiting relative used
widely in the robust-learning literature (e.g. Yin et al., reference [55]).
"""

from __future__ import annotations

import numpy as np

from .base import GradientAggregator, require_fault_capacity, validate_gradients

__all__ = ["CWTMAggregator", "CoordinateWiseMedian", "trimmed_mean"]


def trimmed_mean(values: np.ndarray, trim: int) -> np.ndarray:
    """Column-wise mean after dropping ``trim`` high and low entries.

    ``values`` is ``(n, d)``; returns the ``(d,)`` vector whose k-th entry is
    the average of the middle ``n - 2 trim`` order statistics of column k.
    """
    arr = validate_gradients(values)
    n = arr.shape[0]
    if trim < 0:
        raise ValueError("trim must be non-negative")
    require_fault_capacity(n, 2 * trim, minimum_honest=1)
    if trim == 0:
        return arr.mean(axis=0)
    ordered = np.sort(arr, axis=0)
    return ordered[trim : n - trim].mean(axis=0)


class CWTMAggregator(GradientAggregator):
    """Coordinate-wise trimmed mean with trim level ``f`` (equation (24))."""

    name = "cwtm"

    def __init__(self, f: int):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return trimmed_mean(gradients, self.f)


class CoordinateWiseMedian(GradientAggregator):
    """Coordinate-wise median of the received gradients."""

    name = "median"

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients)
        return np.median(arr, axis=0)
