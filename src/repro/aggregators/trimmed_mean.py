"""Coordinate-wise trimmed mean (CWTM) — equation (24) — and relatives.

For each coordinate ``k`` the server discards the ``f`` largest and ``f``
smallest of the received k-th entries and averages the remaining ``n - 2f``.
Theorem 6 gives its (f, D'ε)-resilience under (2f, ε)-redundancy and the
gradient-dissimilarity Assumption 5.

``CoordinateWiseMedian`` is the ``f = floor((n-1)/2)`` limiting relative used
widely in the robust-learning literature (e.g. Yin et al., reference [55]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..backend import xp
from .base import (
    GradientAggregator,
    check_attendance,
    require_fault_capacity,
    validate_gradient_batch,
    validate_gradients,
)

__all__ = [
    "CWTMAggregator",
    "CoordinateWiseMedian",
    "nan_last_median",
    "trimmed_mean",
    "trimmed_mean_batch",
]


def trimmed_mean(values: np.ndarray, trim: int) -> np.ndarray:
    """Column-wise mean after dropping ``trim`` high and low entries.

    ``values`` is ``(n, d)``; returns the ``(d,)`` vector whose k-th entry is
    the average of the middle ``n - 2 trim`` order statistics of column k.
    A two-sided ``np.partition`` places every kept entry between the two
    pivot order statistics without fully sorting each column — the mean of
    the kept slice does not depend on its internal order.

    Hostile entries trim naturally: ``np.partition`` orders ``-Inf`` first
    and ``NaN`` past ``+Inf``, so with at most ``trim`` hostile rows every
    non-finite (or overflow-scale) entry lands in a discarded tail and the
    kept middle stays finite.
    """
    arr = validate_gradients(values, allow_nonfinite=True)
    n = arr.shape[0]
    if trim < 0:
        raise ValueError("trim must be non-negative")
    require_fault_capacity(n, 2 * trim, minimum_honest=1)
    if trim == 0:
        return arr.mean(axis=0)
    partitioned = np.partition(arr, (trim, n - trim - 1), axis=0)
    return partitioned[trim : n - trim].mean(axis=0)


def trimmed_mean_batch(stacks: np.ndarray, trim: int) -> np.ndarray:
    """Batched :func:`trimmed_mean`: ``(S, n, d) -> (S, d)``."""
    arr = validate_gradient_batch(stacks, allow_nonfinite=True)
    n = arr.shape[1]
    if trim < 0:
        raise ValueError("trim must be non-negative")
    require_fault_capacity(n, 2 * trim, minimum_honest=1)
    if trim == 0:
        return arr.mean(axis=1)
    partitioned = xp.partition(arr, (trim, n - trim - 1), axis=1)
    return partitioned[:, trim : n - trim].mean(axis=1)


class CWTMAggregator(GradientAggregator):
    """Coordinate-wise trimmed mean with trim level ``f`` (equation (24)).

    ``expected_n`` (set by the registry) makes attendance explicit, as for
    :class:`~repro.aggregators.cge.CGEAggregator`: the rule trims ``f``
    from both sides of whatever arrived, rejecting over-attendance and
    naming the shortfall when a thin round cannot support the trim.
    """

    name = "cwtm"

    def __init__(self, f: int, expected_n: Optional[int] = None):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)
        self.expected_n = None if expected_n is None else int(expected_n)

    def _check_attendance(self, n_received: int) -> None:
        if self.expected_n is not None:
            check_attendance(
                n_received, self.expected_n, self.f,
                removed=2 * self.f, minimum_honest=1,
            )

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        self._check_attendance(arr.shape[0])
        return trimmed_mean(arr, self.f)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        self._check_attendance(arr.shape[1])
        return trimmed_mean_batch(arr, self.f)


def nan_last_median(arr: np.ndarray, axis: int) -> np.ndarray:
    """Median under the sort order that places ``NaN`` past ``+Inf``.

    ``np.median`` propagates any NaN; this variant instead treats NaN as
    the largest order statistic (exactly where ``np.sort`` places it), so
    a minority of hostile rows is pushed to the tails and the middle
    stays finite.  The even-``n`` midpoint ``(lo + hi) / 2`` can only be
    non-finite when half the entries are hostile — past any filter's
    breakdown point — and the ``errstate`` keeps even that case silent.
    """
    ordered = xp.sort(arr, axis=axis)
    n = arr.shape[axis]
    mid = n // 2
    if n % 2 == 1:
        return xp.take(ordered, mid, axis=axis)
    lo = xp.take(ordered, mid - 1, axis=axis)
    hi = xp.take(ordered, mid, axis=axis)
    with xp.errstate(invalid="ignore", over="ignore"):
        return 0.5 * (lo + hi)


class CoordinateWiseMedian(GradientAggregator):
    """Coordinate-wise median of the received gradients.

    All-finite stacks take the exact ``np.median`` path; stacks with
    hostile rows fall back to the NaN-last :func:`nan_last_median`.
    """

    name = "median"

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        if np.isfinite(arr).all():
            return np.median(arr, axis=0)
        return nan_last_median(arr, axis=0)

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        arr = validate_gradient_batch(stacks, allow_nonfinite=True)
        if np.isfinite(arr).all():
            return xp.median(arr, axis=1)
        return nan_last_median(arr, axis=1)
