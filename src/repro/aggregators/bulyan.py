"""Bulyan (El Mhamdi, Guerraoui & Rouault, ICML 2018 — reference [20]).

Two stages: (1) recursively select ``n - 2f`` gradients by repeated Krum;
(2) output the coordinate-wise ``beta``-trimmed mean of the selection with
``beta = n - 4f`` retained entries (entries closest to the coordinate-wise
median).  Requires ``n >= 4f + 3``.
"""

from __future__ import annotations

import numpy as np

from .base import GradientAggregator, validate_gradients
from .krum import krum_scores
from .trimmed_mean import nan_last_median

__all__ = ["BulyanAggregator"]


class BulyanAggregator(GradientAggregator):
    """Krum-selection followed by median-centered coordinate trimming."""

    name = "bulyan"

    def __init__(self, f: int):
        if f < 0:
            raise ValueError("f must be non-negative")
        self.f = int(f)

    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        arr = validate_gradients(gradients, allow_nonfinite=True)
        n = arr.shape[0]
        if n < 4 * self.f + 3:
            raise ValueError(
                f"Bulyan requires n >= 4f + 3 (got n={n}, f={self.f})"
            )
        theta = n - 2 * self.f  # selection-set size
        remaining = list(range(n))
        selected: list = []
        while len(selected) < theta:
            # krum_scores ranks hostile rows +Inf, so with at most f of
            # them the n − 2f ≥ n − f selections never pick one.
            scores = krum_scores(
                arr[remaining], self.f, allow_zero_neighbours=True
            )
            winner_local = int(np.argmin(scores))
            selected.append(remaining.pop(winner_local))
        chosen = arr[selected]

        beta = theta - 2 * self.f  # entries kept per coordinate
        if np.isfinite(chosen).all():
            med = np.median(chosen, axis=0)
            gaps = np.abs(chosen - med)
            order = np.argsort(gaps, axis=0, kind="stable")[:beta]
            kept = np.take_along_axis(chosen, order, axis=0)
            return kept.mean(axis=0)
        # Only reachable past the breakdown point; keep it silent and let
        # the engines' candidate screen quarantine a non-finite result.
        med = nan_last_median(chosen, axis=0)
        with np.errstate(invalid="ignore", over="ignore"):
            gaps = np.abs(chosen - med)
            order = np.argsort(gaps, axis=0, kind="stable")[:beta]
            kept = np.take_along_axis(chosen, order, axis=0)
            return kept.mean(axis=0)
