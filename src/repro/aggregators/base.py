"""Gradient-filter abstraction.

Section 4 defines a gradient-filter as a map ``GradFilter : R^{d x n} -> R^d``
applied by the server in step S2 of each iteration.  All filters in this
package consume a row-stacked ``(n, d)`` array of received gradients (one row
per agent, Byzantine rows included) and return a single ``(d,)`` vector.

Filters are deterministic and stateless; the tolerated fault count ``f`` is a
constructor argument where the rule needs it.

A Byzantine row may be *hostile*: ``NaN``, ``±Inf`` or overflow-scale.
Filters with defined non-finite semantics (the order-statistic and
distance-based rules) validate with ``allow_nonfinite=True`` and absorb
such rows; *strict* filters (plain mean/sum, which cannot) declare
``quarantines_on_nonfinite`` and refuse with a typed
:class:`~repro.health.QuarantineError` naming the offending agent rows —
the engines convert that refusal into a per-trial quarantine.
"""

from __future__ import annotations

import abc

import numpy as np

from ..backend import xp
from ..health import nonfinite_rows, refusal

__all__ = [
    "GradientAggregator",
    "validate_gradients",
    "validate_gradient_batch",
    "require_fault_capacity",
    "check_attendance",
]


def validate_gradients(
    gradients: np.ndarray, allow_nonfinite: bool = False
) -> np.ndarray:
    """Coerce and validate a stack of gradients to an ``(n, d)`` array."""
    arr = np.asarray(gradients, dtype=float)
    if arr.ndim != 2:
        raise ValueError(
            f"expected an (n, d) stack of gradients, got shape {arr.shape}"
        )
    if arr.shape[0] == 0:
        raise ValueError("cannot aggregate zero gradients")
    if not allow_nonfinite and not np.all(np.isfinite(arr)):
        raise refusal(np.nonzero(nonfinite_rows(arr))[0])
    return arr


def validate_gradient_batch(
    stacks: np.ndarray, allow_nonfinite: bool = False
) -> np.ndarray:
    """Coerce and validate a batch of gradient stacks to ``(S, n, d)``."""
    arr = xp.asarray(stacks, dtype=float)
    if arr.ndim != 3:
        raise ValueError(
            f"expected an (S, n, d) batch of gradient stacks, got shape {arr.shape}"
        )
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError("cannot aggregate an empty batch")
    if not allow_nonfinite and not bool(np.isfinite(arr).all()):
        bad = nonfinite_rows(arr)  # (S, n)
        raise refusal(
            xp.to_numpy(xp.nonzero(bad.any(axis=0))[0]),
            trial_indices=xp.to_numpy(xp.nonzero(bad.any(axis=1))[0]),
        )
    return arr


def require_fault_capacity(n: int, f: int, minimum_honest: int) -> None:
    """Raise unless ``n`` agents leave ``minimum_honest`` after removing f."""
    if n - f < minimum_honest:
        raise ValueError(
            f"{n} agents cannot tolerate f={f}: "
            f"at least {minimum_honest} honest inputs are required"
        )


def check_attendance(
    n_received: int, expected_n: int, f: int, removed: int, minimum_honest: int
) -> None:
    """Make partial attendance explicit for the elimination-style filters.

    An elimination rule built for a system of ``expected_n`` agents may
    legitimately see fewer inputs — asynchronous rounds aggregate whichever
    messages arrived — but never more, and the ones that did arrive must
    still cover its ``removed`` discarded entries.  The errors name the
    attendance (``n_received`` of ``expected_n``) so a thin asynchronous
    round fails loudly instead of masquerading as a mis-shaped stack.
    """
    if n_received > expected_n:
        raise ValueError(
            f"received {n_received} gradients for a system declared with "
            f"n={expected_n}"
        )
    if n_received < expected_n and n_received - removed < minimum_honest:
        raise ValueError(
            f"partial attendance: received {n_received} of {expected_n} "
            f"declared inputs, not enough to remove {removed} with f={f}"
        )


class GradientAggregator(abc.ABC):
    """A Byzantine-robust gradient aggregation rule (gradient-filter)."""

    #: short registry name, e.g. ``"cge"``
    name: str = "abstract"

    #: True for strict filters with no defined non-finite semantics: they
    #: raise :class:`~repro.health.QuarantineError` on NaN/±Inf rows and
    #: the engines quarantine the affected trial (reason
    #: ``aggregator_refused``).  Filters left at False absorb up to ``f``
    #: hostile rows and still return a finite aggregate.
    quarantines_on_nonfinite: bool = False

    @abc.abstractmethod
    def aggregate(self, gradients: np.ndarray) -> np.ndarray:
        """Aggregate an ``(n, d)`` stack into a single ``(d,)`` vector."""

    def aggregate_batch(self, stacks: np.ndarray) -> np.ndarray:
        """Aggregate ``S`` independent stacks: ``(S, n, d) -> (S, d)``.

        Every trial of a batched sweep applies the *same* filter to its own
        ``(n, d)`` stack; filters with vectorized kernels override this to
        process the whole batch in one tensor expression.  The base
        implementation is the per-item reference fallback, so any registered
        filter works under :class:`~repro.distsys.batch.BatchSimulator`.
        """
        arr = validate_gradient_batch(
            stacks, allow_nonfinite=not self.quarantines_on_nonfinite
        )
        # Per-item fallback: ``aggregate`` is plain-NumPy plugin code, so
        # the batch crosses the backend boundary and the result re-enters.
        items = xp.to_numpy(arr)
        return xp.asarray(np.stack([self.aggregate(item) for item in items]))

    def __call__(self, gradients: np.ndarray) -> np.ndarray:
        return self.aggregate(gradients)

    def __repr__(self) -> str:
        params = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        inner = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"
