"""Minimal neural-network layers in pure NumPy.

Appendix K trains LeNet with PyTorch; offline we substitute a small
multi-layer perceptron built from these layers (see DESIGN.md for why the
substitution preserves the experiments' meaning).  The design is a classic
layer-object API: ``forward`` caches what ``backward`` needs, ``backward``
returns the gradient w.r.t. the input and fills per-parameter gradients.

Parameters are exposed as flat views so the distributed SGD driver can treat
a whole model as one parameter vector — mirroring the paper's d-dimensional
optimization variable (d = 431,080 for LeNet; ≈14k here).
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

__all__ = ["Module", "Dense", "ReLU", "Tanh", "Sequential"]


class Module(abc.ABC):
    """A differentiable layer."""

    @abc.abstractmethod
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute outputs for a ``(batch, features)`` input."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate: return dL/dinput, store parameter gradients."""

    def parameters(self) -> List[np.ndarray]:
        """Learnable arrays (views — mutate to update)."""
        return []

    def gradients(self) -> List[np.ndarray]:
        """Gradients matching :meth:`parameters`, from the last backward."""
        return []


class Dense(Module):
    """Affine layer ``y = x W + b`` with Glorot-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._inputs = inputs
        return inputs @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight[...] = self._inputs.T @ grad_output
        self.grad_bias[...] = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Module):
    """Hyperbolic-tangent activation (LeNet's classic nonlinearity)."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sequential(Module):
    """Layer composition with flat parameter-vector access."""

    def __init__(self, *layers: Module):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = inputs
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> List[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    # -- flat-vector view (the paper's x in R^d) --------------------------
    @property
    def n_parameters(self) -> int:
        """Total learnable scalar count (the paper's d)."""
        return sum(p.size for p in self.parameters())

    def get_flat_parameters(self) -> np.ndarray:
        """Copy of all parameters as one vector."""
        return np.concatenate([p.ravel() for p in self.parameters()])

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load a flat vector back into the layer parameters."""
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.n_parameters,):
            raise ValueError(
                f"expected {self.n_parameters} parameters, got {flat.shape}"
            )
        cursor = 0
        for param in self.parameters():
            chunk = flat[cursor : cursor + param.size]
            param[...] = chunk.reshape(param.shape)
            cursor += param.size

    def get_flat_gradients(self) -> np.ndarray:
        """All parameter gradients as one vector (post-backward)."""
        return np.concatenate([g.ravel() for g in self.gradients()])
