"""Distributed stochastic gradient descent with robust aggregation.

The Appendix-K pipeline: a server holds the model parameters, each agent
computes a minibatch gradient on its local shard, the server aggregates
through a gradient-filter and takes a constant-step update.  Faults follow
the paper:

* label-flipping (LF) — a *data* fault: the agent honestly computes
  gradients on a shard whose labels were flipped ``y -> 9 - y``;
* gradient-reverse (GR) — a *communication* fault: the agent computes its
  true gradient and sends its negation (any
  :class:`~repro.attacks.base.ByzantineAttack` can be plugged in the same
  way).

Per-agent generators are seeded deterministically so executions are exactly
reproducible — the paper's "the random seed is fixed across executions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.registry import make_aggregator
from ..attacks.base import AttackContext, ByzantineAttack
from .datasets import AgentShard, ImageDataset, flip_labels
from .models import MLPClassifier

__all__ = ["LearningTrace", "DistributedSGD"]


@dataclass
class LearningTrace:
    """Per-iteration training metrics plus periodic test evaluations."""

    train_losses: List[float] = field(default_factory=list)
    eval_iterations: List[int] = field(default_factory=list)
    test_losses: List[float] = field(default_factory=list)
    test_accuracies: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Last recorded test accuracy."""
        if not self.test_accuracies:
            raise ValueError("no evaluations recorded")
        return self.test_accuracies[-1]

    @property
    def final_test_loss(self) -> float:
        """Last recorded test loss."""
        if not self.test_losses:
            raise ValueError("no evaluations recorded")
        return self.test_losses[-1]


class DistributedSGD:
    """Server-side driver for robust D-SGD over sharded image data."""

    def __init__(
        self,
        model: MLPClassifier,
        shards: Sequence[AgentShard],
        faulty_ids: Sequence[int],
        fault: Union[str, ByzantineAttack, None],
        aggregator: Union[GradientAggregator, str],
        test_set: ImageDataset,
        batch_size: int = 128,
        step_size: float = 0.01,
        seed: int = 0,
    ):
        self.model = model
        self.shards = list(shards)
        self.n = len(self.shards)
        self.faulty = frozenset(int(i) for i in faulty_ids)
        if any(i < 0 or i >= self.n for i in self.faulty):
            raise ValueError("faulty id out of range")
        self.f = len(self.faulty)
        if self.faulty and fault is None:
            raise ValueError("faulty agents present but no fault given")
        if batch_size <= 0 or step_size <= 0:
            raise ValueError("batch size and step size must be positive")
        self.batch_size = int(batch_size)
        self.step_size = float(step_size)
        self.test_set = test_set

        self.attack: Optional[ByzantineAttack] = None
        if isinstance(fault, str):
            if fault == "label_flip":
                # Data fault: poison the faulty agents' shards up front.
                for i in self.faulty:
                    shard = self.shards[i]
                    self.shards[i] = AgentShard(
                        agent_id=shard.agent_id,
                        images=shard.images,
                        labels=flip_labels(shard.labels, model.n_classes),
                    )
            else:
                from ..attacks.registry import make_attack

                self.attack = make_attack(fault)
        elif isinstance(fault, ByzantineAttack):
            self.attack = fault

        if isinstance(aggregator, str):
            aggregator = make_aggregator(aggregator, self.n, self.f)
        self.aggregator = aggregator

        self.parameters = model.get_flat_parameters()
        self._agent_rngs = [
            np.random.default_rng((seed, 1000 + i)) for i in range(self.n)
        ]
        self._attack_rng = np.random.default_rng((seed, 7))
        self.iteration = 0
        self.trace = LearningTrace()

    def _agent_gradient(self, agent_id: int) -> np.ndarray:
        """Agent's honest minibatch gradient at the current parameters."""
        shard = self.shards[agent_id]
        images, labels = shard.sample_batch(
            self.batch_size, self._agent_rngs[agent_id]
        )
        return self.model.gradient_at(self.parameters, images, labels)

    def step(self) -> float:
        """One D-SGD iteration; returns the mean honest training loss."""
        honest_losses: List[float] = []
        gradients: Dict[int, np.ndarray] = {}
        true_faulty_gradients: Dict[int, np.ndarray] = {}
        for i in range(self.n):
            grad = self._agent_gradient(i)
            if i in self.faulty and self.attack is not None:
                true_faulty_gradients[i] = grad
            else:
                gradients[i] = grad
                if i not in self.faulty:
                    # Reuse the forward pass already done inside gradient_at
                    # would complicate the API; recompute loss cheaply on a
                    # fresh small probe only for honest agents.
                    pass

        if true_faulty_gradients:
            context = AttackContext(
                iteration=self.iteration,
                estimate=self.parameters,
                faulty_ids=sorted(true_faulty_gradients),
                true_gradients=true_faulty_gradients,
                honest_gradients=(
                    {i: gradients[i] for i in gradients if i not in self.faulty}
                    if self.attack.requires_omniscience
                    else None
                ),
                rng=self._attack_rng,
            )
            fabricated = self.attack.fabricate(context)
            for i in sorted(true_faulty_gradients):
                gradients[i] = np.asarray(fabricated[i], dtype=float)

        stack = np.vstack([gradients[i] for i in sorted(gradients)])
        aggregate = self.aggregator.aggregate(stack)
        self.parameters = self.parameters - self.step_size * aggregate
        self.iteration += 1

        train_loss = self._honest_train_loss()
        self.trace.train_losses.append(train_loss)
        return train_loss

    def _honest_train_loss(self, probe_size: int = 256) -> float:
        """Cross-entropy on a fixed-size probe of honest training data."""
        rng = np.random.default_rng((9999, self.iteration))
        honest = [i for i in range(self.n) if i not in self.faulty]
        per_agent = max(1, probe_size // len(honest))
        images, labels = [], []
        for i in honest:
            img, lab = self.shards[i].sample_batch(per_agent, rng)
            images.append(img)
            labels.append(lab)
        return self.model.loss_at(
            self.parameters, np.vstack(images), np.concatenate(labels)
        )

    def evaluate(self) -> None:
        """Record test loss/accuracy at the current iterate."""
        loss = self.model.loss_at(
            self.parameters, self.test_set.images, self.test_set.labels
        )
        self.model.set_flat_parameters(self.parameters)
        accuracy = self.model.accuracy(
            self.test_set.images, self.test_set.labels
        )
        self.trace.eval_iterations.append(self.iteration)
        self.trace.test_losses.append(loss)
        self.trace.test_accuracies.append(accuracy)

    def run(self, iterations: int, eval_every: int = 50) -> LearningTrace:
        """Train for ``iterations`` steps, evaluating every ``eval_every``."""
        if iterations <= 0 or eval_every <= 0:
            raise ValueError("iterations and eval_every must be positive")
        self.evaluate()  # iteration 0 baseline
        for _ in range(iterations):
            self.step()
            if self.iteration % eval_every == 0:
                self.evaluate()
        if self.trace.eval_iterations[-1] != self.iteration:
            self.evaluate()
        return self.trace
