"""Classifier models for the Appendix-K experiments.

``MLPClassifier`` is the default LeNet substitute (see DESIGN.md): same
loss/optimizer interface as the paper's network, dramatically fewer
parameters so pure-NumPy D-SGD stays laptop-fast.  ``CNNClassifier`` is a
LeNet-style convolutional option built from :mod:`repro.learning.conv` for
when architectural fidelity matters more than wall time.  Both package a
:class:`~repro.learning.modules.Sequential` together with the softmax
cross-entropy loss and expose the flat-parameter/flat-gradient view the
distributed driver consumes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .conv import Conv2D, Flatten, MaxPool2D, Reshape
from .losses import cross_entropy_with_gradient, softmax
from .modules import Dense, ReLU, Sequential

__all__ = ["MLPClassifier", "CNNClassifier"]


class MLPClassifier:
    """Multi-layer perceptron with softmax cross-entropy loss."""

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        n_classes: int,
        seed: int = 0,
    ):
        if input_dim <= 0 or n_classes <= 1:
            raise ValueError("need positive input dim and >= 2 classes")
        rng = np.random.default_rng(seed)
        layers = []
        previous = input_dim
        for width in hidden_dims:
            layers.append(Dense(previous, width, rng))
            layers.append(ReLU())
            previous = width
        layers.append(Dense(previous, n_classes, rng))
        self.network = Sequential(*layers)
        self.input_dim = int(input_dim)
        self.n_classes = int(n_classes)

    @property
    def n_parameters(self) -> int:
        """The optimization dimension d."""
        return self.network.n_parameters

    def get_flat_parameters(self) -> np.ndarray:
        """Current parameter vector (copy)."""
        return self.network.get_flat_parameters()

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load a parameter vector into the network."""
        self.network.set_flat_parameters(flat)

    def loss_and_gradient(
        self, images: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Batch loss and flat gradient at the current parameters."""
        logits = self.network.forward(np.asarray(images, dtype=float))
        loss, grad_logits = cross_entropy_with_gradient(logits, labels)
        self.network.backward(grad_logits)
        return loss, self.network.get_flat_gradients()

    def gradient_at(
        self, flat_params: np.ndarray, images: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Flat gradient at an explicit parameter vector (agent oracle)."""
        self.set_flat_parameters(flat_params)
        _, grad = self.loss_and_gradient(images, labels)
        return grad

    def loss_at(
        self, flat_params: np.ndarray, images: np.ndarray, labels: np.ndarray
    ) -> float:
        """Batch loss at an explicit parameter vector."""
        self.set_flat_parameters(flat_params)
        logits = self.network.forward(np.asarray(images, dtype=float))
        loss, _ = cross_entropy_with_gradient(logits, labels)
        return loss

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class indices for a batch of images."""
        logits = self.network.forward(np.asarray(images, dtype=float))
        return np.argmax(logits, axis=1)

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of images."""
        return softmax(self.network.forward(np.asarray(images, dtype=float)))

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions."""
        preds = self.predict(images)
        return float((preds == np.asarray(labels)).mean())

    def __repr__(self) -> str:
        return (
            f"MLPClassifier(input={self.input_dim}, classes={self.n_classes},"
            f" parameters={self.n_parameters})"
        )


class CNNClassifier(MLPClassifier):
    """LeNet-style CNN: conv-pool-conv-pool-dense over square images.

    Architecture (for ``image_side = 14``, the synthetic default):
    reshape → Conv(1→6, 3x3) → ReLU → MaxPool(2) → Conv(6→12, 3x3) → ReLU
    → MaxPool(2) → Flatten → Dense(→ n_classes).  Orders of magnitude
    smaller than LeNet's 431k parameters but the same architectural family
    (the paper's claims are about aggregation, not capacity).
    """

    def __init__(
        self,
        image_side: int,
        n_classes: int = 10,
        channels: Tuple[int, int] = (6, 12),
        kernel_size: int = 3,
        seed: int = 0,
    ):
        if image_side < 2 * (kernel_size + 1):
            raise ValueError("image too small for two conv-pool stages")
        rng = np.random.default_rng(seed)
        c1, c2 = channels
        side1 = image_side - kernel_size + 1
        if side1 % 2:
            raise ValueError(
                f"first conv output {side1} not divisible by the pool window"
            )
        side2 = side1 // 2 - kernel_size + 1
        if side2 % 2:
            raise ValueError(
                f"second conv output {side2} not divisible by the pool window"
            )
        flat = c2 * (side2 // 2) ** 2
        network = Sequential(
            Reshape((1, image_side, image_side)),
            Conv2D(1, c1, kernel_size, rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, kernel_size, rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(flat, n_classes, rng),
        )
        # Bypass MLPClassifier.__init__: install the conv network directly.
        self.network = network
        self.input_dim = image_side * image_side
        self.n_classes = int(n_classes)
        self.image_side = int(image_side)

    def __repr__(self) -> str:
        return (
            f"CNNClassifier(side={self.image_side}, classes={self.n_classes},"
            f" parameters={self.n_parameters})"
        )
