"""Loss functions for the learning substrate.

Appendix K measures cross-entropy loss; the implementation here is the
numerically stable softmax cross-entropy (log-sum-exp trick) with its exact
gradient ``softmax(logits) - onehot``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "cross_entropy", "cross_entropy_with_gradient"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization."""
    arr = np.asarray(logits, dtype=float)
    shifted = arr - arr.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _validate(logits: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    logits = np.asarray(logits, dtype=float)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, classes)")
    if labels.shape != (logits.shape[0],):
        raise ValueError("labels must be a vector matching the batch size")
    if labels.min() < 0 or labels.max() >= logits.shape[1]:
        raise ValueError("label outside class range")
    return logits, labels.astype(int)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of integer ``labels`` under ``logits``."""
    logits, labels = _validate(logits, labels)
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=1))
    picked = shifted[np.arange(len(labels)), labels]
    return float((log_norm - picked).mean())


def cross_entropy_with_gradient(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Loss and its gradient w.r.t. the logits (batch-mean convention)."""
    logits, labels = _validate(logits, labels)
    probs = softmax(logits)
    batch = logits.shape[0]
    loss = float(-np.log(probs[np.arange(batch), labels] + 1e-300).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch
