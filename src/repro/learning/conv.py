"""Convolutional layers in pure NumPy (im2col implementation).

Appendix K trains LeNet; the default experiments here use an MLP for
speed (see DESIGN.md), but these layers close the substitution gap: a
LeNet-style CNN (:class:`~repro.learning.models.CNNClassifier`) can be
dropped into the same D-SGD driver when fidelity matters more than wall
time.  Shapes follow the ``(batch, channels, height, width)`` convention;
convolutions are stride-1 'valid', pooling is non-overlapping.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .modules import Module

__all__ = ["Reshape", "Conv2D", "MaxPool2D", "Flatten"]


class Reshape(Module):
    """Reshape flat features to an image tensor (and gradients back)."""

    def __init__(self, shape: Tuple[int, ...]):
        self.shape = tuple(int(s) for s in shape)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape((inputs.shape[0],) + self.shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


def _im2col(inputs: np.ndarray, k: int) -> np.ndarray:
    """Extract all k x k patches: (batch, out_h*out_w, channels*k*k)."""
    batch, channels, height, width = inputs.shape
    out_h, out_w = height - k + 1, width - k + 1
    # Gather windows via stride tricks, then reorder to rows of patches.
    s0, s1, s2, s3 = inputs.strides
    windows = np.lib.stride_tricks.as_strided(
        inputs,
        shape=(batch, channels, out_h, out_w, k, k),
        strides=(s0, s1, s2, s3, s2, s3),
        writeable=False,
    )
    # (batch, out_h, out_w, channels, k, k) -> flatten patch dims.
    patches = windows.transpose(0, 2, 3, 1, 4, 5)
    return patches.reshape(batch, out_h * out_w, channels * k * k)


class Conv2D(Module):
    """Stride-1 'valid' 2-D convolution with bias."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
    ):
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError("channels and kernel size must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        fan_in = in_channels * kernel_size * kernel_size
        fan_out = out_channels * kernel_size * kernel_size
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        self.weight = rng.uniform(
            -limit, limit, size=(fan_in, out_channels)
        )
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: Optional[np.ndarray] = None
        self._spatial: Optional[Tuple[int, int, int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (batch, {self.in_channels}, H, W), got {inputs.shape}"
            )
        batch, _, height, width = inputs.shape
        k = self.kernel_size
        if height < k or width < k:
            raise ValueError("input smaller than the kernel")
        out_h, out_w = height - k + 1, width - k + 1
        cols = _im2col(inputs, k)                       # (b, P, fan_in)
        self._cols = cols
        self._spatial = (batch, height, width, out_h)
        out = cols @ self.weight + self.bias            # (b, P, out_ch)
        return out.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_h, out_w
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._spatial is None:
            raise RuntimeError("backward called before forward")
        batch, height, width, out_h = self._spatial
        k = self.kernel_size
        out_w = width - k + 1
        grad_flat = grad_output.reshape(
            batch, self.out_channels, out_h * out_w
        ).transpose(0, 2, 1)                            # (b, P, out_ch)
        self.grad_weight[...] = np.einsum(
            "bpf,bpo->fo", self._cols, grad_flat
        )
        self.grad_bias[...] = grad_flat.sum(axis=(0, 1))
        grad_cols = grad_flat @ self.weight.T           # (b, P, fan_in)
        # col2im: scatter patch gradients back onto the input grid.
        grad_input = np.zeros((batch, self.in_channels, height, width))
        patches = grad_cols.reshape(
            batch, out_h, out_w, self.in_channels, k, k
        )
        for di in range(k):
            for dj in range(k):
                grad_input[:, :, di : di + out_h, dj : dj + out_w] += (
                    patches[:, :, :, :, di, dj].transpose(0, 3, 1, 2)
                )
        return grad_input

    def parameters(self):
        return [self.weight, self.bias]

    def gradients(self):
        return [self.grad_weight, self.grad_bias]


class MaxPool2D(Module):
    """Non-overlapping max pooling with a square window."""

    def __init__(self, window: int = 2):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self._mask: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError("expected (batch, channels, H, W)")
        batch, channels, height, width = inputs.shape
        w = self.window
        if height % w or width % w:
            raise ValueError(
                f"spatial dims {height}x{width} not divisible by window {w}"
            )
        out_h, out_w = height // w, width // w
        blocks = inputs.reshape(batch, channels, out_h, w, out_w, w)
        blocks = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, out_h, out_w, w * w
        )
        flat_idx = blocks.argmax(axis=-1)
        out = np.take_along_axis(
            blocks, flat_idx[..., None], axis=-1
        ).squeeze(-1)
        mask = np.zeros_like(blocks)
        np.put_along_axis(mask, flat_idx[..., None], 1.0, axis=-1)
        self._mask = mask
        self._input_shape = inputs.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        w = self.window
        out_h, out_w = height // w, width // w
        spread = self._mask * grad_output[..., None]
        spread = spread.reshape(batch, channels, out_h, out_w, w, w)
        spread = spread.transpose(0, 1, 2, 4, 3, 5)
        return spread.reshape(batch, channels, height, width)
