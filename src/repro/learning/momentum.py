"""Worker-momentum D-SGD (Karimireddy, He & Jaggi — reference [28]).

The paper's Section 2 cites "Learning from history for Byzantine robust
optimization", whose key idea is that *worker-side momentum* shrinks the
honest gradients' variance over time, making robust aggregation strictly
easier against time-coupled attacks.  This extension wraps the Appendix-K
driver: each agent sends an exponential moving average of its minibatch
gradients instead of the raw gradient; Byzantine transforms apply to the
faulty agents' momentum stream exactly as they would to raw gradients.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..attacks.base import AttackContext, ByzantineAttack
from .datasets import AgentShard, ImageDataset
from .dsgd import DistributedSGD, LearningTrace
from .models import MLPClassifier

__all__ = ["MomentumDistributedSGD"]


class MomentumDistributedSGD(DistributedSGD):
    """D-SGD where agents report momentum-averaged gradients.

    ``momentum`` is the EMA coefficient β: each agent maintains
    ``m_t = β m_{t-1} + (1 − β) g_t`` and reports ``m_t``.  β = 0 reduces
    exactly to :class:`DistributedSGD`.
    """

    def __init__(
        self,
        model: MLPClassifier,
        shards: Sequence[AgentShard],
        faulty_ids: Sequence[int],
        fault: Union[str, ByzantineAttack, None],
        aggregator: Union[GradientAggregator, str],
        test_set: ImageDataset,
        momentum: float = 0.9,
        batch_size: int = 128,
        step_size: float = 0.01,
        seed: int = 0,
    ):
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        super().__init__(
            model=model,
            shards=shards,
            faulty_ids=faulty_ids,
            fault=fault,
            aggregator=aggregator,
            test_set=test_set,
            batch_size=batch_size,
            step_size=step_size,
            seed=seed,
        )
        self.momentum = float(momentum)
        self._buffers: Dict[int, Optional[np.ndarray]] = {
            i: None for i in range(self.n)
        }

    def _agent_gradient(self, agent_id: int) -> np.ndarray:
        raw = super()._agent_gradient(agent_id)
        previous = self._buffers[agent_id]
        if previous is None or self.momentum == 0.0:
            updated = raw
        else:
            updated = self.momentum * previous + (1.0 - self.momentum) * raw
        self._buffers[agent_id] = updated
        return updated
