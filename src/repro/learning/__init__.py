"""Learning substrate for the Appendix-K experiments (pure NumPy)."""

from .datasets import (
    AgentShard,
    ImageDataset,
    flip_labels,
    make_synthetic_classification,
    shard_dataset,
    shard_dataset_dirichlet,
)
from .dsgd import DistributedSGD, LearningTrace
from .momentum import MomentumDistributedSGD
from .losses import cross_entropy, cross_entropy_with_gradient, softmax
from .metrics import accuracy_score, confusion_matrix, per_class_accuracy
from .conv import Conv2D, Flatten, MaxPool2D, Reshape
from .models import CNNClassifier, MLPClassifier
from .modules import Dense, Module, ReLU, Sequential, Tanh

__all__ = [
    "Module",
    "Dense",
    "ReLU",
    "Tanh",
    "Sequential",
    "softmax",
    "cross_entropy",
    "cross_entropy_with_gradient",
    "MLPClassifier",
    "CNNClassifier",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "Reshape",
    "ImageDataset",
    "make_synthetic_classification",
    "shard_dataset",
    "shard_dataset_dirichlet",
    "flip_labels",
    "AgentShard",
    "DistributedSGD",
    "MomentumDistributedSGD",
    "LearningTrace",
    "accuracy_score",
    "confusion_matrix",
    "per_class_accuracy",
]
