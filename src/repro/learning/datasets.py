"""Synthetic image-classification datasets (MNIST / Fashion-MNIST stand-ins).

The paper's Appendix K downloads MNIST and Fashion-MNIST; this environment
is offline, so we generate deterministic synthetic equivalents (see the
substitution table in DESIGN.md): 10 smooth class-template images plus
per-sample pixel noise and small random shifts.  The *mnist_like* variant is
well-separated (easy, like digits); the *fashion_like* variant uses
correlated templates and heavier noise (harder, like clothing photos) —
matching the relative difficulty of the two benchmarks.

The module also provides the experiment plumbing of Appendix K: i.i.d.
sharding of the training set across agents and the label-flipping fault
``y -> 9 - y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "ImageDataset",
    "make_synthetic_classification",
    "shard_dataset",
    "shard_dataset_dirichlet",
    "flip_labels",
    "AgentShard",
]

N_CLASSES = 10


@dataclass
class ImageDataset:
    """Flattened images with integer labels."""

    images: np.ndarray  # (n, pixels) float in [0, 1]
    labels: np.ndarray  # (n,) int in [0, n_classes)
    image_side: int
    n_classes: int = N_CLASSES

    def __post_init__(self) -> None:
        if self.images.ndim != 2:
            raise ValueError("images must be (n, pixels)")
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError("labels must match image count")
        if self.images.shape[1] != self.image_side**2:
            raise ValueError("pixel count must equal image_side ** 2")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def n_features(self) -> int:
        """Flattened pixel count."""
        return self.images.shape[1]

    def subset(self, indices: np.ndarray) -> "ImageDataset":
        """A new dataset restricted to ``indices``."""
        idx = np.asarray(indices)
        return ImageDataset(
            images=self.images[idx].copy(),
            labels=self.labels[idx].copy(),
            image_side=self.image_side,
            n_classes=self.n_classes,
        )


def _blur(image: np.ndarray, passes: int) -> np.ndarray:
    """Cheap separable box blur, repeated ``passes`` times."""
    out = image
    for _ in range(passes):
        out = (
            out
            + np.roll(out, 1, axis=0)
            + np.roll(out, -1, axis=0)
            + np.roll(out, 1, axis=1)
            + np.roll(out, -1, axis=1)
        ) / 5.0
    return out


def _make_templates(
    rng: np.random.Generator,
    side: int,
    blur_passes: int,
    correlation: float,
) -> np.ndarray:
    """Ten smooth class templates; ``correlation`` blends in a shared base."""
    base = _blur(rng.normal(size=(side, side)), blur_passes)
    templates = np.empty((N_CLASSES, side, side))
    for c in range(N_CLASSES):
        own = _blur(rng.normal(size=(side, side)), blur_passes)
        mixed = correlation * base + (1.0 - correlation) * own
        lo, hi = mixed.min(), mixed.max()
        templates[c] = (mixed - lo) / max(hi - lo, 1e-12)
    return templates


def _sample_class(
    rng: np.random.Generator,
    template: np.ndarray,
    noise: float,
    max_shift: int,
) -> np.ndarray:
    """One noisy, randomly shifted realization of a class template."""
    img = template
    if max_shift > 0:
        img = np.roll(
            img,
            (
                int(rng.integers(-max_shift, max_shift + 1)),
                int(rng.integers(-max_shift, max_shift + 1)),
            ),
            axis=(0, 1),
        )
    img = img + rng.normal(scale=noise, size=img.shape)
    return np.clip(img, 0.0, 1.0)


_VARIANTS = {
    # name: (blur_passes, template correlation, pixel noise, max shift)
    "mnist_like": (3, 0.0, 0.15, 1),
    "fashion_like": (2, 0.35, 0.30, 2),
}


def make_synthetic_classification(
    variant: str = "mnist_like",
    n_train: int = 2_000,
    n_test: int = 500,
    image_side: int = 14,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Deterministic train/test datasets for the requested variant."""
    if variant not in _VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; known: {sorted(_VARIANTS)}"
        )
    if n_train < N_CLASSES or n_test < N_CLASSES:
        raise ValueError("need at least one sample per class per split")
    blur_passes, correlation, noise, max_shift = _VARIANTS[variant]
    rng = np.random.default_rng(seed)
    templates = _make_templates(rng, image_side, blur_passes, correlation)

    def build(count: int) -> ImageDataset:
        labels = rng.integers(0, N_CLASSES, size=count)
        images = np.empty((count, image_side * image_side))
        for row, label in enumerate(labels):
            sample = _sample_class(rng, templates[label], noise, max_shift)
            images[row] = sample.ravel()
        return ImageDataset(
            images=images,
            labels=labels.astype(int),
            image_side=image_side,
        )

    return build(n_train), build(n_test)


@dataclass
class AgentShard:
    """One agent's local training data plus a minibatch sampler."""

    agent_id: int
    images: np.ndarray
    labels: np.ndarray

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform with-replacement minibatch (the D-SGD oracle's data)."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        idx = rng.integers(0, self.images.shape[0], size=batch_size)
        return self.images[idx], self.labels[idx]

    def __len__(self) -> int:
        return self.images.shape[0]


def shard_dataset(
    dataset: ImageDataset, n_agents: int, seed: int = 0
) -> List[AgentShard]:
    """Randomly and evenly divide the dataset across agents (Appendix K)."""
    if n_agents <= 0:
        raise ValueError("n_agents must be positive")
    if len(dataset) < n_agents:
        raise ValueError("fewer samples than agents")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    pieces = np.array_split(order, n_agents)
    return [
        AgentShard(
            agent_id=i,
            images=dataset.images[piece].copy(),
            labels=dataset.labels[piece].copy(),
        )
        for i, piece in enumerate(pieces)
    ]


def shard_dataset_dirichlet(
    dataset: ImageDataset,
    n_agents: int,
    alpha: float,
    seed: int = 0,
    min_per_agent: int = 2,
) -> List[AgentShard]:
    """Label-skewed (non-i.i.d.) sharding via per-class Dirichlet splits.

    Appendix K observes that "the accuracy of the learning process depends
    upon the correlation between the data points of non-faulty agents" —
    i.i.d. shards give near-identical local costs (approximate
    2f-redundancy), label skew weakens the redundancy.  ``alpha`` is the
    Dirichlet concentration: large alpha approaches the i.i.d. split,
    alpha << 1 gives each agent a few dominant classes.

    Every agent is guaranteed at least ``min_per_agent`` samples (topped up
    from the largest shards) so minibatch sampling stays well defined.
    """
    if n_agents <= 0:
        raise ValueError("n_agents must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if len(dataset) < n_agents * min_per_agent:
        raise ValueError("not enough samples for the requested agents")
    rng = np.random.default_rng(seed)
    assignments: List[List[int]] = [[] for _ in range(n_agents)]
    for label in range(dataset.n_classes):
        idx = np.flatnonzero(dataset.labels == label)
        if idx.size == 0:
            continue
        rng.shuffle(idx)
        proportions = rng.dirichlet(np.full(n_agents, alpha))
        counts = np.floor(proportions * idx.size).astype(int)
        # Distribute the rounding remainder to the largest proportions.
        remainder = idx.size - counts.sum()
        for k in np.argsort(proportions)[::-1][:remainder]:
            counts[k] += 1
        cursor = 0
        for agent, count in enumerate(counts):
            assignments[agent].extend(idx[cursor : cursor + count].tolist())
            cursor += count
    # Top up starved agents from the largest shards.
    for agent in range(n_agents):
        while len(assignments[agent]) < min_per_agent:
            donor = max(range(n_agents), key=lambda a: len(assignments[a]))
            if len(assignments[donor]) <= min_per_agent:
                break
            assignments[agent].append(assignments[donor].pop())
    return [
        AgentShard(
            agent_id=i,
            images=dataset.images[np.array(rows, dtype=int)].copy(),
            labels=dataset.labels[np.array(rows, dtype=int)].copy(),
        )
        for i, rows in enumerate(assignments)
    ]


def flip_labels(labels: np.ndarray, n_classes: int = N_CLASSES) -> np.ndarray:
    """Label-flipping fault of Appendix K: ``y -> (n_classes - 1) - y``."""
    arr = np.asarray(labels)
    if arr.min() < 0 or arr.max() >= n_classes:
        raise ValueError("label outside class range")
    return (n_classes - 1) - arr
