"""Evaluation metrics for the learning experiments."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "per_class_accuracy"]


def accuracy_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching entries."""
    preds = np.asarray(predictions)
    labs = np.asarray(labels)
    if preds.shape != labs.shape:
        raise ValueError("predictions and labels must have the same shape")
    if preds.size == 0:
        raise ValueError("cannot score empty arrays")
    return float((preds == labs).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """``(n_classes, n_classes)`` counts, rows = true, cols = predicted."""
    preds = np.asarray(predictions, dtype=int)
    labs = np.asarray(labels, dtype=int)
    if preds.shape != labs.shape:
        raise ValueError("predictions and labels must have the same shape")
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    for true, pred in zip(labs, preds):
        matrix[true, pred] += 1
    return matrix


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> Dict[int, float]:
    """Recall per class; classes absent from ``labels`` are omitted."""
    matrix = confusion_matrix(predictions, labels, n_classes)
    out: Dict[int, float] = {}
    for c in range(n_classes):
        total = matrix[c].sum()
        if total > 0:
            out[c] = float(matrix[c, c] / total)
    return out
