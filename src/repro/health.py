"""Run-health and fault containment for hostile (non-finite) inputs.

The paper's Byzantine adversary may send **arbitrary** vectors — which
includes ``NaN``, ``±Inf`` and overflow-scale payloads — and a sweep may
contain trials whose iterates genuinely diverge.  This module defines the
shared vocabulary both failure families speak:

* :class:`QuarantineError` — the typed refusal raised by a *strict*
  gradient-filter (one whose ``quarantines_on_nonfinite`` flag is set)
  when a stack contains non-finite rows.  It subclasses :class:`ValueError`
  so pre-existing callers keep working, and carries structured provenance
  (offending agent rows, trial indices, round, aggregator label) so an
  engine can convert the refusal into a per-trial quarantine instead of a
  crashed sweep.

* The **reason taxonomy** — :data:`AGGREGATOR_REFUSED`,
  :data:`NONFINITE_ITERATE`, :data:`DIVERGED` — the only strings that may
  appear in trace quarantine records, ``SweepReport.quarantined_cells``
  and telemetry events, so post-mortems never parse free-form text.

* :class:`TrialGuard` — the batched engines' containment state machine:
  an ``active`` mask over trials, first-reason-wins quarantine records,
  and the pre-projection candidate screen.  A frozen trial's estimate is
  *held* at its last healthy value and the trial is masked out of every
  subsequent tensor stage; surviving trials are never perturbed.

* :func:`classify_candidate` — the per-trial engines' scalar twin of the
  screen, so a batched quarantine decision is bit-identical to the
  reference engine's (same threshold, same precedence:
  non-finite beats diverged).

Detection happens on the **pre-projection** candidate
``estimate - eta * aggregate`` under the **sup-norm**: the max-|coordinate|
never overflows (unlike a Euclidean norm, whose squares overflow near
1e154), and a tripped trial is frozen *before* garbage reaches the
projection, so no ``RuntimeWarning`` storm ever starts.  The default
threshold 1e100 sits far above any legitimate trajectory yet below
``sqrt(float.max)``, so evaluating a gradient *at* the threshold still
cannot overflow.

This module is a dependency leaf (NumPy and the array-backend shim only):
both the aggregator front-doors and every engine import it without cycles.
Engine-side code should import the same names through
:mod:`repro.distsys.health`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import xp

__all__ = [
    "AGGREGATOR_REFUSED",
    "DIVERGED",
    "NONFINITE_ITERATE",
    "QUARANTINE_REASONS",
    "DEFAULT_DIVERGENCE_THRESHOLD",
    "OVERFLOW_LIMIT",
    "QuarantineError",
    "RunGuard",
    "TrialGuard",
    "refusal",
    "aggregation_round",
    "current_round_context",
    "classify_candidate",
    "all_moderate",
    "hostile_rows",
    "nonfinite_rows",
    "overflow_safe_norms",
    "validate_divergence_threshold",
]

#: A strict gradient-filter refused a stack containing non-finite rows.
#: The trial freezes at its *pre-update* estimate for the refusing round.
AGGREGATOR_REFUSED = "aggregator_refused"

#: The pre-projection candidate contained NaN/±Inf entries.
NONFINITE_ITERATE = "nonfinite_iterate"

#: The pre-projection candidate's sup-norm exceeded the divergence
#: threshold (all entries finite).  :data:`NONFINITE_ITERATE` takes
#: precedence when both hold.
DIVERGED = "diverged"

#: Every reason string that may appear in a quarantine record.
QUARANTINE_REASONS = (AGGREGATOR_REFUSED, NONFINITE_ITERATE, DIVERGED)

#: Sup-norm threshold above which an iterate counts as diverged.  Far
#: above any legitimate trajectory of the paper's workloads, yet below
#: ``sqrt(np.finfo(float).max) ≈ 1.3e154`` so gradients evaluated at a
#: just-under-threshold iterate cannot overflow.
DEFAULT_DIVERGENCE_THRESHOLD = 1e100

#: Magnitude above which distance-based filters treat a row as hostile:
#: squared distances involving such rows would overflow, so they are
#: ranked last / excluded instead of computed.
OVERFLOW_LIMIT = 1e100


def validate_divergence_threshold(threshold: float) -> float:
    """Coerce and validate an engine's divergence threshold."""
    value = float(threshold)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(
            f"divergence_threshold must be a positive finite float, "
            f"got {threshold!r}"
        )
    return value


# -- round context -------------------------------------------------------------
#
# Engines scope their aggregate stage with `aggregation_round(t, label)`;
# the validators read it back so a strict filter's refusal names the round
# and aggregator without threading either through every kernel signature.
# Engines are single-threaded (the recorder's documented reality), so a
# module-level slot suffices.

_ROUND: Optional[int] = None
_AGGREGATOR: Optional[str] = None


@contextmanager
def aggregation_round(
    round_index: Optional[int], aggregator: Optional[str] = None
) -> Iterator[None]:
    """Scope the ambient round/aggregator used in refusal messages."""
    global _ROUND, _AGGREGATOR
    previous = (_ROUND, _AGGREGATOR)
    _ROUND = None if round_index is None else int(round_index)
    _AGGREGATOR = aggregator
    try:
        yield
    finally:
        _ROUND, _AGGREGATOR = previous


def current_round_context() -> Tuple[Optional[int], Optional[str]]:
    """The ambient ``(round_index, aggregator_label)`` pair, if any."""
    return _ROUND, _AGGREGATOR


class QuarantineError(ValueError):
    """A strict gradient-filter refused non-finite input.

    Subclasses :class:`ValueError` so callers that guarded the old
    front-door message keep working; carries structured provenance so
    engines can quarantine the affected trial instead of crashing.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = AGGREGATOR_REFUSED,
        agent_indices: Optional[Sequence[int]] = None,
        trial_indices: Optional[Sequence[int]] = None,
        round_index: Optional[int] = None,
        aggregator: Optional[str] = None,
    ):
        if reason not in QUARANTINE_REASONS:
            raise ValueError(
                f"unknown quarantine reason {reason!r}; "
                f"expected one of {QUARANTINE_REASONS}"
            )
        super().__init__(message)
        self.reason = reason
        self.agent_indices = (
            None
            if agent_indices is None
            else tuple(int(i) for i in agent_indices)
        )
        self.trial_indices = (
            None
            if trial_indices is None
            else tuple(int(i) for i in trial_indices)
        )
        self.round_index = None if round_index is None else int(round_index)
        self.aggregator = aggregator


def refusal(
    agent_indices: Sequence[int],
    *,
    trial_indices: Optional[Sequence[int]] = None,
    what: str = "gradients",
) -> QuarantineError:
    """Build the strict front-door refusal, naming rows/round/aggregator."""
    round_index, label = current_round_context()
    agents = [int(i) for i in agent_indices]
    parts = [f"{what} contain non-finite entries from agent rows {agents}"]
    if trial_indices is not None:
        parts.append(f"in trials {[int(i) for i in trial_indices]}")
    if round_index is not None:
        parts.append(f"at round {round_index}")
    if label is not None:
        parts.append(f"(aggregator {label!r})")
    return QuarantineError(
        " ".join(parts),
        reason=AGGREGATOR_REFUSED,
        agent_indices=agents,
        trial_indices=trial_indices,
        round_index=round_index,
        aggregator=label,
    )


# -- row classification helpers ------------------------------------------------


def nonfinite_rows(arr: np.ndarray) -> np.ndarray:
    """Boolean mask over ``(..., n, d)`` marking rows with NaN/±Inf."""
    return ~np.isfinite(arr).all(axis=-1)


def hostile_rows(arr: np.ndarray, limit: float = OVERFLOW_LIMIT) -> np.ndarray:
    """Rows a distance-based filter must not square: non-finite *or* huge.

    Comparisons against NaN are silently false, so the non-finite check
    is explicit; no floating-point operation here can warn.
    """
    bad = ~np.isfinite(arr) | (np.abs(arr) > limit)
    return bad.any(axis=-1)


def all_moderate(arr: np.ndarray, limit: float = OVERFLOW_LIMIT) -> bool:
    """True when every entry is finite and within ``limit``.

    The guard the distance-based kernels branch on: when it holds they
    run their exact pre-quarantine code path bit-for-bit; otherwise they
    switch to the overflow-safe variant that ranks hostile rows last.
    """
    return bool(
        np.isfinite(arr).all()
        and np.abs(arr).max(initial=0.0) <= limit
    )


def overflow_safe_norms(
    arr: np.ndarray, limit: float = OVERFLOW_LIMIT
) -> np.ndarray:
    """Euclidean norms over the trailing axis; hostile rows rank ``+Inf``.

    Hostile rows are zeroed *before* the norm so no NaN arithmetic or
    squared-coordinate overflow ever runs; moderate rows go through the
    exact ``np.linalg.norm`` the all-finite path uses, so orderings agree
    bit-for-bit wherever both paths are defined.
    """
    hostile = hostile_rows(arr, limit)
    safe = xp.where(hostile[..., None], 0.0, arr)
    norms = xp.norm(safe, axis=-1)
    return xp.where(hostile, np.inf, norms)


def classify_candidate(
    candidate: np.ndarray,
    threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
) -> Optional[str]:
    """Classify one trial's pre-projection candidate.

    Returns :data:`NONFINITE_ITERATE`, :data:`DIVERGED`, or ``None`` when
    the candidate is healthy.  This is the scalar twin of
    :meth:`TrialGuard.screen` — per-trial engines use it so their
    quarantine decisions are bit-identical to the batched screen.
    """
    arr = np.asarray(candidate, dtype=float)
    if not np.isfinite(arr).all():
        return NONFINITE_ITERATE
    if arr.size and float(np.max(np.abs(arr))) > threshold:
        return DIVERGED
    return None


# -- the batched containment state machine -------------------------------------


class TrialGuard:
    """Per-trial quarantine state for the batched engines.

    Holds the ``active`` mask the hot loop intersects its fabricate /
    aggregate index groups with, the first-reason-wins quarantine
    records, and the candidate screen applied between the descent step
    and the projection.  One guard lives for one engine run (it is part
    of engine state and round-trips through ``state_dict``).
    """

    def __init__(
        self,
        n_trials: int,
        threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    ):
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        self.threshold = validate_divergence_threshold(threshold)
        self.active = np.ones(int(n_trials), dtype=bool)
        #: trial -> {"round": int, "reason": str}; first quarantine wins.
        self.records: Dict[int, Dict[str, int]] = {}

    @property
    def n_trials(self) -> int:
        return int(self.active.size)

    @property
    def frozen(self) -> np.ndarray:
        """Boolean mask of quarantined trials (complement of ``active``)."""
        return ~self.active

    @property
    def any_quarantined(self) -> bool:
        return bool(self.records)

    def live(self, idx: np.ndarray) -> np.ndarray:
        """Intersect a trial-index group with the active mask."""
        idx = np.asarray(idx)
        if idx.size == 0:
            return idx
        return idx[self.active[idx]]

    def quarantine(
        self,
        trials: Union[int, Sequence[int], np.ndarray],
        round_index: int,
        reason: str,
    ) -> List[int]:
        """Freeze ``trials`` at ``round_index``; returns the newly frozen.

        Already-frozen trials keep their original record (first reason
        wins) — a held estimate can never re-trip the screen, but the
        idempotence makes resume paths safe to replay.
        """
        if reason not in QUARANTINE_REASONS:
            raise ValueError(
                f"unknown quarantine reason {reason!r}; "
                f"expected one of {QUARANTINE_REASONS}"
            )
        fresh: List[int] = []
        for trial in np.atleast_1d(np.asarray(trials, dtype=int)):
            t = int(trial)
            if not self.active[t]:
                continue
            self.active[t] = False
            self.records[t] = {"round": int(round_index), "reason": reason}
            fresh.append(t)
        return fresh

    def screen(
        self,
        round_index: int,
        previous: np.ndarray,
        candidate: np.ndarray,
    ) -> np.ndarray:
        """Screen pre-projection candidates; return them with frozen held.

        ``previous``/``candidate`` are ``(S, ...)`` with the trial axis
        first.  Among *active* trials, candidates with non-finite entries
        quarantine as :data:`NONFINITE_ITERATE`; finite candidates whose
        sup-norm exceeds the threshold quarantine as :data:`DIVERGED`.
        The returned array equals ``candidate`` for surviving trials and
        ``previous`` for every frozen trial (old or new), so nothing
        non-finite ever reaches the projection kernels.
        """
        reduce_axes = tuple(range(1, candidate.ndim))
        finite = np.isfinite(candidate).all(axis=reduce_axes)
        nonfinite = self.active & ~finite
        if nonfinite.any():
            self.quarantine(
                xp.to_numpy(xp.nonzero(nonfinite)[0]),
                round_index,
                NONFINITE_ITERATE,
            )
        # |NaN| > t and |Inf| > t are irrelevant here: non-finite trials
        # are already frozen, and the comparison itself cannot warn.
        with np.errstate(invalid="ignore"):
            over = np.abs(candidate).max(axis=reduce_axes) > self.threshold
        diverged = self.active & finite & over
        if diverged.any():
            self.quarantine(
                xp.to_numpy(xp.nonzero(diverged)[0]), round_index, DIVERGED
            )
        return self.hold(previous, candidate)

    def hold(self, previous: np.ndarray, values: np.ndarray) -> np.ndarray:
        """``values`` with every frozen trial replaced by ``previous``."""
        if self.active.all():
            return values
        shape = (self.active.size,) + (1,) * (values.ndim - 1)
        return xp.where(self.active.reshape(shape), values, previous)

    def summary(self) -> List[Dict[str, object]]:
        """Quarantine records as a trial-sorted list for traces/reports."""
        return [
            {
                "trial": t,
                "round": self.records[t]["round"],
                "reason": self.records[t]["reason"],
            }
            for t in sorted(self.records)
        ]

    # -- checkpoint round-trip --------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "active": self.active.tolist(),
            "records": {
                str(int(t)): dict(rec) for t, rec in self.records.items()
            },
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.threshold = validate_divergence_threshold(state["threshold"])
        active = np.asarray(state["active"], dtype=bool)
        if active.shape != self.active.shape:
            raise ValueError(
                f"guard state holds {active.size} trials, engine has "
                f"{self.active.size}"
            )
        self.active = active.copy()
        self.records = {
            int(t): {"round": int(rec["round"]), "reason": str(rec["reason"])}
            for t, rec in dict(state["records"]).items()
        }


class RunGuard:
    """Single-run quarantine state — the per-trial engines' containment.

    The scalar twin of :class:`TrialGuard`: one record instead of a mask,
    the same reason taxonomy, the same first-reason-wins semantics and the
    same :func:`classify_candidate` screen, so a per-trial run quarantines
    on exactly the round and reason its batched counterpart does.
    """

    def __init__(self, threshold: float = DEFAULT_DIVERGENCE_THRESHOLD):
        self.threshold = validate_divergence_threshold(threshold)
        self.record: Optional[Dict[str, object]] = None

    @property
    def quarantined(self) -> bool:
        return self.record is not None

    @property
    def reason(self) -> Optional[str]:
        return None if self.record is None else str(self.record["reason"])

    @property
    def round_index(self) -> Optional[int]:
        return None if self.record is None else int(self.record["round"])

    def quarantine(self, round_index: int, reason: str) -> bool:
        """Freeze the run; returns ``True`` when this call froze it."""
        if reason not in QUARANTINE_REASONS:
            raise ValueError(
                f"unknown quarantine reason {reason!r}; "
                f"expected one of {QUARANTINE_REASONS}"
            )
        if self.record is not None:
            return False
        self.record = {"round": int(round_index), "reason": reason}
        return True

    def screen(self, round_index: int, candidate: np.ndarray) -> Optional[str]:
        """Screen a pre-projection candidate; quarantine + return the reason."""
        if self.record is not None:
            return str(self.record["reason"])
        reason = classify_candidate(candidate, self.threshold)
        if reason is not None:
            self.quarantine(round_index, reason)
        return reason

    def summary(self) -> Optional[Dict[str, object]]:
        """The quarantine record (``{"round", "reason"}``) or ``None``."""
        return None if self.record is None else dict(self.record)

    # -- checkpoint round-trip --------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "record": None if self.record is None else dict(self.record),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.threshold = validate_divergence_threshold(state["threshold"])
        record = state.get("record")
        self.record = (
            None
            if record is None
            else {"round": int(record["round"]), "reason": str(record["reason"])}
        )
