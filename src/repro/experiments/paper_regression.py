"""The exact distributed linear-regression problem of Section 5 / Appendix J.

All constants come from equation (132): n = 6 agents, d = 2, f = 1, design
rows ``A_i``, observations ``B_i = A_i x* + N_i`` with ``x* = (1, 1)``.
Derived quantities reproduce the paper's reported values:

* honest minimizer ``x_H = (1.0780, 0.9825)`` for H = {2,...,6},
* redundancy parameter ε = 0.0890 (Appendix-J.2 recipe),
* µ = 1, γ = 0.356 in the Appendix-J convention (Section 5 quotes the
  Hessian convention µ = 2, γ = 0.712 — exactly a factor 2; both are
  available here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.redundancy import RedundancyReport, measure_redundancy
from ..functions.least_squares import LeastSquaresCost, linear_regression_agents
from ..optim.projections import BoxSet
from ..optim.schedules import HarmonicSchedule, paper_schedule

__all__ = [
    "PAPER_A",
    "PAPER_B",
    "PAPER_N",
    "PAPER_X_STAR",
    "PAPER_N_AGENTS",
    "PAPER_F",
    "PAPER_FAULTY_AGENT",
    "PAPER_EPSILON",
    "PAPER_X_H",
    "PaperProblem",
    "paper_problem",
]

#: Design matrix A of equation (132), one row per agent.
PAPER_A = np.array(
    [
        [1.0, 0.0],
        [0.8, 0.5],
        [0.5, 0.8],
        [0.0, 1.0],
        [-0.5, 0.8],
        [-0.8, 0.5],
    ]
)

#: Observations B of equation (132).
PAPER_B = np.array([0.9108, 1.3349, 1.3376, 1.0033, 0.2142, -0.3615])

#: Noise N of equation (132) (B = A x* + N).
PAPER_N = np.array([-0.0892, 0.0349, 0.0376, 0.0033, -0.0858, -0.0615])

#: Ground-truth regression parameter x* = (1, 1).
PAPER_X_STAR = np.array([1.0, 1.0])

PAPER_N_AGENTS = 6
PAPER_F = 1
#: The paper designates agent 1 (0-indexed: 0) as Byzantine.
PAPER_FAULTY_AGENT = 0

#: Redundancy parameter reported in Appendix J.2.
PAPER_EPSILON = 0.0890

#: Honest minimizer reported in Appendix J.3 (H = agents 2..6).
PAPER_X_H = np.array([1.0780, 0.9825])


@dataclass
class PaperProblem:
    """The fully-instantiated Appendix-J problem."""

    costs: List[LeastSquaresCost]
    honest_ids: Tuple[int, ...]
    faulty_ids: Tuple[int, ...]
    x_h: np.ndarray
    epsilon: float
    mu: float          # Appendix-J convention (max eigenvalue of A_i' A_i)
    gamma: float       # Appendix-J convention ((1/|S|) min eig of A_S' A_S)
    mu_hessian: float  # Hessian convention (Section 5): 2x the above
    gamma_hessian: float
    constraint: BoxSet
    schedule: HarmonicSchedule
    initial_estimate: np.ndarray

    @property
    def n(self) -> int:
        """Number of agents."""
        return len(self.costs)

    @property
    def f(self) -> int:
        """Tolerated fault count."""
        return len(self.faulty_ids)

    @property
    def d(self) -> int:
        """Optimization dimension."""
        return self.costs[0].dim

    def honest_aggregate_loss(self, x: np.ndarray) -> float:
        """The paper's *loss*: ``sum_{i in H} Q_i(x)``."""
        return float(sum(self.costs[i].value(x) for i in self.honest_ids))

    def distance_to_honest_minimizer(self, x: np.ndarray) -> float:
        """The paper's *distance*: ``||x - x_H||``."""
        return float(np.linalg.norm(np.asarray(x, dtype=float) - self.x_h))

    def measure_epsilon(self) -> RedundancyReport:
        """Recompute ε by the Appendix-J.2 enumeration."""
        return measure_redundancy(self.costs, self.f, inner_sizes="paper")


def _appendix_constants() -> Tuple[float, float]:
    """µ and γ in the Appendix-J convention (equations (138)–(139))."""
    from itertools import combinations

    mu = max(
        float(np.linalg.eigvalsh(np.outer(row, row)).max()) for row in PAPER_A
    )
    gamma = float("inf")
    n, f = PAPER_N_AGENTS, PAPER_F
    for subset in combinations(range(n), n - f):
        a_s = PAPER_A[list(subset)]
        gamma = min(
            gamma, float(np.linalg.eigvalsh(a_s.T @ a_s).min()) / (n - f)
        )
    return mu, gamma


def paper_problem(
    initial_estimate: Tuple[float, float] = (0.0, 0.0),
    box_half_width: float = 1000.0,
) -> PaperProblem:
    """Build the Appendix-J problem instance.

    ``initial_estimate`` defaults to Appendix J's (0, 0); Section 5 uses
    (−0.0085, −0.5643) for its plots — pass it explicitly to match those.
    """
    costs = linear_regression_agents(PAPER_A, PAPER_B)
    honest = tuple(
        i for i in range(PAPER_N_AGENTS) if i != PAPER_FAULTY_AGENT
    )
    a_h = PAPER_A[list(honest)]
    b_h = PAPER_B[list(honest)]
    x_h, *_ = np.linalg.lstsq(a_h, b_h, rcond=None)
    mu, gamma = _appendix_constants()
    return PaperProblem(
        costs=costs,
        honest_ids=honest,
        faulty_ids=(PAPER_FAULTY_AGENT,),
        x_h=x_h,
        epsilon=PAPER_EPSILON,
        mu=mu,
        gamma=gamma,
        mu_hessian=2.0 * mu,
        gamma_hessian=2.0 * gamma,
        constraint=BoxSet.symmetric(box_half_width, dim=2),
        schedule=paper_schedule(),
        initial_estimate=np.asarray(initial_estimate, dtype=float),
    )
