"""Plain-text and JSON rendering of experiment results.

The benchmark harness prints tables in the same row layout as the paper
(Table 1) and emits figure series as aligned numeric columns; everything is
also serializable to JSON for downstream tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "to_jsonable",
    "write_json",
    "write_csv",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with one header row."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[k]) for k, c in enumerate(row)))
    return "\n".join(lines)


def format_series(
    columns: Mapping[str, Sequence[float]],
    index_name: str = "t",
    stride: int = 1,
    max_rows: Optional[int] = None,
) -> str:
    """Aligned numeric columns sharing an integer index (figure series)."""
    if not columns:
        raise ValueError("need at least one column")
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"column lengths differ: {sorted(lengths)}")
    (length,) = lengths
    indices = list(range(0, length, max(1, stride)))
    if max_rows is not None:
        indices = indices[:max_rows]
    headers = [index_name] + list(columns)
    rows = [
        [i] + [float(columns[name][i]) for name in columns] for i in indices
    ]
    return format_table(headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        v = float(value)
        if v == 0.0:
            return "0"
        if abs(v) < 1e-3 or abs(v) >= 1e5:
            return f"{v:.3e}"
        return f"{v:.4f}"
    if isinstance(value, np.ndarray):
        return np.array2string(value, precision=4, separator=", ")
    return str(value)


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy containers to JSON-friendly types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def write_json(path: Union[str, Path], payload: Any) -> Path:
    """Write ``payload`` (numpy-friendly) as pretty JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_jsonable(payload), indent=2))
    return target


def write_csv(
    path: Union[str, Path],
    columns: Mapping[str, Sequence[float]],
    index_name: str = "t",
) -> Path:
    """Write equal-length numeric columns as CSV with an integer index.

    The plain-text sibling of :func:`format_series` for figure series —
    loadable by any plotting tool to redraw the paper's curves.
    """
    if not columns:
        raise ValueError("need at least one column")
    lengths = {len(v) for v in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"column lengths differ: {sorted(lengths)}")
    (length,) = lengths
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    names = list(columns)
    lines = [",".join([index_name] + names)]
    for i in range(length):
        row = [str(i)] + [repr(float(columns[name][i])) for name in names]
        lines.append(",".join(row))
    target.write_text("\n".join(lines) + "\n")
    return target
