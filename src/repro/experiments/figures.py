"""Figures 2 and 3: loss and distance trajectories.

For each fault behaviour (gradient-reverse, random) the paper plots, over
iterations t = 0..1500 (Figure 2) and the zoom t = 0..80 (Figure 3):

* fault-free DGD (faulty agent omitted, plain averaging),
* DGD + CGE and DGD + CWTM with agent 1 Byzantine,
* plain (unfiltered) averaging DGD with agent 1 Byzantine,

reporting the honest aggregate loss ``sum_H Q_i(x_t)`` and the distance
``||x_t − x_H||``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .paper_regression import PaperProblem, paper_problem
from .reporting import format_series
from .runner import (
    SweepRunResult,
    SweepSpec,
    run_fault_free_batch,
    run_regression_sweep,
)

__all__ = ["FigureSeries", "generate_figure2", "generate_figure3", "render_figure"]

#: Figure-2 method lineup, in the paper's legend order.
METHODS = ("fault-free", "cwtm", "cge", "plain")


@dataclass
class FigureSeries:
    """All series of one figure panel-pair (one fault behaviour)."""

    attack: str
    iterations: int
    losses: Dict[str, np.ndarray] = field(default_factory=dict)
    distances: Dict[str, np.ndarray] = field(default_factory=dict)
    final_distances: Dict[str, float] = field(default_factory=dict)

    def method_names(self) -> List[str]:
        """Methods present, in canonical order."""
        return [m for m in METHODS if m in self.losses]


def _collect(result: SweepRunResult, into: FigureSeries, name: str) -> None:
    into.losses[name] = result.losses
    into.distances[name] = result.distances
    into.final_distances[name] = float(result.distances[-1])


def generate_figure2(
    problem: Optional[PaperProblem] = None,
    iterations: int = 1500,
    seed: int = 0,
) -> Dict[str, FigureSeries]:
    """Loss/distance series for both fault behaviours (Figure 2).

    The eight faulty-system series run as one lockstep batch; the
    fault-free baseline (which removes the faulty agent, changing the cost
    stack) runs as its own one-trial batch and is shared by both panels.
    """
    problem = problem or paper_problem()
    fault_free = run_fault_free_batch(problem, iterations=iterations, seed=seed)
    attacks = ("gradient_reverse", "random")
    specs = [
        SweepSpec(aggregator=aggregator, attack=attack, seed=seed)
        for attack in attacks
        for aggregator in ("cwtm", "cge", "mean")
    ]
    results = iter(run_regression_sweep(problem, specs, iterations=iterations))
    panels: Dict[str, FigureSeries] = {}
    for attack in attacks:
        panel = FigureSeries(attack=attack, iterations=iterations)
        _collect(fault_free, panel, "fault-free")
        for aggregator in ("cwtm", "cge"):
            _collect(next(results), panel, aggregator)
        _collect(next(results), panel, "plain")
        panels[attack] = panel
    return panels


def generate_figure3(
    problem: Optional[PaperProblem] = None,
    iterations: int = 80,
    seed: int = 0,
) -> Dict[str, FigureSeries]:
    """Figure 3 is Figure 2 truncated to the first 80 iterations."""
    return generate_figure2(problem, iterations=iterations, seed=seed)


def render_figure(
    panel: FigureSeries, what: str = "distances", stride: int = 100
) -> str:
    """Text rendering of one panel ('losses' or 'distances')."""
    if what not in ("losses", "distances"):
        raise ValueError("what must be 'losses' or 'distances'")
    columns = getattr(panel, what)
    ordered = {name: columns[name] for name in panel.method_names()}
    header = (
        f"Figure series ({what}) — fault: {panel.attack},"
        f" iterations: {panel.iterations}"
    )
    return header + "\n" + format_series(ordered, stride=stride)
