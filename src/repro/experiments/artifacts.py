"""Run archival: save and reload experiment results as JSON.

Archives regression runs (result summary + full execution trace) so
benchmark outputs can be inspected, diffed across code versions, and
re-rendered without re-running the simulations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..distsys.trace import ExecutionTrace
from .orchestrator import CellOutcome, SweepReport, _quarantine_records
from .reporting import to_jsonable
from .runner import RegressionRunResult

__all__ = [
    "ArchivedRun",
    "save_run",
    "load_run",
    "save_sweep_report",
    "load_sweep_report",
]


@dataclass
class ArchivedRun:
    """A reloaded regression run (summary plus optional full trace)."""

    label: str
    aggregator: str
    attack: Optional[str]
    output: np.ndarray
    distance: float
    final_loss: float
    losses: np.ndarray
    distances: np.ndarray
    trace: Optional[ExecutionTrace]

    def __repr__(self) -> str:
        return (
            f"ArchivedRun(label={self.label!r}, distance={self.distance:.6g},"
            f" trace={'yes' if self.trace is not None else 'no'})"
        )


def save_run(
    result: RegressionRunResult,
    path: Union[str, Path],
    include_trace: bool = True,
) -> Path:
    """Write a regression run to ``path`` as pretty JSON.

    ``include_trace=False`` drops the per-iteration gradient record (the
    summary and the loss/distance series are always kept), shrinking the
    artifact by ~10x for long runs.
    """
    payload = {
        "schema": "repro/regression-run/v1",
        "label": result.label,
        "aggregator": result.aggregator,
        "attack": result.attack,
        "output": result.output,
        "distance": result.distance,
        "final_loss": result.final_loss,
        "losses": result.losses,
        "distances": result.distances,
        "trace": result.trace.to_payload() if include_trace else None,
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_jsonable(payload), indent=2))
    return target


def load_run(path: Union[str, Path]) -> ArchivedRun:
    """Reload a run written by :func:`save_run`."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != "repro/regression-run/v1":
        raise ValueError(f"unrecognized artifact schema: {schema!r}")
    trace = (
        ExecutionTrace.from_payload(payload["trace"])
        if payload.get("trace") is not None
        else None
    )
    return ArchivedRun(
        label=payload["label"],
        aggregator=payload["aggregator"],
        attack=payload["attack"],
        output=np.asarray(payload["output"], dtype=float),
        distance=float(payload["distance"]),
        final_loss=float(payload["final_loss"]),
        losses=np.asarray(payload["losses"], dtype=float),
        distances=np.asarray(payload["distances"], dtype=float),
        trace=trace,
    )


def save_sweep_report(
    report: SweepReport,
    path: Union[str, Path],
    include_results: bool = False,
) -> Path:
    """Write an orchestrated sweep's provenance report as pretty JSON.

    By default only the per-cell status / error / attempt count is kept —
    the audit trail of what ran, what was cached and what degraded.
    ``include_results=True`` also inlines each cell's result payload
    (which the checkpoint store already holds when one was configured).
    Quarantine provenance is always kept: a cell whose engine froze
    trials writes its per-trial records even when results are elided, so
    ``quarantined_cells`` survives the round trip.
    """
    payload = {
        "schema": "repro/sweep-report/v1",
        "spec_hash": report.spec_hash,
        "interrupted": report.interrupted,
        "outcomes": [
            {
                "key": outcome.key,
                "status": outcome.status,
                "error": outcome.error,
                "attempts": outcome.attempts,
                "result": outcome.result if include_results else None,
                "quarantined": _quarantine_records(outcome.result) or None,
            }
            for outcome in report.outcomes
        ],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_jsonable(payload), indent=2))
    return target


def _loaded_result(entry: Dict[str, object]) -> Optional[object]:
    """A loaded outcome's result, rehydrating quarantine-only stubs.

    Reports written without ``include_results`` still carry each cell's
    quarantine records (pre-quarantine reports simply lack the key —
    hence ``.get``); rebuilding a minimal ``{"quarantined": ...}`` result
    keeps ``SweepReport.quarantined_cells`` truthful after a round trip.
    """
    result = entry.get("result")
    records = entry.get("quarantined")
    if result is None and records:
        return {"quarantined": records}
    return result


def load_sweep_report(path: Union[str, Path]) -> SweepReport:
    """Reload a report written by :func:`save_sweep_report`."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != "repro/sweep-report/v1":
        raise ValueError(f"unrecognized artifact schema: {schema!r}")
    return SweepReport(
        spec_hash=payload["spec_hash"],
        interrupted=bool(payload["interrupted"]),
        outcomes=[
            CellOutcome(
                key=entry["key"],
                status=entry["status"],
                result=_loaded_result(entry),
                error=entry.get("error"),
                attempts=int(entry.get("attempts", 0)),
            )
            for entry in payload["outcomes"]
        ],
    )
