"""Command-line entry point: regenerate any paper table or figure.

Installed as ``repro-experiments``; also runnable as
``python -m repro.experiments.cli``.

Examples::

    repro-experiments table1
    repro-experiments figure2 --iterations 1500 --stride 150
    repro-experiments figure4 --iterations 300
    repro-experiments ablation-filters
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

from ..telemetry.recorder import (
    JsonlSink,
    ProgressSink,
    Recorder,
    current_recorder,
    use_recorder,
)
from .ablations import (
    adaptive_attack_sweep,
    dimension_sweep,
    exact_algorithm_scaling,
    f_sweep,
    filter_zoo,
    redundancy_sweep,
    schedule_sweep,
)
from .figures import generate_figure2, generate_figure3, render_figure
from .learning_experiment import (
    LearningExperimentConfig,
    render_learning_panel,
    run_learning_experiment,
)
from .paper_regression import paper_problem
from .reporting import format_table
from .table1 import generate_table1, render_table1

__all__ = ["main", "build_parser"]

logger = logging.getLogger("repro.experiments")

#: rounds per ``round_chunk`` progress event when recording is on.
_PROGRESS_EVERY = 100


class _TelemetryLogHandler(logging.Handler):
    """Mirror log records into the active telemetry stream as ``log`` events.

    Checks the ambient recorder per record, so with recording off (the
    default) every record costs one attribute check and nothing lands
    anywhere but the console handler.
    """

    def emit(self, record: logging.LogRecord) -> None:
        recorder = current_recorder()
        if recorder.enabled:
            recorder.emit(
                "log",
                level=record.levelname.lower(),
                message=record.getMessage(),
                logger=record.name,
            )


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """Console logging policy: INFO by default, DEBUG/-ERROR on request.

    The historical behaviour was unconditional ``print(..., file=stderr)``
    for sweep provenance lines, so the default level keeps those visible;
    ``--quiet`` silences everything below ERROR and ``--verbose`` opens
    the debug taps.  Idempotent — re-running ``main()`` in-process (the
    test suite does) must not stack handlers.
    """
    if verbose and quiet:
        raise SystemExit("--verbose and --quiet are mutually exclusive")
    root = logging.getLogger("repro")
    root.setLevel(
        logging.DEBUG if verbose else logging.ERROR if quiet else logging.INFO
    )
    if not any(isinstance(h, _TelemetryLogHandler) for h in root.handlers):
        console = logging.StreamHandler(sys.stderr)
        console.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(console)
        root.addHandler(_TelemetryLogHandler())
        root.propagate = False


def _add_orchestration_flags(p: argparse.ArgumentParser) -> None:
    """Crash-safe execution flags shared by the sweep subcommands.

    Passing ``--jobs`` or ``--checkpoint-dir`` routes the sweep through
    :func:`~repro.experiments.orchestrator.run_sweep_cells` (supervised
    sharding, content-addressed checkpoints, resume); without either the
    subcommand runs the direct in-process sweep unchanged.
    """
    g = p.add_argument_group("orchestration (crash-safe sweeps)")
    g.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for supervised sharded execution",
    )
    g.add_argument(
        "--checkpoint-dir",
        default=None,
        help="content-addressed cell checkpoint store (enables resume)",
    )
    g.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing checkpoints; recompute every cell",
    )
    g.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock deadline in seconds (implies supervision)",
    )
    g.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="run at most this many uncached cells, then stop "
        "(resume later with the same --checkpoint-dir)",
    )
    g.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="snapshot engine state every K rounds inside long cells "
        "(batched engines only)",
    )
    g.add_argument(
        "--report-out",
        default=None,
        help="write the sweep's provenance report (JSON) to this path",
    )
    t = p.add_argument_group("telemetry (observability)")
    t.add_argument(
        "--telemetry-out",
        default=None,
        help="record the sweep's structured event stream (spans, metrics, "
        "cell lifecycle) to this JSONL file; inspect it later with "
        "'telemetry summarize'",
    )
    t.add_argument(
        "--progress",
        action="store_true",
        help="render live progress lines (cell lifecycle, rounds/s) to "
        "stderr while the sweep runs",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables, figures and ablations.",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose",
        action="store_true",
        help="debug-level console logging",
    )
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress console logging below errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1: CGE/CWTM approximation errors")
    p.add_argument("--iterations", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    _add_orchestration_flags(p)

    for name, default_iters in (("figure2", 1500), ("figure3", 80)):
        p = sub.add_parser(name, help=f"{name}: loss/distance trajectories")
        p.add_argument("--iterations", type=int, default=default_iters)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--stride", type=int, default=max(1, default_iters // 15))

    for name, variant in (("figure4", "mnist_like"), ("figure5", "fashion_like")):
        p = sub.add_parser(name, help=f"{name}: distributed learning ({variant})")
        p.add_argument("--iterations", type=int, default=300)
        p.add_argument("--seed", type=int, default=0)

    sub.add_parser("ablation-filters", help="full filter zoo on the paper problem")
    sub.add_parser("ablation-fsweep", help="CGE error vs f and theory bounds")
    sub.add_parser("ablation-redundancy", help="error vs redundancy parameter")
    sub.add_parser("ablation-exact", help="Theorem-2 algorithm scaling")
    sub.add_parser("ablation-dimension", help="CWTM/Theorem-6 vs dimension")
    sub.add_parser("ablation-schedules", help="step-size schedule comparison")
    sub.add_parser("ablation-adaptive", help="filter-aware adaptive attacks")

    p = sub.add_parser(
        "certify", help="certify the Appendix-J system against the theory"
    )
    p.add_argument("--iterations", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("svm", help="distributed SVM study (Section 5)")
    p.add_argument("--iterations", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "frontier", help="resilience frontier of the Appendix-J system"
    )
    p.add_argument("--max-f", type=int, default=2)

    p = sub.add_parser(
        "decentralized",
        help="decentralized graph engine: topology x connectivity x f sweep",
    )
    p.add_argument("--iterations", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="seeds per cell (only stochastic attacks vary across seeds)",
    )
    _add_orchestration_flags(p)

    p = sub.add_parser(
        "decentralized-delay",
        help="delay-tolerant decentralized engine: topology x staleness x "
        "drop-rate x filter sweep (per-edge delays and losses)",
    )
    p.add_argument("--iterations", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="seeds per cell (per-edge delays and drops are stochastic, "
        "so more seeds tighten the radius and gap estimates)",
    )
    p.add_argument(
        "--reference",
        action="store_true",
        help="replay the per-trial delay engine cell by cell instead of "
        "the fused (S, E) edge-tensor batch engine (slow; the oracle the "
        "batched engine is pinned against)",
    )
    _add_orchestration_flags(p)

    p = sub.add_parser(
        "asynchronous",
        help="asynchronous engine: staleness x drop-rate x filter sweep "
        "(batched tensor program by default)",
    )
    p.add_argument("--iterations", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="seeds per cell (delays and drops are stochastic, so more "
        "seeds tighten the radius estimates)",
    )
    p.add_argument(
        "--reference",
        action="store_true",
        help="replay the per-trial event-driven engine cell by cell "
        "instead of the batched (S, n, d) tensor program (slow; the "
        "oracle the batched engine is pinned against)",
    )
    p.add_argument(
        "--seed-chunk",
        type=int,
        default=None,
        help="orchestrated runs: split each configuration's seeds into "
        "chunks of this size (one resumable cell per chunk)",
    )
    _add_orchestration_flags(p)

    sub.add_parser(
        "list",
        help="discoverability: registered aggregators, attacks and topologies",
    )

    p = sub.add_parser(
        "telemetry",
        help="inspect recorded telemetry event streams",
    )
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    ps = tsub.add_parser(
        "summarize",
        help="post-mortem report of a --telemetry-out JSONL stream: stage "
        "wall-time breakdown, slowest cells, retry histogram",
    )
    ps.add_argument("path", help="the recorded JSONL event stream")
    ps.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many slowest cells to list",
    )

    p = sub.add_parser(
        "all", help="regenerate every artifact into a directory"
    )
    p.add_argument("--out", default="results", help="output directory")
    p.add_argument(
        "--skip-learning",
        action="store_true",
        help="skip the slow Figure-4/5 learning experiments",
    )
    p.add_argument("--seed", type=int, default=0)
    return parser


def _render_registries() -> str:
    """The ``list`` subcommand: every registry with one-line descriptions."""
    from ..aggregators.registry import aggregator_descriptions
    from ..attacks.registry import attack_descriptions
    from ..distsys.topology import topology_descriptions

    sections = (
        ("Gradient filters (aggregators)", aggregator_descriptions()),
        ("Byzantine attacks", attack_descriptions()),
        ("Communication topologies", topology_descriptions()),
    )
    blocks: List[str] = []
    for title, descriptions in sections:
        width = max(len(name) for name in descriptions)
        lines = [title, "-" * len(title)]
        lines.extend(
            f"  {name:<{width}}  {description}"
            for name, description in descriptions.items()
        )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def _orchestrator_config(args: argparse.Namespace):
    """The sweep's orchestration policy, or ``None`` for the direct path.

    Orchestration engages when any of its flags is set; ``--jobs`` and
    ``--checkpoint-dir`` are the usual entry points.
    """
    engaged = any(
        getattr(args, name, None) is not None
        for name in (
            "jobs",
            "checkpoint_dir",
            "cell_timeout",
            "max_cells",
            "checkpoint_every",
        )
    ) or getattr(args, "no_resume", False)
    if not engaged:
        return None
    from .orchestrator import OrchestratorConfig

    return OrchestratorConfig(
        jobs=args.jobs if args.jobs is not None else 1,
        checkpoint_dir=args.checkpoint_dir,
        resume=not args.no_resume,
        cell_timeout=args.cell_timeout,
        max_cells=args.max_cells,
        checkpoint_every=args.checkpoint_every,
    )


def _telemetry_recorder(args: argparse.Namespace) -> Optional[Recorder]:
    """The subcommand's recorder, or ``None`` when recording is off.

    ``--telemetry-out`` streams every event to a JSONL file;
    ``--progress`` renders the noteworthy ones live on stderr.  One
    recorder fans out to both sinks, so the file stays the complete
    record of what the terminal showed.
    """
    sinks = []
    if getattr(args, "telemetry_out", None):
        sinks.append(JsonlSink(args.telemetry_out))
    if getattr(args, "progress", False):
        sinks.append(ProgressSink())
    if not sinks:
        return None
    return Recorder(sinks=sinks, progress_every=_PROGRESS_EVERY)


def _finish_report(args: argparse.Namespace, report) -> None:
    """Persist and surface a sweep report: degradation warns, never raises."""
    if getattr(args, "report_out", None):
        from .artifacts import save_sweep_report

        save_sweep_report(report, args.report_out)
        logger.info(f"[report] {args.report_out}")
    if report.interrupted:
        logger.warning(
            f"[interrupted] cell budget reached; {len(report.skipped)} cells "
            "left — rerun with the same --checkpoint-dir to continue"
        )
    for failed in report.failed_cells:
        logger.error(
            f"[failed cell] {failed['key']} after {failed['attempts']} "
            f"attempt(s): {failed['error']}"
        )
    for cell in report.quarantined_cells:
        records = cell["quarantined"]
        detail = "; ".join(
            f"trial {r.get('label', r.get('trial'))} round {r.get('round')}"
            f" ({r.get('reason')})"
            for r in records
        )
        logger.warning(
            f"[quarantined cell] {cell['key']}: {len(records)} trial(s) "
            f"frozen — {detail}"
        )


def _run_table1(args: argparse.Namespace) -> str:
    problem = paper_problem()
    config = _orchestrator_config(args)
    if config is not None:
        from .table1 import orchestrated_table1

        rows, report = orchestrated_table1(
            iterations=args.iterations, seed=args.seed, config=config
        )
        _finish_report(args, report)
    else:
        rows = generate_table1(
            problem, iterations=args.iterations, seed=args.seed
        )
    return render_table1(rows, epsilon=problem.epsilon)


def _run_figures(args: argparse.Namespace, zoom: bool) -> str:
    generate = generate_figure3 if zoom else generate_figure2
    panels = generate(iterations=args.iterations, seed=args.seed)
    blocks: List[str] = []
    for attack, panel in panels.items():
        blocks.append(render_figure(panel, "losses", stride=args.stride))
        blocks.append(render_figure(panel, "distances", stride=args.stride))
    return "\n\n".join(blocks)


def _run_learning(args: argparse.Namespace, variant: str) -> str:
    config = LearningExperimentConfig(
        variant=variant, iterations=args.iterations, seed=args.seed
    )
    panel = run_learning_experiment(config)
    return render_learning_panel(panel)


def _run_everything(args: argparse.Namespace) -> None:
    """The replication kit: write every artifact under ``args.out``."""
    from pathlib import Path

    from .svm_experiment import (
        SVMExperimentConfig,
        render_svm_panel,
        run_svm_experiment,
    )

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        logger.info(f"[written] {out / (name + '.txt')}")

    problem = paper_problem()
    rows = generate_table1(problem, iterations=500, seed=args.seed)
    write("table1", render_table1(rows, epsilon=problem.epsilon))

    panels = generate_figure2(problem, iterations=1500, seed=args.seed)
    blocks = []
    for attack, panel in panels.items():
        blocks.append(render_figure(panel, "losses", stride=150))
        blocks.append(render_figure(panel, "distances", stride=150))
    write("figure2", "\n\n".join(blocks))

    zoom = generate_figure3(problem, iterations=80, seed=args.seed)
    blocks = []
    for attack, panel in zoom.items():
        blocks.append(render_figure(panel, "distances", stride=10))
    write("figure3", "\n\n".join(blocks))

    svm = run_svm_experiment(SVMExperimentConfig(seed=args.seed))
    write("svm", render_svm_panel(svm))

    if not args.skip_learning:
        for name, variant in (("figure4", "mnist_like"), ("figure5", "fashion_like")):
            panel = run_learning_experiment(
                LearningExperimentConfig(variant=variant, seed=args.seed)
            )
            write(name, render_learning_panel(panel))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    recorder = _telemetry_recorder(args)
    try:
        if recorder is None:
            # No telemetry flags: leave the ambient recorder untouched
            # (the determinism tests install their own around main()).
            return _dispatch(args)
        with use_recorder(recorder):
            return _dispatch(args)
    except BrokenPipeError:
        # stdout feeds a closed pipe (`... | head`): a truncated report
        # is what the reader asked for, not an error.  Swap in devnull so
        # interpreter shutdown does not re-raise on the final flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if recorder is not None:
            recorder.close()


def _dispatch(args: argparse.Namespace) -> int:
    """Execute one parsed subcommand (the ambient recorder is installed)."""
    if args.command == "table1":
        print(_run_table1(args))
    elif args.command == "figure2":
        print(_run_figures(args, zoom=False))
    elif args.command == "figure3":
        print(_run_figures(args, zoom=True))
    elif args.command == "figure4":
        print(_run_learning(args, "mnist_like"))
    elif args.command == "figure5":
        print(_run_learning(args, "fashion_like"))
    elif args.command == "ablation-filters":
        rows = filter_zoo()
        print(
            format_table(
                ["filter", "attack", "distance", "within eps", "note"],
                [
                    [r.aggregator, r.attack, r.distance, r.within_epsilon, r.error or ""]
                    for r in rows
                ],
                title="Filter zoo on the Appendix-J problem",
            )
        )
    elif args.command == "ablation-fsweep":
        rows = f_sweep()
        print(
            format_table(
                ["n", "f", "eps", "measured", "Thm4 bound", "Thm5 bound"],
                [
                    [r.n, r.f, r.epsilon, r.measured_distance, r.bound_thm4, r.bound_thm5]
                    for r in rows
                ],
                title="CGE error vs fault count",
            )
        )
    elif args.command == "ablation-redundancy":
        rows = redundancy_sweep()
        print(
            format_table(
                ["spread", "eps", "exact err", "<=2eps", "CGE err", "CGE bound"],
                [
                    [
                        r.spread,
                        r.epsilon,
                        r.exact_error,
                        r.exact_within_2eps,
                        r.cge_error,
                        r.cge_bound,
                    ]
                    for r in rows
                ],
                title="Error vs redundancy parameter",
            )
        )
    elif args.command == "ablation-exact":
        rows = exact_algorithm_scaling()
        print(
            format_table(
                ["n", "f", "subsets", "worst dist", "eps"],
                [
                    [r.n, r.f, r.outer_subsets, r.worst_distance, r.epsilon]
                    for r in rows
                ],
                title="Theorem-2 algorithm scaling",
            )
        )
    elif args.command == "ablation-dimension":
        rows = dimension_sweep()
        print(
            format_table(
                ["d", "lambda", "threshold", "applies", "D'*eps", "measured"],
                [
                    [
                        r.d, r.lam, r.lambda_threshold, r.applicable,
                        r.bound, r.measured_distance,
                    ]
                    for r in rows
                ],
                title="CWTM / Theorem 6 vs dimension",
            )
        )
    elif args.command == "ablation-schedules":
        rows = schedule_sweep()
        print(
            format_table(
                ["schedule", "RM", "dist@100", "final", "< eps"],
                [
                    [
                        r.label, r.robbins_monro, r.distance_at_100,
                        r.final_distance, r.within_epsilon,
                    ]
                    for r in rows
                ],
                title="Step-size schedules",
            )
        )
    elif args.command == "ablation-adaptive":
        rows = adaptive_attack_sweep()
        print(
            format_table(
                ["filter", "attack", "dist", "< eps", "<= Thm5"],
                [
                    [
                        r.aggregator, r.attack, r.distance,
                        r.within_epsilon, r.within_theorem5,
                    ]
                    for r in rows
                ],
                title="Adaptive attacks",
            )
        )
    elif args.command == "certify":
        from ..core.certify import certify_system

        problem = paper_problem()
        report = certify_system(
            problem.costs,
            f=problem.f,
            stress_attacks=("gradient_reverse", "random", "zero"),
            aggregators=("cge", "cwtm"),
            iterations=args.iterations,
            seed=args.seed,
        )
        print(report.render())
    elif args.command == "svm":
        from .svm_experiment import (
            SVMExperimentConfig,
            render_svm_panel,
            run_svm_experiment,
        )

        panel = run_svm_experiment(
            SVMExperimentConfig(iterations=args.iterations, seed=args.seed)
        )
        print(render_svm_panel(panel))
    elif args.command == "frontier":
        from ..core.frontier import render_frontier, resilience_frontier

        problem = paper_problem()
        rows = resilience_frontier(problem.costs, max_f=args.max_f)
        print(render_frontier(rows, n=problem.n))
    elif args.command == "decentralized":
        from .decentralized import (
            decentralized_sweep,
            orchestrated_decentralized_sweep,
            render_decentralized_report,
        )

        seeds = tuple(range(args.seed, args.seed + args.seeds))
        config = _orchestrator_config(args)
        if config is not None:
            rows, report = orchestrated_decentralized_sweep(
                iterations=args.iterations, seeds=seeds, config=config
            )
            _finish_report(args, report)
        else:
            rows = decentralized_sweep(
                iterations=args.iterations, seeds=seeds
            )
        print(render_decentralized_report(rows, iterations=args.iterations))
    elif args.command == "decentralized-delay":
        from .decentralized_delay import (
            decentralized_delay_sweep,
            orchestrated_decentralized_delay_sweep,
            render_decentralized_delay_report,
        )

        seeds = tuple(range(args.seed, args.seed + args.seeds))
        engine = "reference" if args.reference else "batched"
        config = _orchestrator_config(args)
        if config is not None:
            rows, report = orchestrated_decentralized_delay_sweep(
                iterations=args.iterations,
                seeds=seeds,
                engine=engine,
                config=config,
            )
            _finish_report(args, report)
        else:
            rows = decentralized_delay_sweep(
                iterations=args.iterations, seeds=seeds, engine=engine
            )
        print(
            render_decentralized_delay_report(rows, iterations=args.iterations)
        )
    elif args.command == "asynchronous":
        from .asynchronous import (
            asynchronous_sweep,
            orchestrated_asynchronous_sweep,
            render_asynchronous_report,
        )

        seeds = tuple(range(args.seed, args.seed + args.seeds))
        engine = "reference" if args.reference else "batched"
        config = _orchestrator_config(args)
        if config is not None:
            rows, report = orchestrated_asynchronous_sweep(
                iterations=args.iterations,
                seeds=seeds,
                engine=engine,
                seed_chunk=args.seed_chunk,
                config=config,
            )
            _finish_report(args, report)
        else:
            rows = asynchronous_sweep(
                iterations=args.iterations, seeds=seeds, engine=engine
            )
        print(render_asynchronous_report(rows, iterations=args.iterations))
    elif args.command == "telemetry":
        from ..telemetry.summarize import render_summary, summarize_file

        if args.telemetry_command == "summarize":
            print(render_summary(summarize_file(args.path), top=args.top))
        else:  # pragma: no cover - argparse enforces the choices
            raise AssertionError(
                f"unhandled telemetry command {args.telemetry_command!r}"
            )
    elif args.command == "list":
        print(_render_registries())
    elif args.command == "all":
        _run_everything(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
