"""Figures 4 and 5: distributed learning with Byzantine agents (Appendix K).

The paper's setup: n = 10 agents, f = 3 randomly chosen Byzantine, batch
size 128, step size 0.01, CGE and CWTM against label-flipping (LF) and
gradient-reverse (GR) faults, plus a fault-free baseline (faulty agents
omitted), on MNIST (Figure 4) and Fashion-MNIST (Figure 5).

Offline substitution: synthetic MNIST-like / Fashion-like datasets and an
MLP instead of LeNet (DESIGN.md, substitution table).  The claims being
reproduced are orderings, not absolute numbers: filtered runs approach the
fault-free curve; unfiltered averaging under GR fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..learning.datasets import make_synthetic_classification, shard_dataset
from ..learning.dsgd import DistributedSGD, LearningTrace
from ..learning.models import MLPClassifier
from .reporting import format_table

__all__ = [
    "LearningExperimentConfig",
    "LearningPanel",
    "run_learning_experiment",
    "render_learning_panel",
]


@dataclass
class LearningExperimentConfig:
    """Knobs for one Figure-4/5 style experiment."""

    variant: str = "mnist_like"     # or "fashion_like" (Figure 5)
    n_agents: int = 10
    f: int = 3
    n_train: int = 2_000
    n_test: int = 500
    image_side: int = 14
    hidden_dims: Tuple[int, ...] = (64, 32)
    batch_size: int = 128
    step_size: float = 0.05
    iterations: int = 300
    eval_every: int = 25
    seed: int = 0
    include_unfiltered: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.f < self.n_agents:
            raise ValueError("need 0 <= f < n_agents")


@dataclass
class LearningPanel:
    """All curves of one Figure-4/5 panel."""

    config: LearningExperimentConfig
    faulty_ids: Tuple[int, ...]
    traces: Dict[str, LearningTrace] = field(default_factory=dict)

    def final_accuracies(self) -> Dict[str, float]:
        """Final test accuracy per method."""
        return {name: tr.final_accuracy for name, tr in self.traces.items()}


def _fresh_model(config: LearningExperimentConfig, n_features: int) -> MLPClassifier:
    return MLPClassifier(
        input_dim=n_features,
        hidden_dims=config.hidden_dims,
        n_classes=10,
        seed=config.seed + 11,
    )


def run_learning_experiment(
    config: Optional[LearningExperimentConfig] = None,
) -> LearningPanel:
    """Run the full method lineup of Figure 4/5 for one dataset variant.

    Methods: ``fault-free`` (faulty agents omitted, plain mean),
    ``cwtm-lf``, ``cwtm-gr``, ``cge-lf``, ``cge-gr``, and (optionally)
    ``mean-gr`` — the unfiltered failure baseline.
    """
    config = config or LearningExperimentConfig()
    train, test = make_synthetic_classification(
        variant=config.variant,
        n_train=config.n_train,
        n_test=config.n_test,
        image_side=config.image_side,
        seed=config.seed,
    )
    shards = shard_dataset(train, config.n_agents, seed=config.seed + 1)
    # "we randomly select f" — deterministic given the seed.
    chooser = np.random.default_rng(config.seed + 2)
    faulty = tuple(
        sorted(
            chooser.choice(config.n_agents, size=config.f, replace=False).tolist()
        )
    )
    panel = LearningPanel(config=config, faulty_ids=faulty)

    def run(
        name: str,
        aggregator: str,
        fault: Optional[str],
        shard_subset: Optional[Sequence[int]] = None,
        faulty_ids: Sequence[int] = (),
    ) -> None:
        use_shards = (
            shards
            if shard_subset is None
            else [shards[i] for i in shard_subset]
        )
        driver = DistributedSGD(
            model=_fresh_model(config, train.n_features),
            shards=use_shards,
            faulty_ids=faulty_ids,
            fault=fault,
            aggregator=aggregator,
            test_set=test,
            batch_size=config.batch_size,
            step_size=config.step_size,
            seed=config.seed + 3,
        )
        panel.traces[name] = driver.run(
            config.iterations, eval_every=config.eval_every
        )

    honest_only = [i for i in range(config.n_agents) if i not in faulty]
    run("fault-free", "mean", None, shard_subset=honest_only)
    for aggregator in ("cwtm", "cge_mean"):
        label = "cge" if aggregator == "cge_mean" else aggregator
        run(f"{label}-lf", aggregator, "label_flip", faulty_ids=faulty)
        run(f"{label}-gr", aggregator, "gradient_reverse", faulty_ids=faulty)
    if config.include_unfiltered:
        run("mean-gr", "mean", "gradient_reverse", faulty_ids=faulty)
    return panel


def render_learning_panel(panel: LearningPanel) -> str:
    """Text table of final loss/accuracy per method (Figure 4/5 summary)."""
    rows = []
    for name, trace in panel.traces.items():
        rows.append(
            [
                name,
                trace.final_test_loss,
                trace.final_accuracy,
                len(trace.train_losses),
            ]
        )
    title = (
        f"Distributed learning ({panel.config.variant}) — "
        f"n={panel.config.n_agents}, f={panel.config.f}, "
        f"faulty={list(panel.faulty_ids)}"
    )
    return format_table(
        headers=["method", "test loss", "test accuracy", "iterations"],
        rows=rows,
        title=title,
    )
