"""Content-addressed cell checkpointing for crash-safe sweep execution.

A sweep is decomposed into *cells* (see
:mod:`repro.experiments.orchestrator`); every completed cell is written to
a :class:`CheckpointStore` keyed by ``(spec_hash, cell_key)``:

* ``spec_hash`` — :func:`spec_hash` of the sweep's canonical-JSON spec, so
  a store can hold checkpoints of many sweeps and a *changed* spec (more
  iterations, different seeds, …) can never alias a stale result;
* ``cell_key`` — the sweep-relative cell identifier (e.g.
  ``"tau1/drop0.2/cwtm"``), sanitized into a filename plus a short content
  hash so unusual characters cannot collide.

Writes are atomic (temp file + ``os.replace`` in the same directory), so a
worker killed mid-write never corrupts the store: the cell is simply
missing and re-runs on resume.  Reads are corruption-tolerant —
:meth:`CheckpointStore.get` returns ``None`` for truncated, unparsable, or
wrong-schema files, which the orchestrator treats exactly like a missing
cell.

The format is one JSON document per cell::

    {"schema": "repro/checkpoint-cell/v1",
     "spec_hash": "<64 hex chars>",
     "key": "<cell key>",
     "payload": <the cell's JSON-able result>}

Alongside completed cells the store also holds *partial* engine states
(mid-trajectory ``state_dict`` snapshots under ``<cell key>@partial``
keys) — same format, dropped once the owning cell completes.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..telemetry.recorder import current_recorder
from .reporting import to_jsonable

__all__ = ["CELL_SCHEMA", "CheckpointStore", "spec_hash"]

CELL_SCHEMA = "repro/checkpoint-cell/v1"

#: Filename-safe characters for the human-readable key prefix.
_SANITIZE = re.compile(r"[^A-Za-z0-9._-]+")


def spec_hash(spec: object) -> str:
    """The sha256 hex digest of a sweep spec's canonical JSON.

    The spec is normalized through
    :func:`~repro.experiments.reporting.to_jsonable` and serialized with
    sorted keys and fixed separators, so hashing is insensitive to dict
    ordering and numpy scalar types but sensitive to every value that
    shapes the sweep's results.
    """
    canonical = json.dumps(
        to_jsonable(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cell_filename(key: str) -> str:
    """A collision-free, filesystem-safe filename for a cell key."""
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:8]
    prefix = _SANITIZE.sub("-", key).strip("-")[:80] or "cell"
    return f"{prefix}-{digest}.json"


class CheckpointStore:
    """Atomic, corruption-tolerant store of completed sweep cells."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def _spec_dir(self, sweep_hash: str) -> Path:
        return self.root / sweep_hash[:16]

    def path_for(self, sweep_hash: str, key: str) -> Path:
        """Where ``(sweep_hash, key)`` lives (whether or not it exists)."""
        return self._spec_dir(sweep_hash) / _cell_filename(key)

    def put(self, sweep_hash: str, key: str, payload: object) -> Path:
        """Atomically write one completed cell; returns its path.

        The document lands via a temp file in the destination directory
        plus ``os.replace``, so concurrent readers (and a crash at any
        point) see either the complete old content or the complete new
        content, never a torn write.
        """
        target = self.path_for(sweep_hash, key)
        target.parent.mkdir(parents=True, exist_ok=True)
        document = json.dumps(
            to_jsonable(
                {
                    "schema": CELL_SCHEMA,
                    "spec_hash": sweep_hash,
                    "key": key,
                    "payload": payload,
                }
            )
        )
        fd, tmp = tempfile.mkstemp(
            dir=target.parent, prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(document)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            # A failed write (ENOSPC, kill mid-write on a previous run)
            # is exactly when stale temp files matter: they hold the
            # space a retry needs.  Sweep the directory before
            # propagating so the transient-retry path can succeed.
            self.clean_orphans(sweep_hash)
            raise
        recorder = current_recorder()
        if recorder.enabled:
            recorder.emit("checkpoint_write", key=key, bytes=len(document))
            recorder.count("checkpoint_bytes_written", len(document))
        return target

    def get(self, sweep_hash: str, key: str) -> Optional[object]:
        """The cell's payload, or ``None`` if absent or unusable.

        A truncated, unparsable, wrong-schema, or wrong-key document (a
        killed writer predating atomic replace, manual tampering, a hash
        collision in the sanitized prefix) reads as *missing* — the
        orchestrator re-runs the cell rather than trusting it.
        """
        path = self.path_for(sweep_hash, key)
        try:
            text = path.read_text()
        except OSError:
            self._record_read(key, "miss", 0)
            return None
        try:
            document = json.loads(text)
        except ValueError:
            document = None
        if (
            not isinstance(document, dict)
            or document.get("schema") != CELL_SCHEMA
            or document.get("spec_hash") != sweep_hash
            or document.get("key") != key
        ):
            self._record_read(key, "corrupt", len(text))
            return None
        self._record_read(key, "hit", len(text))
        return document.get("payload")

    @staticmethod
    def _record_read(key: str, status: str, size: int) -> None:
        """Report one read on the ambient recorder (no-op when off).

        ``corrupt`` covers everything readable-but-unusable — torn
        writes predating atomic replace, tampering, schema drift, and
        the sanitized-prefix hash collisions that alias a foreign key —
        since all of them re-run the cell the same way.
        """
        recorder = current_recorder()
        if recorder.enabled:
            if status == "corrupt":
                # Its own event type: the progress sink surfaces corrupt
                # reads live, ordinary hits/misses stay JSONL-only.
                recorder.emit("checkpoint_corrupt", key=key, bytes=size)
                recorder.count("checkpoint_corrupt_reads")
            else:
                recorder.emit(
                    "checkpoint_read", key=key, result=status, bytes=size
                )

    def clean_orphans(
        self, sweep_hash: str, max_age_seconds: float = 60.0
    ) -> List[Path]:
        """Remove stale ``*.tmp`` leftovers of killed or failed writers.

        A worker killed between ``mkstemp`` and ``os.replace`` (or a
        write that died on a full disk) leaves an orphaned temp file
        that silently eats checkpoint-store space forever.  Only files
        older than ``max_age_seconds`` go — a live concurrent writer's
        temp file is milliseconds old — and every removal is reported on
        the ambient recorder.  Returns the removed paths.
        """
        directory = self._spec_dir(sweep_hash)
        removed: List[Path] = []
        if not directory.is_dir():
            return removed
        cutoff = time.time() - max_age_seconds
        for path in directory.glob("*.tmp"):
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:
                continue  # already gone, or actively being replaced
            removed.append(path)
        if removed:
            recorder = current_recorder()
            if recorder.enabled:
                recorder.emit(
                    "checkpoint_orphans_cleaned",
                    count=len(removed),
                    paths=[str(p) for p in removed],
                )
        return removed

    def discard(self, sweep_hash: str, key: str) -> None:
        """Remove one cell if present (used to drop partial engine states)."""
        try:
            os.unlink(self.path_for(sweep_hash, key))
        except OSError:
            pass

    def keys(self, sweep_hash: str) -> List[str]:
        """Every usable cell key stored for ``sweep_hash``, sorted."""
        directory = self._spec_dir(sweep_hash)
        found: List[str] = []
        if not directory.is_dir():
            return found
        for path in directory.iterdir():
            if path.suffix != ".json":
                continue
            try:
                document = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if (
                isinstance(document, dict)
                and document.get("schema") == CELL_SCHEMA
                and document.get("spec_hash") == sweep_hash
                and isinstance(document.get("key"), str)
            ):
                found.append(document["key"])
        return sorted(found)

    def summary(self, sweep_hash: str) -> Dict[str, int]:
        """Completed-cell count plus on-disk footprint, for reports."""
        directory = self._spec_dir(sweep_hash)
        keys = self.keys(sweep_hash)
        size = 0
        if directory.is_dir():
            size = sum(
                p.stat().st_size
                for p in directory.iterdir()
                if p.is_file()
            )
        return {"cells": len(keys), "bytes": int(size)}
