"""The decentralized-delay experiment family: topology × τ × drop sweeps.

Runs the Appendix-J regression system through the delay-tolerant
decentralized engine
(:class:`~repro.distsys.decentralized_delay.DelayedDecentralizedSimulator`)
over a grid of communication topologies, staleness bounds and per-edge
loss rates — under a fixed per-edge delay spectrum with the paper's
gradient-reverse adversary — and reports, per configuration, the final
**convergence radius** ``max_{i honest} ||x_i^T - x_H||`` and **consensus
gap** ``max_{i,j honest} ||x_i^T - x_j^T||`` together with the gossip
diagnostics the synchronous sweep cannot produce: the per-round fraction
of edges whose last delivery missed the staleness bound, the mean
staleness of the deliveries actually used, and the number of
(agent, round) stalls.

Each filter column runs under its declared missing-neighbor policy (the
graph analogue of the asynchronous missing-value contract, sharing
:data:`repro.experiments.asynchronous.DEFAULT_POLICIES`); aggregators are
grouped by policy so every (topology, τ, drop, policy) cell is one batched
engine run over its aggregator × attack × seed grid.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aggregators.registry import make_aggregator
from ..attacks.registry import make_attack
from ..distsys.batch import BatchTrial
from ..distsys.decentralized_delay import DelayedDecentralizedSimulator
from ..distsys.faults import IIDDrop, LinkDelay, uniform_delay
from ..distsys.topology import CommunicationTopology, make_topology
from ..functions.batched import stack_costs
from .asynchronous import DEFAULT_POLICIES
from .decentralized import deserialize_topology, serialize_topology
from .orchestrator import (
    OrchestratorConfig,
    SweepCell,
    SweepReport,
    run_sweep_cells,
)
from .paper_regression import PaperProblem, paper_problem
from .reporting import format_table

__all__ = [
    "DecentralizedDelaySweepRow",
    "default_delay_topologies",
    "decentralized_delay_sweep",
    "orchestrated_decentralized_delay_sweep",
    "render_decentralized_delay_report",
]


@dataclass
class DecentralizedDelaySweepRow:
    """One (topology, τ, drop rate, filter) cell of the delay sweep."""

    topology: str
    staleness_bound: int
    drop_rate: float
    aggregator: str
    policy: str
    attack: Optional[str]
    seeds: int
    mean_radius: float          # mean over seeds of the final radius
    worst_radius: float         # max over seeds
    mean_gap: float             # mean over seeds of the final consensus gap
    missing_rate: float         # mean per-round fraction of unusable edges
    mean_staleness: float       # mean staleness of the usable deliveries
    stalled: int                # total (agent, round) stalls across seeds


def default_delay_topologies(
    n: int, seed: int = 0
) -> List[CommunicationTopology]:
    """The delay sweep's topology spectrum: dense, regular-sparse, irregular."""
    return [
        make_topology("complete", n),
        make_topology("ring", n, hops=2),
        make_topology("erdos_renyi", n, seed=seed, p=0.7),
    ]


def decentralized_delay_sweep(
    problem: Optional[PaperProblem] = None,
    topologies: Optional[Sequence[CommunicationTopology]] = None,
    staleness_bounds: Sequence[int] = (0, 1, 3),
    drop_rates: Sequence[float] = (0.0, 0.2),
    aggregators: Sequence[str] = ("cwtm", "cge_mean", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 300,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
) -> List[DecentralizedDelaySweepRow]:
    """Run the topology × τ × drop × filter sweep; returns report rows.

    Every cell shares the same per-edge delay spectrum (uniform integer
    delays in ``0..delay_high`` on every directed edge) so the staleness
    bound τ is the axis deciding how much in-flight gossip is usable; the
    drop rate adds i.i.d. per-edge loss on top.  With ``delay_high = 0``
    and no drops every edge is fresh and the engine pins bit for bit to
    the synchronous
    :class:`~repro.distsys.decentralized.DecentralizedSimulator` — the
    benchmark asserts that degenerate identity inside the workload.

    ``policies`` overrides the per-filter missing-neighbor policy
    (default: :data:`repro.experiments.asynchronous.DEFAULT_POLICIES` —
    CGE shrinks, the trim-style filters stay masked).
    """
    problem = problem or paper_problem()
    stack = stack_costs(problem.costs)
    topologies = (
        list(topologies)
        if topologies is not None
        else default_delay_topologies(problem.n)
    )
    policies = dict(DEFAULT_POLICIES, **(policies or {}))
    by_policy: Dict[str, List[str]] = {}
    for aggregator in aggregators:
        by_policy.setdefault(
            policies.get(aggregator, "masked"), []
        ).append(aggregator)

    def cell_conditions(drop_rate):
        conditions = [LinkDelay(uniform_delay(0, delay_high))]
        if drop_rate > 0:
            conditions.append(IIDDrop(drop_rate))
        return conditions

    rows: List[DecentralizedDelaySweepRow] = []
    for topology in topologies:
        for tau in staleness_bounds:
            for drop_rate in drop_rates:
                for policy, policy_aggregators in by_policy.items():
                    trials: List[BatchTrial] = []
                    cells: List[Tuple[str, Optional[str]]] = []
                    for aggregator in policy_aggregators:
                        cells.append((aggregator, attack))
                        for seed in seeds:
                            faulty = (
                                ()
                                if attack is None
                                else tuple(problem.faulty_ids)
                            )
                            trials.append(
                                BatchTrial(
                                    aggregator=make_aggregator(
                                        aggregator, problem.n, problem.f
                                    ),
                                    attack=(
                                        None
                                        if attack is None
                                        else make_attack(attack)
                                    ),
                                    faulty_ids=faulty,
                                    seed=seed,
                                )
                            )
                    simulator = DelayedDecentralizedSimulator(
                        costs=stack,
                        topology=topology,
                        trials=trials,
                        constraint=problem.constraint,
                        schedule=problem.schedule,
                        initial_estimate=problem.initial_estimate,
                        conditions=cell_conditions(drop_rate),
                        staleness_bound=int(tau),
                        missing_policy=policy,
                    )
                    trace = simulator.run(iterations)
                    radii = trace.distances_to(problem.x_h)[:, -1]
                    gaps = trace.consensus_gap()[:, -1]
                    missing = trace.missing_fraction().mean(axis=1)
                    profile = trace.staleness_profile()
                    stalls = trace.stalled_agent_rounds()
                    for c, (aggregator, cell_attack) in enumerate(cells):
                        span = slice(c * len(seeds), (c + 1) * len(seeds))
                        cell_profile = profile[span]
                        rows.append(
                            DecentralizedDelaySweepRow(
                                topology=topology.name,
                                staleness_bound=int(tau),
                                drop_rate=float(drop_rate),
                                aggregator=aggregator,
                                policy=policy,
                                attack=cell_attack,
                                seeds=len(seeds),
                                mean_radius=float(radii[span].mean()),
                                worst_radius=float(radii[span].max()),
                                mean_gap=float(gaps[span].mean()),
                                missing_rate=float(missing[span].mean()),
                                mean_staleness=(
                                    float(np.nanmean(cell_profile))
                                    if np.isfinite(cell_profile).any()
                                    else float("nan")
                                ),
                                stalled=int(stalls[span].sum()),
                            )
                        )
    return rows


def _run_decentralized_delay_cell(
    payload: Dict[str, object]
) -> Dict[str, object]:
    """Orchestrator worker: one (topology, τ, drop, policy) cell.

    Each cell is exactly one batched delay-engine run — the same grouping
    the direct sweep uses — so orchestrated rows pin bit for bit to
    :func:`decentralized_delay_sweep`.
    """
    policy = str(payload["policy"])
    aggregators = [str(a) for a in payload["aggregators"]]
    rows = decentralized_delay_sweep(
        problem=None,
        topologies=[deserialize_topology(payload["topology"])],
        staleness_bounds=[int(payload["staleness_bound"])],
        drop_rates=[float(payload["drop_rate"])],
        aggregators=aggregators,
        attack=payload["attack"],
        policies={aggregator: policy for aggregator in aggregators},
        iterations=int(payload["iterations"]),
        seeds=[int(s) for s in payload["seeds"]],
        delay_high=int(payload["delay_high"]),
    )
    return {"rows": [asdict(row) for row in rows]}


def orchestrated_decentralized_delay_sweep(
    topologies: Optional[Sequence[CommunicationTopology]] = None,
    staleness_bounds: Sequence[int] = (0, 1, 3),
    drop_rates: Sequence[float] = (0.0, 0.2),
    aggregators: Sequence[str] = ("cwtm", "cge_mean", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 300,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
    config: Optional[OrchestratorConfig] = None,
) -> Tuple[List[DecentralizedDelaySweepRow], SweepReport]:
    """The topology × τ × drop × filter sweep through the orchestrator.

    One crash-safe cell per (topology, τ, drop, policy) — the direct
    sweep's batched-engine granularity — so rows arrive in
    :func:`decentralized_delay_sweep` order, with failed cells' rows
    absent and listed in ``report.failed_cells``.  Workers rebuild the
    default paper problem; topologies travel as explicit adjacency
    payloads.
    """
    config = config or OrchestratorConfig()
    problem_n = paper_problem().n
    topologies = (
        list(topologies)
        if topologies is not None
        else default_delay_topologies(problem_n)
    )
    resolved = dict(DEFAULT_POLICIES, **(policies or {}))
    by_policy: Dict[str, List[str]] = {}
    for aggregator in aggregators:
        by_policy.setdefault(
            resolved.get(aggregator, "masked"), []
        ).append(aggregator)
    serialized = [serialize_topology(t) for t in topologies]
    spec_doc = {
        "family": "decentralized_delay",
        "topologies": serialized,
        "staleness_bounds": [int(t) for t in staleness_bounds],
        "drop_rates": [float(d) for d in drop_rates],
        "aggregators": list(aggregators),
        "attack": attack,
        "policies": {k: v for k, v in sorted(resolved.items())},
        "iterations": int(iterations),
        "seeds": [int(s) for s in seeds],
        "delay_high": int(delay_high),
    }
    cells: List[SweepCell] = []
    for t, (topology, topo_payload) in enumerate(zip(topologies, serialized)):
        for tau in staleness_bounds:
            for drop_rate in drop_rates:
                for policy, policy_aggregators in by_policy.items():
                    cells.append(
                        SweepCell(
                            key=(
                                f"t{t}-{topology.name}/tau{int(tau)}/"
                                f"drop{float(drop_rate)}/{policy}"
                            ),
                            payload={
                                "topology": topo_payload,
                                "staleness_bound": int(tau),
                                "drop_rate": float(drop_rate),
                                "aggregators": list(policy_aggregators),
                                "policy": policy,
                                "attack": attack,
                                "iterations": int(iterations),
                                "seeds": [int(s) for s in seeds],
                                "delay_high": int(delay_high),
                            },
                        )
                    )
    report = run_sweep_cells(
        spec_doc, cells, _run_decentralized_delay_cell, config
    )
    usable = report.results()
    rows: List[DecentralizedDelaySweepRow] = []
    for cell in cells:
        payload = usable.get(cell.key)
        if payload is None:
            continue
        rows.extend(
            DecentralizedDelaySweepRow(**row) for row in payload["rows"]
        )
    return rows, report


def render_decentralized_delay_report(
    rows: Sequence[DecentralizedDelaySweepRow], iterations: int = 300
) -> str:
    """The gossip-under-delay report as an aligned text table."""
    return format_table(
        headers=[
            "topology",
            "tau",
            "drop",
            "filter",
            "policy",
            "attack",
            "radius (mean)",
            "radius (worst)",
            "gap (mean)",
            "missing",
            "staleness",
            "stalled",
        ],
        rows=[
            [
                r.topology,
                r.staleness_bound,
                r.drop_rate,
                r.aggregator,
                r.policy,
                r.attack or "honest",
                r.mean_radius,
                r.worst_radius,
                r.mean_gap,
                r.missing_rate,
                r.mean_staleness,
                r.stalled,
            ]
            for r in rows
        ],
        title=(
            "Delay-tolerant decentralized robust DGD on the Appendix-J "
            f"system - convergence radius and consensus gap after "
            f"{iterations} rounds under uniform per-edge delivery delays"
        ),
    )
