"""The decentralized-delay experiment family: topology × τ × drop sweeps.

Runs the Appendix-J regression system through the delay-tolerant
decentralized engines over a grid of communication topologies, staleness
bounds and per-edge loss rates — under a fixed per-edge delay spectrum
with the paper's gradient-reverse adversary — and reports, per
configuration, the final **convergence radius**
``max_{i honest} ||x_i^T - x_H||`` and **consensus gap**
``max_{i,j honest} ||x_i^T - x_j^T||`` together with the gossip
diagnostics the synchronous sweep cannot produce: the per-round fraction
of edges whose last delivery missed the staleness bound, the mean
staleness of the deliveries actually used, and the number of
(agent, round) stalls.

With ``engine="batched"`` (the default) the whole topology × τ × drop ×
policy × seed grid fuses onto the batch axis of one
:class:`~repro.distsys.batch_decentralized_delay.BatchDelayedDecentralizedSimulator`
tensor program; ``engine="reference"`` replays the per-trial
:class:`~repro.distsys.decentralized_delay.DelayedDecentralizedSimulator`
cell by cell.  The fused engine is pinned bit for bit to the per-trial
one, so the flag is a verification fallback, not a semantic switch.

Each filter column runs under its declared missing-neighbor policy (the
graph analogue of the asynchronous missing-value contract, sharing
:data:`repro.experiments.asynchronous.DEFAULT_POLICIES`); aggregators are
grouped by policy so every (topology, τ, drop, policy) cell is one
aggregator × attack × seed sub-grid of the fused batch (or one batched
per-cell engine run under ``"reference"``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aggregators.registry import make_aggregator
from ..attacks.registry import make_attack
from ..distsys.batch import BatchTrial
from ..distsys.batch_decentralized_delay import (
    BatchDelayedDecentralizedSimulator,
    DelayBatchTrial,
)
from ..distsys.decentralized_delay import DelayedDecentralizedSimulator
from ..distsys.faults import IIDDrop, LinkDelay, uniform_delay
from ..distsys.topology import CommunicationTopology, make_topology
from ..functions.batched import stack_costs
from ..telemetry.recorder import current_recorder
from .asynchronous import DEFAULT_POLICIES, SWEEP_ENGINES
from .checkpoint import CheckpointStore, spec_hash
from .decentralized import deserialize_topology, serialize_topology
from .orchestrator import (
    EngineCheckpointer,
    OrchestratorConfig,
    SweepCell,
    SweepReport,
    run_engine_checkpointed,
    run_sweep_cells,
)
from .paper_regression import PaperProblem, paper_problem
from .reporting import format_table

__all__ = [
    "DecentralizedDelaySweepRow",
    "default_delay_topologies",
    "decentralized_delay_sweep",
    "orchestrated_decentralized_delay_sweep",
    "render_decentralized_delay_report",
]


@dataclass
class DecentralizedDelaySweepRow:
    """One (topology, τ, drop rate, filter) cell of the delay sweep."""

    topology: str
    staleness_bound: int
    drop_rate: float
    aggregator: str
    policy: str
    attack: Optional[str]
    seeds: int
    mean_radius: float          # mean over seeds of the final radius
    worst_radius: float         # max over seeds
    mean_gap: float             # mean over seeds of the final consensus gap
    missing_rate: float         # mean per-round fraction of unusable edges
    mean_staleness: float       # mean staleness of the usable deliveries
    stalled: int                # total (agent, round) stalls across seeds


def default_delay_topologies(
    n: int, seed: int = 0
) -> List[CommunicationTopology]:
    """The delay sweep's topology spectrum: dense, regular-sparse, irregular."""
    return [
        make_topology("complete", n),
        make_topology("ring", n, hops=2),
        make_topology("erdos_renyi", n, seed=seed, p=0.7),
    ]


def _cell_conditions(drop_rate: float, delay_high: int):
    """The sweep's shared per-edge condition pipeline."""
    conditions = [LinkDelay(uniform_delay(0, delay_high))]
    if drop_rate > 0:
        conditions.append(IIDDrop(drop_rate))
    return conditions


def _policy_grouping(
    aggregators: Sequence[str], policies: Optional[Dict[str, str]]
) -> Dict[str, List[str]]:
    """Group the filter columns by missing-neighbor policy, in order."""
    resolved = dict(DEFAULT_POLICIES, **(policies or {}))
    by_policy: Dict[str, List[str]] = {}
    for aggregator in aggregators:
        by_policy.setdefault(
            resolved.get(aggregator, "masked"), []
        ).append(aggregator)
    return by_policy


def _batched_delay_trials(
    problem,
    topology,
    tau,
    drop_rate,
    policy,
    aggregators,
    seeds,
    attack,
    delay_high,
) -> List[DelayBatchTrial]:
    """One cell's aggregator × seed trial grid for the fused engine."""
    faulty = () if attack is None else tuple(problem.faulty_ids)
    return [
        DelayBatchTrial(
            aggregator=make_aggregator(aggregator, problem.n, problem.f),
            topology=topology,
            attack=None if attack is None else make_attack(attack),
            faulty_ids=faulty,
            conditions=tuple(_cell_conditions(drop_rate, delay_high)),
            staleness_bound=int(tau),
            missing_policy=policy,
            seed=int(seed),
            label=(
                f"{topology.name}/tau{tau}/drop{drop_rate}"
                f"/{aggregator}/s{seed}"
            ),
        )
        for aggregator in aggregators
        for seed in seeds
    ]


def _trace_diagnostics(problem, trace) -> Dict[str, np.ndarray]:
    """The per-trial report reductions, computed once per trace.

    The fused engine carries the whole sweep in one trace; folding each
    cell by recomputing trace-wide diagnostics would redo the same
    reductions once per cell, so they are hoisted here and the fold
    slices the precomputed per-trial arrays.
    """
    return {
        "radii": trace.distances_to(problem.x_h, rounds=[-1])[:, -1],
        "gaps": trace.consensus_gap(rounds=[-1])[:, -1],
        "missing": trace.missing_fraction().mean(axis=1),
        "profile": trace.staleness_profile(),
        "stalls": trace.stalled_agent_rounds(),
    }


def _fold_cell_rows(
    diagnostics,
    topology_name,
    tau,
    drop_rate,
    policy,
    aggregators,
    attack,
    seeds,
    offset=0,
) -> List[DecentralizedDelaySweepRow]:
    """Fold one cell's slice of the diagnostics into its report rows.

    Works on both trace flavors — the per-trial engine's cell trace
    (``offset=0``) and the fused engine's whole-sweep trace (``offset`` =
    the cell's first trial index) — because both expose the same
    per-trial diagnostics.
    """
    radii = diagnostics["radii"]
    gaps = diagnostics["gaps"]
    missing = diagnostics["missing"]
    profile = diagnostics["profile"]
    stalls = diagnostics["stalls"]
    rows: List[DecentralizedDelaySweepRow] = []
    for c, aggregator in enumerate(aggregators):
        span = slice(
            offset + c * len(seeds), offset + (c + 1) * len(seeds)
        )
        cell_profile = profile[span]
        rows.append(
            DecentralizedDelaySweepRow(
                topology=topology_name,
                staleness_bound=int(tau),
                drop_rate=float(drop_rate),
                aggregator=aggregator,
                policy=policy,
                attack=attack,
                seeds=len(seeds),
                mean_radius=float(radii[span].mean()),
                worst_radius=float(radii[span].max()),
                mean_gap=float(gaps[span].mean()),
                missing_rate=float(missing[span].mean()),
                mean_staleness=(
                    float(np.nanmean(cell_profile))
                    if np.isfinite(cell_profile).any()
                    else float("nan")
                ),
                stalled=int(stalls[span].sum()),
            )
        )
    return rows


def decentralized_delay_sweep(
    problem: Optional[PaperProblem] = None,
    topologies: Optional[Sequence[CommunicationTopology]] = None,
    staleness_bounds: Sequence[int] = (0, 1, 3),
    drop_rates: Sequence[float] = (0.0, 0.2),
    aggregators: Sequence[str] = ("cwtm", "cge_mean", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 300,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
    engine: str = "batched",
) -> List[DecentralizedDelaySweepRow]:
    """Run the topology × τ × drop × filter sweep; returns report rows.

    Every cell shares the same per-edge delay spectrum (uniform integer
    delays in ``0..delay_high`` on every directed edge) so the staleness
    bound τ is the axis deciding how much in-flight gossip is usable; the
    drop rate adds i.i.d. per-edge loss on top.  With ``delay_high = 0``
    and no drops every edge is fresh and the engines pin bit for bit to
    the synchronous
    :class:`~repro.distsys.decentralized.DecentralizedSimulator` — the
    benchmark asserts that degenerate identity inside the workload.

    With ``engine="batched"`` (the default) the *entire* grid — every
    (topology, τ, drop, policy, filter, seed) trial — runs as one fused
    :class:`~repro.distsys.batch_decentralized_delay.BatchDelayedDecentralizedSimulator`
    tensor program; ``engine="reference"`` replays the per-trial
    :class:`~repro.distsys.decentralized_delay.DelayedDecentralizedSimulator`
    one (topology, τ, drop, policy) cell at a time.  The fused engine is
    pinned bit for bit to the per-trial one, so the rows are identical.

    ``policies`` overrides the per-filter missing-neighbor policy
    (default: :data:`repro.experiments.asynchronous.DEFAULT_POLICIES` —
    CGE shrinks, the trim-style filters stay masked).
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"unknown sweep engine {engine!r}; known: {', '.join(SWEEP_ENGINES)}"
        )
    problem = problem or paper_problem()
    stack = stack_costs(problem.costs)
    topologies = (
        list(topologies)
        if topologies is not None
        else default_delay_topologies(problem.n)
    )
    by_policy = _policy_grouping(aggregators, policies)
    cells = [
        (topology, int(tau), float(drop_rate), policy, policy_aggregators)
        for topology in topologies
        for tau in staleness_bounds
        for drop_rate in drop_rates
        for policy, policy_aggregators in by_policy.items()
    ]

    if engine == "batched":
        trials: List[DelayBatchTrial] = []
        offsets: List[int] = []
        for topology, tau, drop_rate, policy, policy_aggregators in cells:
            offsets.append(len(trials))
            trials.extend(
                _batched_delay_trials(
                    problem, topology, tau, drop_rate, policy,
                    policy_aggregators, seeds, attack, delay_high,
                )
            )
        trace = BatchDelayedDecentralizedSimulator(
            costs=stack,
            trials=trials,
            constraint=problem.constraint,
            schedule=problem.schedule,
            initial_estimate=problem.initial_estimate,
            recorder=current_recorder(),
        ).run(iterations)
        diagnostics = _trace_diagnostics(problem, trace)
        rows: List[DecentralizedDelaySweepRow] = []
        for offset, (topology, tau, drop_rate, policy, cell_aggs) in zip(
            offsets, cells
        ):
            rows.extend(
                _fold_cell_rows(
                    diagnostics, topology.name, tau, drop_rate, policy,
                    cell_aggs, attack, seeds, offset=offset,
                )
            )
        return rows

    rows = []
    for topology, tau, drop_rate, policy, policy_aggregators in cells:
        faulty = () if attack is None else tuple(problem.faulty_ids)
        trials = [
            BatchTrial(
                aggregator=make_aggregator(
                    aggregator, problem.n, problem.f
                ),
                attack=None if attack is None else make_attack(attack),
                faulty_ids=faulty,
                seed=seed,
            )
            for aggregator in policy_aggregators
            for seed in seeds
        ]
        simulator = DelayedDecentralizedSimulator(
            costs=stack,
            topology=topology,
            trials=trials,
            constraint=problem.constraint,
            schedule=problem.schedule,
            initial_estimate=problem.initial_estimate,
            conditions=_cell_conditions(drop_rate, delay_high),
            staleness_bound=int(tau),
            missing_policy=policy,
        )
        simulator.set_recorder(current_recorder())
        trace = simulator.run(iterations)
        rows.extend(
            _fold_cell_rows(
                _trace_diagnostics(problem, trace), topology.name, tau,
                drop_rate, policy, policy_aggregators, attack, seeds,
            )
        )
    return rows


def _run_decentralized_delay_cell(
    payload: Dict[str, object]
) -> Dict[str, object]:
    """Orchestrator worker: one (topology, τ, drop, policy) cell.

    Each cell is exactly one batched delay-engine run over its
    aggregator × seed grid — the same per-receiver-row kernels the fused
    direct sweep applies — so orchestrated rows pin bit for bit to
    :func:`decentralized_delay_sweep`.  Under the batched engine, a
    payload carrying a checkpoint contract runs through
    :func:`~repro.experiments.orchestrator.run_engine_checkpointed`: the
    chunk-boundary ``state_dict`` of
    :class:`~repro.distsys.batch_decentralized_delay.BatchDelayedDecentralizedSimulator`
    makes a killed-and-resumed cell bit-identical to an uninterrupted one.
    """
    policy = str(payload["policy"])
    aggregators = [str(a) for a in payload["aggregators"]]
    topology = deserialize_topology(payload["topology"])
    tau = int(payload["staleness_bound"])
    drop_rate = float(payload["drop_rate"])
    attack = payload["attack"]
    seeds = [int(s) for s in payload["seeds"]]
    iterations = int(payload["iterations"])
    delay_high = int(payload["delay_high"])
    engine = str(payload.get("engine", "batched"))
    if engine == "batched":
        problem = paper_problem()
        stack = stack_costs(problem.costs)
        trials = _batched_delay_trials(
            problem, topology, tau, drop_rate, policy, aggregators,
            seeds, attack, delay_high,
        )

        def make_engine() -> BatchDelayedDecentralizedSimulator:
            return BatchDelayedDecentralizedSimulator(
                costs=stack,
                trials=trials,
                constraint=problem.constraint,
                schedule=problem.schedule,
                initial_estimate=problem.initial_estimate,
            )

        checkpoint = payload.get("checkpoint")
        if checkpoint:
            trace = run_engine_checkpointed(
                make_engine,
                iterations,
                checkpoint_every=int(checkpoint["every"]),
                checkpointer=EngineCheckpointer(
                    store=CheckpointStore(checkpoint["dir"]),
                    sweep_hash=str(checkpoint["spec_hash"]),
                    key=str(checkpoint["key"]),
                ),
            )
        else:
            trace = make_engine().set_recorder(
                current_recorder()
            ).run(iterations)
        rows = _fold_cell_rows(
            _trace_diagnostics(problem, trace), topology.name, tau,
            drop_rate, policy, aggregators, attack, seeds,
        )
        result: Dict[str, object] = {
            "rows": [asdict(row) for row in rows]
        }
        quarantined = [
            {**dict(record), "label": trace.labels[int(record["trial"])]}
            for record in trace.quarantined
        ]
        if quarantined:
            result["quarantined"] = quarantined
        return result
    rows = decentralized_delay_sweep(
        problem=None,
        topologies=[topology],
        staleness_bounds=[tau],
        drop_rates=[drop_rate],
        aggregators=aggregators,
        attack=attack,
        policies={aggregator: policy for aggregator in aggregators},
        iterations=iterations,
        seeds=seeds,
        delay_high=delay_high,
        engine="reference",
    )
    return {"rows": [asdict(row) for row in rows]}


def orchestrated_decentralized_delay_sweep(
    topologies: Optional[Sequence[CommunicationTopology]] = None,
    staleness_bounds: Sequence[int] = (0, 1, 3),
    drop_rates: Sequence[float] = (0.0, 0.2),
    aggregators: Sequence[str] = ("cwtm", "cge_mean", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 300,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
    engine: str = "batched",
    config: Optional[OrchestratorConfig] = None,
) -> Tuple[List[DecentralizedDelaySweepRow], SweepReport]:
    """The topology × τ × drop × filter sweep through the orchestrator.

    One crash-safe cell per (topology, τ, drop, policy) — the direct
    sweep's per-cell granularity — so rows arrive in
    :func:`decentralized_delay_sweep` order, with failed cells' rows
    absent and listed in ``report.failed_cells``.  Workers rebuild the
    default paper problem; topologies travel as explicit adjacency
    payloads.  Under the batched engine (the default) with
    ``config.checkpoint_dir`` and ``config.checkpoint_every`` set, each
    cell checkpoints its engine state mid-trajectory and a
    killed-and-resumed sweep is bit-identical to an uninterrupted one.
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"unknown sweep engine {engine!r}; "
            f"known: {', '.join(SWEEP_ENGINES)}"
        )
    config = config or OrchestratorConfig()
    problem_n = paper_problem().n
    topologies = (
        list(topologies)
        if topologies is not None
        else default_delay_topologies(problem_n)
    )
    resolved = dict(DEFAULT_POLICIES, **(policies or {}))
    by_policy = _policy_grouping(aggregators, policies)
    serialized = [serialize_topology(t) for t in topologies]
    spec_doc = {
        "family": "decentralized_delay",
        "topologies": serialized,
        "staleness_bounds": [int(t) for t in staleness_bounds],
        "drop_rates": [float(d) for d in drop_rates],
        "aggregators": list(aggregators),
        "attack": attack,
        "policies": {k: v for k, v in sorted(resolved.items())},
        "iterations": int(iterations),
        "seeds": [int(s) for s in seeds],
        "delay_high": int(delay_high),
        "engine": engine,
    }
    sweep_hash = spec_hash(spec_doc)
    cells: List[SweepCell] = []
    for t, (topology, topo_payload) in enumerate(zip(topologies, serialized)):
        for tau in staleness_bounds:
            for drop_rate in drop_rates:
                for policy, policy_aggregators in by_policy.items():
                    key = (
                        f"t{t}-{topology.name}/tau{int(tau)}/"
                        f"drop{float(drop_rate)}/{policy}"
                    )
                    payload: Dict[str, object] = {
                        "topology": topo_payload,
                        "staleness_bound": int(tau),
                        "drop_rate": float(drop_rate),
                        "aggregators": list(policy_aggregators),
                        "policy": policy,
                        "attack": attack,
                        "iterations": int(iterations),
                        "seeds": [int(s) for s in seeds],
                        "delay_high": int(delay_high),
                        "engine": engine,
                    }
                    if (
                        engine == "batched"
                        and config.checkpoint_dir is not None
                        and config.checkpoint_every is not None
                    ):
                        payload["checkpoint"] = {
                            "dir": str(config.checkpoint_dir),
                            "spec_hash": sweep_hash,
                            "key": key,
                            "every": int(config.checkpoint_every),
                        }
                    cells.append(SweepCell(key=key, payload=payload))
    report = run_sweep_cells(
        spec_doc, cells, _run_decentralized_delay_cell, config
    )
    usable = report.results()
    rows: List[DecentralizedDelaySweepRow] = []
    for cell in cells:
        payload = usable.get(cell.key)
        if payload is None:
            continue
        rows.extend(
            DecentralizedDelaySweepRow(**row) for row in payload["rows"]
        )
    return rows, report


def render_decentralized_delay_report(
    rows: Sequence[DecentralizedDelaySweepRow], iterations: int = 300
) -> str:
    """The gossip-under-delay report as an aligned text table."""
    return format_table(
        headers=[
            "topology",
            "tau",
            "drop",
            "filter",
            "policy",
            "attack",
            "radius (mean)",
            "radius (worst)",
            "gap (mean)",
            "missing",
            "staleness",
            "stalled",
        ],
        rows=[
            [
                r.topology,
                r.staleness_bound,
                r.drop_rate,
                r.aggregator,
                r.policy,
                r.attack or "honest",
                r.mean_radius,
                r.worst_radius,
                r.mean_gap,
                r.missing_rate,
                r.mean_staleness,
                r.stalled,
            ]
            for r in rows
        ],
        title=(
            "Delay-tolerant decentralized robust DGD on the Appendix-J "
            f"system - convergence radius and consensus gap after "
            f"{iterations} rounds under uniform per-edge delivery delays"
        ),
    )
