"""Table 1: approximation errors of CGE and CWTM under both fault types.

For each (gradient-filter, fault-behaviour) pair the paper reports the
output ``x_out = x_500`` and ``dist(x_H, x_out)``; the headline claim is
that every filtered run lands within ε = 0.0890 of x_H.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .orchestrator import OrchestratorConfig, SweepReport
from .paper_regression import PaperProblem, paper_problem
from .reporting import format_table
from .runner import (
    SweepSpec,
    orchestrated_regression_sweep,
    run_regression_sweep,
)

__all__ = [
    "Table1Row",
    "generate_table1",
    "orchestrated_table1",
    "render_table1",
    "PAPER_TABLE1",
]

#: Table 1's (filter, fault behaviour) grid, in paper order.
TABLE1_COMBOS = tuple(
    (aggregator, attack)
    for aggregator in ("cge", "cwtm")
    for attack in ("gradient_reverse", "random")
)

#: The paper's reported distances, for side-by-side comparison in reports.
PAPER_TABLE1: Dict[Tuple[str, str], float] = {
    ("cge", "gradient_reverse"): 0.0239,
    ("cge", "random"): 4.72e-5,
    ("cwtm", "gradient_reverse"): 0.0167,
    ("cwtm", "random"): 1.51e-3,
}


@dataclass
class Table1Row:
    """One cell-group of Table 1."""

    aggregator: str
    attack: str
    output: np.ndarray
    distance: float
    paper_distance: float
    within_epsilon: bool


def generate_table1(
    problem: PaperProblem = None,
    iterations: int = 500,
    seed: int = 0,
) -> List[Table1Row]:
    """Run the four executions of Table 1 as one lockstep batch."""
    problem = problem or paper_problem()
    results = run_regression_sweep(
        problem,
        [
            SweepSpec(aggregator=a, attack=b, seed=seed)
            for a, b in TABLE1_COMBOS
        ],
        iterations=iterations,
    )
    return _rows_from_results(problem, results)


def _rows_from_results(problem: PaperProblem, results) -> List[Table1Row]:
    rows: List[Table1Row] = []
    for result in results:
        rows.append(
            Table1Row(
                aggregator=result.aggregator,
                attack=result.attack,
                output=result.output,
                distance=result.distance,
                paper_distance=PAPER_TABLE1[(result.aggregator, result.attack)],
                within_epsilon=result.distance < problem.epsilon,
            )
        )
    return rows


def orchestrated_table1(
    iterations: int = 500,
    seed: int = 0,
    config: OrchestratorConfig = None,
) -> Tuple[List[Table1Row], SweepReport]:
    """Table 1 through the crash-safe orchestrator, one cell per combo.

    Cells checkpoint, resume and shard per
    :class:`~repro.experiments.orchestrator.OrchestratorConfig`; rows of
    failed cells are absent (see ``report.failed_cells``).  Workers
    rebuild the default paper problem, so there is no ``problem``
    parameter.
    """
    problem = paper_problem()
    results, report = orchestrated_regression_sweep(
        [
            SweepSpec(aggregator=a, attack=b, seed=seed)
            for a, b in TABLE1_COMBOS
        ],
        iterations=iterations,
        config=config,
    )
    return _rows_from_results(problem, results), report


def render_table1(rows: List[Table1Row], epsilon: float) -> str:
    """Paper-shaped text rendering of the Table 1 rows."""
    body = [
        [
            row.aggregator.upper(),
            row.attack,
            row.output,
            row.distance,
            row.paper_distance,
            "yes" if row.within_epsilon else "NO",
        ]
        for row in rows
    ]
    return format_table(
        headers=[
            "filter",
            "fault",
            "x_out",
            "dist(x_H, x_out)",
            "paper dist",
            f"< eps={epsilon:g}",
        ],
        rows=body,
        title="Table 1 — distributed linear regression, n=6, f=1 (agent 1 faulty)",
    )
