"""Crash-safe, sharded sweep execution: cells, supervision, resume.

Every experiment family decomposes its sweep into *cells* — independent
units of work (a configuration times a seed chunk) identified by a stable
string key — and routes them through :func:`run_sweep_cells`:

* **Content-addressed checkpointing.**  The sweep spec is hashed
  (:func:`~repro.experiments.checkpoint.spec_hash`) and each completed
  cell's result is atomically written to a
  :class:`~repro.experiments.checkpoint.CheckpointStore` under
  ``(spec_hash, cell_key)``.  A re-run of the same spec skips finished
  cells (``resume=True``, the default); an interrupted sweep — crash,
  ``kill -9``, ``max_cells`` budget — resumes from the last completed
  cell, and a *changed* spec hashes differently so it can never collide
  with stale results.

* **Supervised multi-process sharding.**  ``jobs`` worker processes run
  cells concurrently, each attempt in its own ``multiprocessing`` child
  with a per-cell deadline.  A worker that raises a *deterministic* error
  fails the cell immediately (re-running identical code on identical
  inputs cannot help); a worker that crashes (killed, segfault), exceeds
  the ``cell_timeout``, or raises a *transient* error (``MemoryError``,
  ``OSError``) is retried with exponential backoff plus deterministic
  jitter, up to ``max_retries`` times.

* **Graceful degradation.**  A cell whose retry budget is exhausted does
  not abort the sweep: it lands in the report's ``failed_cells`` with its
  error provenance, every other cell completes, and the caller decides
  what a partial sweep is worth.

* **Mid-trajectory engine checkpoints.**  Long cells can additionally
  snapshot their *engine* state every ``checkpoint_every`` rounds through
  :func:`run_engine_checkpointed` — the resumable
  ``run(T, start_round=k)`` / ``state_dict`` / ``load_state`` contract of
  the batched engines guarantees the resumed trajectory is bit-identical
  to an uninterrupted run (DESIGN.md, "resume ≡ uninterrupted").

Workers must be module-level picklable callables taking one JSON-able
payload dict and returning a JSON-able result; they re-derive everything
else (problem instances, topologies) from the payload, so a cell is
reproducible from its checkpoint key alone.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..telemetry.recorder import (
    NULL_RECORDER,
    EventSink,
    Recorder,
    current_recorder,
    use_recorder,
)
from .checkpoint import CheckpointStore, spec_hash

__all__ = [
    "TRANSIENT_EXCEPTIONS",
    "SweepCell",
    "OrchestratorConfig",
    "CellOutcome",
    "SweepReport",
    "EngineCheckpointer",
    "run_engine_checkpointed",
    "run_sweep_cells",
]

#: Exception types a worker may raise transiently: the same cell can
#: succeed on retry (freed memory, recovered filesystem).  Everything
#: else is deterministic — the cell's inputs fully determine the error —
#: and is failed without retry.
TRANSIENT_EXCEPTIONS = (MemoryError, OSError)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    ``key`` is the cell's stable identity inside its sweep (checkpoint
    addressing, report provenance); ``payload`` is the JSON-able argument
    the family's worker function receives.
    """

    key: str
    payload: Dict[str, object]


@dataclass
class OrchestratorConfig:
    """Execution policy for :func:`run_sweep_cells`.

    ``jobs=1`` with no ``cell_timeout`` runs cells in the calling process
    (no supervision overhead); any concurrency or timeout spawns one
    supervised child process per attempt.  ``max_cells`` bounds how many
    cells this *invocation* may execute (cached cells are free) — the
    sweep reports ``interrupted=True`` and the next resumed invocation
    picks up the remainder, which is also how the CI smoke test kills a
    sweep "halfway" deterministically.
    """

    jobs: int = 1
    checkpoint_dir: Optional[Union[str, Path]] = None
    resume: bool = True
    cell_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.25
    max_cells: Optional[int] = None
    checkpoint_every: Optional[int] = None
    #: seconds between ``cell_heartbeat`` telemetry events per running
    #: cell (supervised mode, recording on); liveness for long cells.
    heartbeat_every: float = 1.0

    def __post_init__(self):
        if not self.heartbeat_every > 0:
            raise ValueError(
                f"heartbeat_every must be positive, got "
                f"heartbeat_every={self.heartbeat_every!r}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got jobs={self.jobs!r}")
        if self.cell_timeout is not None and not self.cell_timeout > 0:
            raise ValueError(
                f"cell_timeout must be positive, got "
                f"cell_timeout={self.cell_timeout!r}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got "
                f"max_retries={self.max_retries!r}"
            )
        if self.backoff < 0:
            raise ValueError(
                f"backoff must be non-negative, got backoff={self.backoff!r}"
            )
        if self.max_cells is not None and self.max_cells < 0:
            raise ValueError(
                f"max_cells must be non-negative, got "
                f"max_cells={self.max_cells!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got "
                f"checkpoint_every={self.checkpoint_every!r}"
            )


@dataclass
class CellOutcome:
    """How one cell ended: completed / cached / failed / skipped."""

    key: str
    status: str
    result: Optional[object] = None
    error: Optional[str] = None
    attempts: int = 0


@dataclass
class SweepReport:
    """The orchestrated sweep's provenance: every cell's outcome.

    ``failed_cells`` is the graceful-degradation contract: a sweep with
    exhausted cells still returns, and the report says exactly which
    cells are missing and why.
    """

    spec_hash: str
    outcomes: List[CellOutcome] = field(default_factory=list)
    interrupted: bool = False

    def _by_status(self, status: str) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def completed(self) -> List[CellOutcome]:
        """Cells executed to completion this invocation."""
        return self._by_status("completed")

    @property
    def cached(self) -> List[CellOutcome]:
        """Cells answered from the checkpoint store."""
        return self._by_status("cached")

    @property
    def skipped(self) -> List[CellOutcome]:
        """Cells not attempted (``max_cells`` budget exhausted)."""
        return self._by_status("skipped")

    @property
    def failed_cells(self) -> List[Dict[str, object]]:
        """Provenance of every exhausted cell: key, error, attempts."""
        return [
            {"key": o.key, "error": o.error, "attempts": o.attempts}
            for o in self.outcomes
            if o.status == "failed"
        ]

    @property
    def quarantined_cells(self) -> List[Dict[str, object]]:
        """Provenance of every usable cell that froze trials mid-run.

        Unlike ``failed_cells`` these cells *returned* — their surviving
        trials are real results — but some trials were quarantined by the
        engine's health guard (non-finite iterate, divergence, aggregator
        refusal).  Each entry carries the cell key plus the engine's
        per-trial quarantine records, so a post-mortem can name the exact
        trial, round, and reason without re-running anything.
        """
        flagged: List[Dict[str, object]] = []
        for o in self.outcomes:
            if o.status not in ("completed", "cached"):
                continue
            records = _quarantine_records(o.result)
            if records:
                flagged.append({"key": o.key, "quarantined": records})
        return flagged

    def results(self) -> Dict[str, object]:
        """Usable cell results by key (completed plus cached)."""
        return {
            o.key: o.result
            for o in self.outcomes
            if o.status in ("completed", "cached")
        }


def _quarantine_records(result: object) -> List[Dict[str, object]]:
    """The quarantine records a cell result carries, if any.

    Cell workers attach the engine's per-trial quarantine summary under a
    ``"quarantined"`` key; anything else (legacy results, non-dict
    payloads) reads as clean.
    """
    if not isinstance(result, dict):
        return []
    records = result.get("quarantined")
    if not isinstance(records, list):
        return []
    return [r for r in records if isinstance(r, dict)]


# -- mid-trajectory engine checkpointing --------------------------------------


@dataclass
class EngineCheckpointer:
    """Partial-state persistence for one cell's engine run.

    Snapshots live in the same store as completed cells, under the cell's
    key suffixed ``@partial`` (same atomic write, same corruption
    tolerance), and are dropped when the cell completes.
    """

    store: CheckpointStore
    sweep_hash: str
    key: str

    @property
    def partial_key(self) -> str:
        return f"{self.key}@partial"

    def load(self) -> Optional[Dict[str, object]]:
        state = self.store.get(self.sweep_hash, self.partial_key)
        return state if isinstance(state, dict) else None

    def save(self, state: Dict[str, object]) -> None:
        self.store.put(self.sweep_hash, self.partial_key, state)

    def discard(self) -> None:
        self.store.discard(self.sweep_hash, self.partial_key)


def run_engine_checkpointed(
    make_engine: Callable[[], object],
    iterations: int,
    checkpoint_every: Optional[int] = None,
    checkpointer: Optional[EngineCheckpointer] = None,
):
    """Drive a resumable engine to ``iterations`` with periodic snapshots.

    The engine contract is the batched engines' resume API:
    ``run(T, start_round=k)`` (absolute horizon, explicit resume point),
    ``state_dict()`` at chunk boundaries, ``load_state`` onto a fresh
    instance.  A usable partial snapshot restores the engine and the run
    continues from its round; a corrupt or incompatible snapshot (code or
    spec drift) is discarded and the run restarts from round 0.  Either
    way the result is bit-identical to an uninterrupted
    ``make_engine().run(iterations)`` — the resumable-engine invariant
    pinned by ``tests/distsys/test_resumable_engines.py``.
    """
    recorder = current_recorder()
    engine = make_engine()
    if checkpointer is not None:
        state = checkpointer.load()
        if state is not None:
            try:
                engine.load_state(state)
            except Exception:
                checkpointer.discard()
                engine = make_engine()
    if engine.iteration >= iterations:
        # The partial snapshot already covers the horizon; one final chunk
        # cannot be empty, so rebuild and rerun (cheap, and only reachable
        # when a spec shrank its horizon under the same key — which a
        # spec-hash change normally prevents).
        engine = make_engine()
    if recorder.enabled and hasattr(engine, "set_recorder"):
        # One central attachment point: every checkpointed engine reports
        # its stage timings into the ambient stream without the family
        # workers threading a recorder through make_engine.
        engine.set_recorder(recorder)
    chunk = checkpoint_every or iterations
    trace = None
    while engine.iteration < iterations:
        boundary = min(iterations, engine.iteration + chunk)
        with recorder.span(
            "engine_chunk",
            start=int(engine.iteration),
            boundary=int(boundary),
        ):
            trace = engine.run(boundary, start_round=engine.iteration)
        if checkpointer is not None and engine.iteration < iterations:
            checkpointer.save(engine.state_dict())
    if checkpointer is not None:
        checkpointer.discard()
    return trace


# -- supervised execution -----------------------------------------------------


class _PipeSink(EventSink):
    """Stream a worker's events to the supervisor as ``("evt", ...)``.

    Rides the attempt's existing result pipe; every event tuple precedes
    the final ``("ok", ...)``/``("err", ...)`` message, and pipes are
    FIFO, so the supervisor sees the worker's whole stream before it
    settles the cell.  A broken pipe (supervisor killed the attempt)
    drops the event — telemetry must never fail a worker.
    """

    def __init__(self, conn):
        self._conn = conn

    def write(self, event: Dict[str, object]) -> None:
        try:
            self._conn.send(("evt", event))
        except (BrokenPipeError, OSError, ValueError):
            pass


def _cell_entry(conn, worker, payload, telemetry=None) -> None:
    """Child-process entry: run the worker, report over the pipe.

    ``telemetry`` is ``None`` (recording off — the historical code path)
    or the attempt's ``(cell key, attempt number, progress_every)``: the
    child then installs a pipe-backed recorder as the process-global
    one, so the worker, its engines, and the checkpoint layer all stream
    into the supervisor's merged event stream.  Span ids are prefixed
    with ``key#a<attempt>:`` so no two attempts (or the supervisor
    itself) can collide.
    """
    recorder: Recorder = NULL_RECORDER
    if telemetry is not None:
        key, attempt, progress_every = telemetry
        recorder = Recorder(
            sinks=[_PipeSink(conn)],
            context={"cell": key, "attempt": int(attempt)},
            span_prefix=f"{key}#a{attempt}:",
            progress_every=progress_every,
        )
    try:
        with use_recorder(recorder):
            if recorder.enabled:
                try:
                    with recorder.span("cell"):
                        result = worker(payload)
                finally:
                    recorder.flush_metrics()
            else:
                result = worker(payload)
    except BaseException as exc:
        transient = isinstance(exc, TRANSIENT_EXCEPTIONS)
        message = f"{type(exc).__name__}: {exc}"
        try:
            conn.send(("err", transient, message, traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    except BaseException as exc:
        # Unpicklable/oversized result: deterministic — same payload will
        # fail the same way, so report it as such rather than crashing.
        conn.send(("err", False, f"result not transmittable: {exc!r}", ""))
    finally:
        conn.close()


def _retry_delay(key: str, attempt: int, backoff: float) -> float:
    """Exponential backoff with deterministic jitter in [1.0, 1.25)."""
    jitter = random.Random(f"{key}#{attempt}").random()
    return backoff * (2 ** (attempt - 1)) * (1.0 + 0.25 * jitter)


@dataclass
class _Attempt:
    cell: SweepCell
    attempt: int
    eligible_at: float = 0.0


def _classify_failure(
    item: _Attempt,
    transient: bool,
    message: str,
    config: OrchestratorConfig,
    now: float,
) -> Tuple[Optional[_Attempt], Optional[CellOutcome]]:
    """Retry the attempt or fail the cell, per the transience contract."""
    if transient and item.attempt <= config.max_retries:
        return (
            _Attempt(
                cell=item.cell,
                attempt=item.attempt + 1,
                eligible_at=now
                + _retry_delay(item.cell.key, item.attempt, config.backoff),
            ),
            None,
        )
    return (
        None,
        CellOutcome(
            key=item.cell.key,
            status="failed",
            error=message,
            attempts=item.attempt,
        ),
    )


@dataclass
class _Running:
    """One live supervised attempt and its supervision bookkeeping."""

    proc: object
    conn: object
    deadline: Optional[float]
    item: _Attempt
    started: float
    last_beat: float


def _settle(
    recorder: Recorder,
    item: _Attempt,
    retry: Optional[_Attempt],
    error: str,
    seconds: float,
) -> None:
    """Emit the retry/failed lifecycle event for one failed attempt."""
    if not recorder.enabled:
        return
    if retry is not None:
        recorder.emit(
            "cell_retry",
            cell=item.cell.key,
            attempt=item.attempt,
            error=error,
            seconds=seconds,
        )
        recorder.count("cell_retries")
    else:
        recorder.emit(
            "cell_failed",
            cell=item.cell.key,
            attempts=item.attempt,
            error=error,
            seconds=seconds,
        )


def _run_cells_supervised(
    queue: List[_Attempt],
    worker: Callable[[Dict[str, object]], object],
    config: OrchestratorConfig,
    recorder: Recorder = NULL_RECORDER,
    on_complete: Optional[Callable[[CellOutcome], None]] = None,
) -> List[CellOutcome]:
    """One supervised child process per attempt; jobs-wide concurrency."""
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    outcomes: List[CellOutcome] = []
    running: Dict[str, _Running] = {}
    pending = list(queue)

    def finish(key: str, outcome: Optional[CellOutcome], retry) -> None:
        run = running.pop(key)
        run.conn.close()
        run.proc.join(timeout=5.0)
        if run.proc.is_alive():
            run.proc.kill()
            run.proc.join()
        if outcome is not None:
            outcomes.append(outcome)
            if on_complete is not None:
                on_complete(outcome)
        if retry is not None:
            pending.append(retry)

    while pending or running:
        now = time.monotonic()
        # Launch every eligible attempt that fits under the jobs cap.
        launchable = [
            item
            for item in pending
            if item.eligible_at <= now and item.cell.key not in running
        ]
        for item in launchable:
            if len(running) >= config.jobs:
                break
            pending.remove(item)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_cell_entry,
                args=(
                    child_conn,
                    worker,
                    item.cell.payload,
                    (item.cell.key, item.attempt, recorder.progress_every)
                    if recorder.enabled
                    else None,
                ),
            )
            proc.start()
            child_conn.close()
            deadline = (
                now + config.cell_timeout
                if config.cell_timeout is not None
                else None
            )
            running[item.cell.key] = _Running(
                proc=proc,
                conn=parent_conn,
                deadline=deadline,
                item=item,
                started=now,
                last_beat=now,
            )
            if recorder.enabled:
                recorder.emit(
                    "cell_started", cell=item.cell.key, attempt=item.attempt
                )
        if recorder.enabled:
            recorder.gauge("cells_running", len(running))
            recorder.gauge("cells_pending", len(pending))

        progressed = False
        now = time.monotonic()
        for key in list(running):
            run = running[key]
            item = run.item
            message = None
            try:
                # Drain the attempt's streamed telemetry events (if any)
                # up to its final ok/err message — pipes are FIFO, so the
                # final message is always last.
                while run.conn.poll():
                    received = run.conn.recv()
                    if received[0] == "evt":
                        recorder.forward(received[1])
                        continue
                    message = received
                    break
            except (EOFError, OSError):
                message = None  # writer died mid-send: treat as crash
                if run.proc.is_alive():
                    run.proc.join(timeout=5.0)
            if message is not None:
                progressed = True
                elapsed = now - run.started
                if message[0] == "ok":
                    if recorder.enabled:
                        recorder.emit(
                            "cell_completed",
                            cell=key,
                            attempts=item.attempt,
                            seconds=elapsed,
                        )
                    finish(
                        key,
                        CellOutcome(
                            key=key,
                            status="completed",
                            result=message[1],
                            attempts=item.attempt,
                        ),
                        None,
                    )
                else:
                    _, transient, text, _ = message
                    retry, outcome = _classify_failure(
                        item, transient, text, config, now
                    )
                    _settle(recorder, item, retry, text, elapsed)
                    finish(key, outcome, retry)
            elif not run.proc.is_alive():
                progressed = True
                text = f"worker crashed (exit code {run.proc.exitcode})"
                retry, outcome = _classify_failure(
                    item,
                    True,  # a crash is environmental until retries exhaust
                    text,
                    config,
                    now,
                )
                _settle(recorder, item, retry, text, now - run.started)
                finish(key, outcome, retry)
            elif run.deadline is not None and now > run.deadline:
                progressed = True
                run.proc.kill()
                run.proc.join()
                text = f"cell timed out after {config.cell_timeout:g}s"
                if recorder.enabled:
                    recorder.emit(
                        "cell_timeout",
                        cell=key,
                        attempt=item.attempt,
                        seconds=now - run.started,
                    )
                retry, outcome = _classify_failure(
                    item, True, text, config, now
                )
                _settle(recorder, item, retry, text, now - run.started)
                finish(key, outcome, retry)
            elif (
                recorder.enabled
                and now - run.last_beat >= config.heartbeat_every
            ):
                run.last_beat = now
                recorder.emit(
                    "cell_heartbeat",
                    cell=key,
                    attempt=item.attempt,
                    elapsed=now - run.started,
                )
        if not progressed:
            time.sleep(0.01)
    if recorder.enabled:
        recorder.gauge("cells_running", 0)
        recorder.gauge("cells_pending", 0)
    return outcomes


def _run_cells_in_process(
    queue: List[_Attempt],
    worker: Callable[[Dict[str, object]], object],
    config: OrchestratorConfig,
    recorder: Recorder = NULL_RECORDER,
    on_complete: Optional[Callable[[CellOutcome], None]] = None,
) -> List[CellOutcome]:
    """The unsupervised fast path: jobs=1, no timeout, same semantics."""
    outcomes: List[CellOutcome] = []

    def settle(outcome: CellOutcome) -> None:
        outcomes.append(outcome)
        if on_complete is not None:
            on_complete(outcome)

    for item in queue:
        key = item.cell.key
        attempt = item.attempt
        while True:
            started = time.monotonic()
            try:
                if recorder.enabled:
                    recorder.emit("cell_started", cell=key, attempt=attempt)
                    try:
                        with recorder.span("cell", cell=key):
                            result = worker(item.cell.payload)
                    finally:
                        # Delta-flush so this cell's engine metrics land
                        # in their own metrics event, like a worker's.
                        recorder.flush_metrics()
                else:
                    result = worker(item.cell.payload)
            except Exception as exc:
                transient = isinstance(exc, TRANSIENT_EXCEPTIONS)
                message = f"{type(exc).__name__}: {exc}"
                elapsed = time.monotonic() - started
                if transient and attempt <= config.max_retries:
                    if recorder.enabled:
                        recorder.emit(
                            "cell_retry",
                            cell=key,
                            attempt=attempt,
                            error=message,
                            seconds=elapsed,
                        )
                        recorder.count("cell_retries")
                    time.sleep(
                        _retry_delay(item.cell.key, attempt, config.backoff)
                    )
                    attempt += 1
                    continue
                if recorder.enabled:
                    recorder.emit(
                        "cell_failed",
                        cell=key,
                        attempts=attempt,
                        error=message,
                        seconds=elapsed,
                    )
                settle(
                    CellOutcome(
                        key=item.cell.key,
                        status="failed",
                        error=message,
                        attempts=attempt,
                    )
                )
                break
            if recorder.enabled:
                recorder.emit(
                    "cell_completed",
                    cell=key,
                    attempts=attempt,
                    seconds=time.monotonic() - started,
                )
            settle(
                CellOutcome(
                    key=item.cell.key,
                    status="completed",
                    result=result,
                    attempts=attempt,
                )
            )
            break
    return outcomes


def run_sweep_cells(
    spec: Dict[str, object],
    cells: Sequence[SweepCell],
    worker: Callable[[Dict[str, object]], object],
    config: Optional[OrchestratorConfig] = None,
    recorder: Optional[Recorder] = None,
) -> SweepReport:
    """Execute a sweep's cells crash-safely; returns the full report.

    ``spec`` is the sweep's canonical description — everything that shapes
    the results — hashed into the checkpoint address space.  ``cells``
    must carry unique keys; results are reported in cell order regardless
    of completion order.  ``worker`` must be a module-level picklable
    callable (it runs in child processes whenever supervision is on).

    ``recorder`` (default: the ambient :func:`current_recorder`) receives
    the sweep's full lifecycle stream — scheduled/cached/skipped cells,
    per-attempt started/heartbeat/retry/timeout/completed/failed events
    (worker events stream back over the attempt pipes), and the
    checkpoint layer's read/write/corruption events.  Recording is
    observational only: with the default :data:`NULL_RECORDER` this
    function is behaviourally identical to the pre-telemetry one.
    """
    config = config or OrchestratorConfig()
    rec = recorder if recorder is not None else current_recorder()
    sweep_hash = spec_hash(spec)
    seen = set()
    for cell in cells:
        if cell.key in seen:
            raise ValueError(f"duplicate cell key: {cell.key!r}")
        seen.add(cell.key)

    with use_recorder(rec), rec.span(
        "sweep", sweep_hash=sweep_hash, cells=len(cells)
    ):
        store = (
            CheckpointStore(config.checkpoint_dir)
            if config.checkpoint_dir is not None
            else None
        )
        by_key: Dict[str, CellOutcome] = {}
        to_run: List[SweepCell] = []
        for cell in cells:
            if rec.enabled:
                rec.emit("cell_scheduled", cell=cell.key)
            cached = (
                store.get(sweep_hash, cell.key)
                if (store is not None and config.resume)
                else None
            )
            if cached is not None:
                if rec.enabled:
                    rec.emit("cell_cached", cell=cell.key)
                by_key[cell.key] = CellOutcome(
                    key=cell.key, status="cached", result=cached
                )
            else:
                to_run.append(cell)

        interrupted = False
        if config.max_cells is not None and len(to_run) > config.max_cells:
            for cell in to_run[config.max_cells:]:
                if rec.enabled:
                    rec.emit("cell_skipped", cell=cell.key)
                by_key[cell.key] = CellOutcome(key=cell.key, status="skipped")
            to_run = to_run[: config.max_cells]
            interrupted = True

        def persist(outcome: CellOutcome) -> None:
            # Checkpoints land the moment each cell completes, not at
            # sweep end: a sweep killed -9 mid-run resumes from every
            # cell that finished before the kill.
            if outcome.status != "completed" or store is None:
                return
            try:
                store.put(sweep_hash, outcome.key, outcome.result)
            except OSError as exc:
                # Disk full (or any filesystem trouble) on the
                # parent-side checkpoint write must not discard a
                # finished cell: the result stays in this report,
                # only the on-disk copy is missing, so the cell
                # simply re-runs on a future resume.
                warnings.warn(
                    f"checkpoint write failed for cell "
                    f"{outcome.key!r} at "
                    f"{store.path_for(sweep_hash, outcome.key)}: "
                    f"{exc}; result kept in memory, cell will "
                    f"re-run on resume",
                    RuntimeWarning,
                    stacklevel=2,
                )
                if rec.enabled:
                    rec.emit(
                        "checkpoint_write_failed",
                        cell=outcome.key,
                        error=str(exc),
                    )

        queue = [_Attempt(cell=cell, attempt=1) for cell in to_run]
        supervised = config.jobs > 1 or config.cell_timeout is not None
        executed = (
            _run_cells_supervised(queue, worker, config, rec, persist)
            if supervised
            else _run_cells_in_process(queue, worker, config, rec, persist)
        )
        for outcome in executed:
            by_key[outcome.key] = outcome
        if rec.enabled:
            for outcome in executed:
                records = _quarantine_records(outcome.result)
                if records:
                    rec.emit(
                        "cell_quarantined",
                        cell=outcome.key,
                        trials=len(records),
                        records=records,
                    )

        report = SweepReport(
            spec_hash=sweep_hash,
            outcomes=[by_key[cell.key] for cell in cells],
            interrupted=interrupted,
        )
    rec.flush_metrics()
    return report
