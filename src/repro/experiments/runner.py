"""Experiment runner for the regression workloads.

Wraps the distributed simulator with the paper's measurement protocol:
run the DGD loop for a fixed budget, take ``x_out = x_T`` (the paper uses
T = 500), and report ``dist(x_H, x_out)`` together with the full trace for
the figure series.

Two execution paths coexist:

* :func:`run_regression` / :func:`run_fault_free` drive the per-trial
  :class:`~repro.distsys.simulator.SynchronousSimulator` — the reference
  oracle, with the full gradient-level :class:`ExecutionTrace`;
* :func:`run_regression_sweep` / :func:`run_fault_free_batch` drive the
  tensorized :class:`~repro.distsys.batch.BatchSimulator`, executing a whole
  (filter, attack, seed) grid in lockstep and recording only the iterate
  trajectory.  Table 1, the figure series and the sweep ablations route
  through this path; ``tests/distsys/test_batch_equivalence`` pins the two
  paths to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.mean import MeanAggregator
from ..aggregators.registry import make_aggregator
from ..attacks.base import ByzantineAttack
from ..attacks.registry import make_attack
from ..distsys.batch import BatchSimulator, BatchTrial, run_dgd_batch
from ..distsys.simulator import run_dgd
from ..distsys.trace import ExecutionTrace
from ..functions.batched import stack_costs
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import current_recorder
from .checkpoint import CheckpointStore, spec_hash
from .orchestrator import (
    EngineCheckpointer,
    OrchestratorConfig,
    SweepCell,
    SweepReport,
    run_engine_checkpointed,
    run_sweep_cells,
)
from .paper_regression import PaperProblem, paper_problem

__all__ = [
    "RegressionRunResult",
    "run_regression",
    "run_fault_free",
    "SweepSpec",
    "SweepRunResult",
    "run_regression_sweep",
    "orchestrated_regression_sweep",
    "run_fault_free_batch",
]


@dataclass
class RegressionRunResult:
    """One execution of the Appendix-J experiment."""

    label: str
    aggregator: str
    attack: Optional[str]
    output: np.ndarray
    distance: float           # dist(x_H, x_out)
    final_loss: float         # sum_{i in H} Q_i(x_out)
    trace: ExecutionTrace
    losses: np.ndarray        # per-iteration honest aggregate loss
    distances: np.ndarray     # per-iteration ||x_t - x_H||

    def __repr__(self) -> str:
        return (
            f"RegressionRunResult(label={self.label!r},"
            f" distance={self.distance:.6g})"
        )


def _series(problem: PaperProblem, trace: ExecutionTrace) -> Dict[str, np.ndarray]:
    return {
        "losses": trace.losses(problem.honest_aggregate_loss),
        "distances": trace.distances_to(problem.x_h),
    }


def run_regression(
    problem: PaperProblem,
    aggregator: Union[str, GradientAggregator],
    attack: Union[str, ByzantineAttack, None],
    iterations: int = 500,
    seed: int = 0,
    label: Optional[str] = None,
) -> RegressionRunResult:
    """Run the paper's experiment with the given filter and fault behaviour.

    ``attack=None`` keeps the Byzantine agent honest (it truthfully reports
    its gradient) while the filter still runs — useful for filter-overhead
    ablations; for the paper's *fault-free* baseline (faulty agent removed
    entirely) use :func:`run_fault_free`.
    """
    agg_name = aggregator if isinstance(aggregator, str) else aggregator.name
    if isinstance(aggregator, str):
        aggregator = make_aggregator(aggregator, problem.n, problem.f)
    attack_name: Optional[str] = None
    if isinstance(attack, str):
        attack_name = attack
        attack = make_attack(attack)
    elif attack is not None:
        attack_name = attack.name

    faulty = list(problem.faulty_ids) if attack is not None else []
    trace = run_dgd(
        costs=problem.costs,
        faulty_ids=faulty,
        aggregator=aggregator,
        attack=attack,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        seed=seed,
    )
    series = _series(problem, trace)
    output = trace.final_estimate
    return RegressionRunResult(
        label=label or f"{agg_name}/{attack_name or 'honest'}",
        aggregator=agg_name,
        attack=attack_name,
        output=output,
        distance=problem.distance_to_honest_minimizer(output),
        final_loss=problem.honest_aggregate_loss(output),
        trace=trace,
        losses=series["losses"],
        distances=series["distances"],
    )


@dataclass
class SweepSpec:
    """One cell of a batched regression sweep."""

    aggregator: Union[str, GradientAggregator]
    attack: Union[str, ByzantineAttack, None]
    seed: int = 0
    schedule: Optional[StepSchedule] = None
    label: Optional[str] = None


@dataclass
class SweepRunResult:
    """One trial's outcome from the batched sweep engine.

    Mirrors :class:`RegressionRunResult` minus the gradient-level trace —
    the batch path records iterates lazily; rerun the cell through
    :func:`run_regression` when per-iteration gradients are needed.
    """

    label: str
    aggregator: str
    attack: Optional[str]
    seed: int
    output: np.ndarray
    distance: float           # dist(x_H, x_out)
    final_loss: float         # sum_{i in H} Q_i(x_out)
    losses: np.ndarray        # per-iteration honest aggregate loss
    distances: np.ndarray     # per-iteration ||x_t - x_H||
    estimates: np.ndarray     # iterate trajectory x_0 .. x_T, (T + 1, d)

    def __repr__(self) -> str:
        return (
            f"SweepRunResult(label={self.label!r},"
            f" distance={self.distance:.6g})"
        )


def _resolve_spec(
    problem: PaperProblem, spec: SweepSpec
) -> Tuple[BatchTrial, Tuple[str, str, Optional[str]]]:
    """One spec → (engine trial, (label, aggregator name, attack name))."""
    if isinstance(spec.aggregator, str):
        agg_name = spec.aggregator
        aggregator = make_aggregator(spec.aggregator, problem.n, problem.f)
    else:
        agg_name = spec.aggregator.name
        aggregator = spec.aggregator
    attack_name: Optional[str] = None
    attack = spec.attack
    if isinstance(attack, str):
        attack_name = attack
        attack = make_attack(attack)
    elif attack is not None:
        attack_name = attack.name
    faulty = tuple(problem.faulty_ids) if attack is not None else ()
    label = spec.label or f"{agg_name}/{attack_name or 'honest'}"
    trial = BatchTrial(
        aggregator=aggregator,
        attack=attack,
        faulty_ids=faulty,
        seed=spec.seed,
        schedule=spec.schedule,
        label=label,
    )
    return trial, (label, agg_name, attack_name)


def _results_from_batch_trace(
    problem: PaperProblem,
    stack,
    trace,
    names: Sequence[Tuple[str, str, Optional[str]]],
    specs: Sequence[SweepSpec],
) -> List[SweepRunResult]:
    """Fold a batch trace into per-spec results, in spec order."""
    honest = list(problem.honest_ids)
    losses = trace.losses(lambda pts: stack.values(pts)[:, honest].sum(axis=1))
    distances = trace.distances_to(problem.x_h)
    outputs = trace.final_estimates
    results: List[SweepRunResult] = []
    for s, ((label, agg_name, attack_name), spec) in enumerate(
        zip(names, specs)
    ):
        results.append(
            SweepRunResult(
                label=label,
                aggregator=agg_name,
                attack=attack_name,
                seed=spec.seed,
                output=outputs[s],
                distance=float(distances[s, -1]),
                final_loss=float(losses[s, -1]),
                losses=losses[s],
                distances=distances[s],
                estimates=trace.trial_estimates(s),
            )
        )
    return results


def run_regression_sweep(
    problem: PaperProblem,
    specs: Sequence[SweepSpec],
    iterations: int = 500,
    record_gradients: bool = False,
) -> List[SweepRunResult]:
    """Run every sweep cell in lockstep through the batch engine.

    All specs share the problem's costs, constraint and (unless overridden
    per spec) schedule; aggregator/attack registry names are resolved here
    so equal-config cells share vectorized kernels.  Results arrive in spec
    order.
    """
    trials: List[BatchTrial] = []
    names: List[Tuple[str, str, Optional[str]]] = []
    for spec in specs:
        trial, name = _resolve_spec(problem, spec)
        trials.append(trial)
        names.append(name)

    stack = stack_costs(problem.costs)
    trace = run_dgd_batch(
        costs=stack,
        trials=trials,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        record_gradients=record_gradients,
    )
    return _results_from_batch_trace(problem, stack, trace, names, specs)


def _run_regression_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """Orchestrator worker: one sweep spec, run standalone in a child.

    Rebuilds the paper problem in-process (cells are addressed by their
    JSON payload alone), drives the batch engine — through
    :func:`~repro.experiments.orchestrator.run_engine_checkpointed` when
    the payload carries a mid-trajectory checkpoint contract — and
    returns the result as JSON-able lists.
    """
    problem = paper_problem()
    spec = SweepSpec(
        aggregator=str(payload["aggregator"]),
        attack=payload["attack"],
        seed=int(payload["seed"]),
        label=payload.get("label"),
    )
    stack = stack_costs(problem.costs)
    trial, name = _resolve_spec(problem, spec)

    def make_engine() -> BatchSimulator:
        return BatchSimulator(
            costs=stack,
            trials=[trial],
            constraint=problem.constraint,
            schedule=problem.schedule,
            initial_estimate=problem.initial_estimate,
        )

    iterations = int(payload["iterations"])
    checkpoint = payload.get("checkpoint")
    if checkpoint:
        trace = run_engine_checkpointed(
            make_engine,
            iterations,
            checkpoint_every=int(checkpoint["every"]),
            checkpointer=EngineCheckpointer(
                store=CheckpointStore(checkpoint["dir"]),
                sweep_hash=str(checkpoint["spec_hash"]),
                key=str(checkpoint["key"]),
            ),
        )
    else:
        trace = make_engine().set_recorder(current_recorder()).run(iterations)
    result = _results_from_batch_trace(problem, stack, trace, [name], [spec])[0]
    payload_out: Dict[str, object] = {
        "label": result.label,
        "aggregator": result.aggregator,
        "attack": result.attack,
        "seed": result.seed,
        "output": result.output.tolist(),
        "distance": result.distance,
        "final_loss": result.final_loss,
        "losses": result.losses.tolist(),
        "distances": result.distances.tolist(),
        "estimates": result.estimates.tolist(),
    }
    quarantined = [
        {**dict(record), "label": trace.labels[int(record["trial"])]}
        for record in trace.quarantined
    ]
    if quarantined:
        payload_out["quarantined"] = quarantined
    return payload_out


def orchestrated_regression_sweep(
    specs: Sequence[SweepSpec],
    iterations: int = 500,
    config: Optional[OrchestratorConfig] = None,
) -> Tuple[List[SweepRunResult], SweepReport]:
    """Run a regression sweep cell-per-spec through the orchestrator.

    Each spec becomes one crash-safe cell (checkpointed, retried,
    shardable across processes); workers rebuild the default paper
    problem from the JSON payload, so specs must be registry-name based
    (string aggregator/attack, no schedule override).  Returns the
    results of every usable cell in spec order plus the
    :class:`~repro.experiments.orchestrator.SweepReport` — failed cells
    are *absent* from the results and present in
    ``report.failed_cells``.
    """
    for spec in specs:
        if not isinstance(spec.aggregator, str):
            raise ValueError(
                "orchestrated sweeps rebuild cells from JSON payloads: "
                f"pass the aggregator by registry name, got "
                f"{spec.aggregator!r}"
            )
        if spec.attack is not None and not isinstance(spec.attack, str):
            raise ValueError(
                "orchestrated sweeps rebuild cells from JSON payloads: "
                f"pass the attack by registry name, got {spec.attack!r}"
            )
        if spec.schedule is not None:
            raise ValueError(
                "orchestrated sweeps rebuild cells from JSON payloads: "
                "per-spec schedule overrides are not serializable"
            )
    config = config or OrchestratorConfig()
    spec_doc = {
        "family": "regression",
        "iterations": int(iterations),
        "specs": [
            [s.aggregator, s.attack, int(s.seed), s.label] for s in specs
        ],
    }
    sweep_hash = spec_hash(spec_doc)
    cells: List[SweepCell] = []
    for spec in specs:
        key = (
            f"{spec.aggregator}/{spec.attack or 'honest'}/s{int(spec.seed)}"
        )
        if spec.label:
            key = f"{key}/{spec.label}"
        payload: Dict[str, object] = {
            "aggregator": spec.aggregator,
            "attack": spec.attack,
            "seed": int(spec.seed),
            "label": spec.label,
            "iterations": int(iterations),
        }
        if (
            config.checkpoint_dir is not None
            and config.checkpoint_every is not None
        ):
            payload["checkpoint"] = {
                "dir": str(config.checkpoint_dir),
                "spec_hash": sweep_hash,
                "key": key,
                "every": int(config.checkpoint_every),
            }
        cells.append(SweepCell(key=key, payload=payload))
    report = run_sweep_cells(spec_doc, cells, _run_regression_cell, config)
    usable = report.results()
    results: List[SweepRunResult] = []
    for cell in cells:
        payload = usable.get(cell.key)
        if payload is None:
            continue
        results.append(
            SweepRunResult(
                label=str(payload["label"]),
                aggregator=str(payload["aggregator"]),
                attack=payload["attack"],
                seed=int(payload["seed"]),
                output=np.asarray(payload["output"], dtype=float),
                distance=float(payload["distance"]),
                final_loss=float(payload["final_loss"]),
                losses=np.asarray(payload["losses"], dtype=float),
                distances=np.asarray(payload["distances"], dtype=float),
                estimates=np.asarray(payload["estimates"], dtype=float),
            )
        )
    return results, report


def run_fault_free_batch(
    problem: PaperProblem,
    iterations: int = 500,
    seed: int = 0,
) -> SweepRunResult:
    """Batch-engine version of :func:`run_fault_free` (one-trial batch)."""
    honest_costs = [problem.costs[i] for i in problem.honest_ids]
    trial = BatchTrial(
        aggregator=MeanAggregator(), attack=None, seed=seed, label="fault-free"
    )
    stack = stack_costs(honest_costs)
    trace = run_dgd_batch(
        costs=stack,
        trials=[trial],
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
    )
    losses = trace.losses(lambda pts: stack.values(pts).sum(axis=1))
    distances = trace.distances_to(problem.x_h)
    output = trace.final_estimates[0]
    return SweepRunResult(
        label="fault-free",
        aggregator="mean",
        attack=None,
        seed=seed,
        output=output,
        distance=float(distances[0, -1]),
        final_loss=float(losses[0, -1]),
        losses=losses[0],
        distances=distances[0],
        estimates=trace.trial_estimates(0),
    )


def run_fault_free(
    problem: PaperProblem,
    iterations: int = 500,
    seed: int = 0,
) -> RegressionRunResult:
    """The paper's fault-free baseline: faulty agents omitted, plain mean.

    The remaining n − f honest agents run unfiltered DGD ("using averaging
    for aggregation", Figure 2 caption).
    """
    honest_costs = [problem.costs[i] for i in problem.honest_ids]
    trace = run_dgd(
        costs=honest_costs,
        faulty_ids=[],
        aggregator=MeanAggregator(),
        attack=None,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        seed=seed,
    )
    series = _series(problem, trace)
    output = trace.final_estimate
    return RegressionRunResult(
        label="fault-free",
        aggregator="mean",
        attack=None,
        output=output,
        distance=problem.distance_to_honest_minimizer(output),
        final_loss=problem.honest_aggregate_loss(output),
        trace=trace,
        losses=series["losses"],
        distances=series["distances"],
    )
