"""Experiment runner for the regression workloads.

Wraps the distributed simulator with the paper's measurement protocol:
run the DGD loop for a fixed budget, take ``x_out = x_T`` (the paper uses
T = 500), and report ``dist(x_H, x_out)`` together with the full trace for
the figure series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.mean import MeanAggregator
from ..aggregators.registry import make_aggregator
from ..attacks.base import ByzantineAttack
from ..attacks.registry import make_attack
from ..distsys.simulator import run_dgd
from ..distsys.trace import ExecutionTrace
from .paper_regression import PaperProblem

__all__ = ["RegressionRunResult", "run_regression", "run_fault_free"]


@dataclass
class RegressionRunResult:
    """One execution of the Appendix-J experiment."""

    label: str
    aggregator: str
    attack: Optional[str]
    output: np.ndarray
    distance: float           # dist(x_H, x_out)
    final_loss: float         # sum_{i in H} Q_i(x_out)
    trace: ExecutionTrace
    losses: np.ndarray        # per-iteration honest aggregate loss
    distances: np.ndarray     # per-iteration ||x_t - x_H||

    def __repr__(self) -> str:
        return (
            f"RegressionRunResult(label={self.label!r},"
            f" distance={self.distance:.6g})"
        )


def _series(problem: PaperProblem, trace: ExecutionTrace) -> Dict[str, np.ndarray]:
    return {
        "losses": trace.losses(problem.honest_aggregate_loss),
        "distances": trace.distances_to(problem.x_h),
    }


def run_regression(
    problem: PaperProblem,
    aggregator: Union[str, GradientAggregator],
    attack: Union[str, ByzantineAttack, None],
    iterations: int = 500,
    seed: int = 0,
    label: Optional[str] = None,
) -> RegressionRunResult:
    """Run the paper's experiment with the given filter and fault behaviour.

    ``attack=None`` keeps the Byzantine agent honest (it truthfully reports
    its gradient) while the filter still runs — useful for filter-overhead
    ablations; for the paper's *fault-free* baseline (faulty agent removed
    entirely) use :func:`run_fault_free`.
    """
    agg_name = aggregator if isinstance(aggregator, str) else aggregator.name
    if isinstance(aggregator, str):
        aggregator = make_aggregator(aggregator, problem.n, problem.f)
    attack_name: Optional[str] = None
    if isinstance(attack, str):
        attack_name = attack
        attack = make_attack(attack)
    elif attack is not None:
        attack_name = attack.name

    faulty = list(problem.faulty_ids) if attack is not None else []
    trace = run_dgd(
        costs=problem.costs,
        faulty_ids=faulty,
        aggregator=aggregator,
        attack=attack,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        seed=seed,
    )
    series = _series(problem, trace)
    output = trace.final_estimate
    return RegressionRunResult(
        label=label or f"{agg_name}/{attack_name or 'honest'}",
        aggregator=agg_name,
        attack=attack_name,
        output=output,
        distance=problem.distance_to_honest_minimizer(output),
        final_loss=problem.honest_aggregate_loss(output),
        trace=trace,
        losses=series["losses"],
        distances=series["distances"],
    )


def run_fault_free(
    problem: PaperProblem,
    iterations: int = 500,
    seed: int = 0,
) -> RegressionRunResult:
    """The paper's fault-free baseline: faulty agents omitted, plain mean.

    The remaining n − f honest agents run unfiltered DGD ("using averaging
    for aggregation", Figure 2 caption).
    """
    honest_costs = [problem.costs[i] for i in problem.honest_ids]
    trace = run_dgd(
        costs=honest_costs,
        faulty_ids=[],
        aggregator=MeanAggregator(),
        attack=None,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        seed=seed,
    )
    series = _series(problem, trace)
    output = trace.final_estimate
    return RegressionRunResult(
        label="fault-free",
        aggregator="mean",
        attack=None,
        output=output,
        distance=problem.distance_to_honest_minimizer(output),
        final_loss=problem.honest_aggregate_loss(output),
        trace=trace,
        losses=series["losses"],
        distances=series["distances"],
    )
