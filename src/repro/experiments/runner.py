"""Experiment runner for the regression workloads.

Wraps the distributed simulator with the paper's measurement protocol:
run the DGD loop for a fixed budget, take ``x_out = x_T`` (the paper uses
T = 500), and report ``dist(x_H, x_out)`` together with the full trace for
the figure series.

Two execution paths coexist:

* :func:`run_regression` / :func:`run_fault_free` drive the per-trial
  :class:`~repro.distsys.simulator.SynchronousSimulator` — the reference
  oracle, with the full gradient-level :class:`ExecutionTrace`;
* :func:`run_regression_sweep` / :func:`run_fault_free_batch` drive the
  tensorized :class:`~repro.distsys.batch.BatchSimulator`, executing a whole
  (filter, attack, seed) grid in lockstep and recording only the iterate
  trajectory.  Table 1, the figure series and the sweep ablations route
  through this path; ``tests/distsys/test_batch_equivalence`` pins the two
  paths to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.mean import MeanAggregator
from ..aggregators.registry import make_aggregator
from ..attacks.base import ByzantineAttack
from ..attacks.registry import make_attack
from ..distsys.batch import BatchTrial, run_dgd_batch
from ..distsys.simulator import run_dgd
from ..distsys.trace import ExecutionTrace
from ..functions.batched import stack_costs
from ..optim.schedules import StepSchedule
from .paper_regression import PaperProblem

__all__ = [
    "RegressionRunResult",
    "run_regression",
    "run_fault_free",
    "SweepSpec",
    "SweepRunResult",
    "run_regression_sweep",
    "run_fault_free_batch",
]


@dataclass
class RegressionRunResult:
    """One execution of the Appendix-J experiment."""

    label: str
    aggregator: str
    attack: Optional[str]
    output: np.ndarray
    distance: float           # dist(x_H, x_out)
    final_loss: float         # sum_{i in H} Q_i(x_out)
    trace: ExecutionTrace
    losses: np.ndarray        # per-iteration honest aggregate loss
    distances: np.ndarray     # per-iteration ||x_t - x_H||

    def __repr__(self) -> str:
        return (
            f"RegressionRunResult(label={self.label!r},"
            f" distance={self.distance:.6g})"
        )


def _series(problem: PaperProblem, trace: ExecutionTrace) -> Dict[str, np.ndarray]:
    return {
        "losses": trace.losses(problem.honest_aggregate_loss),
        "distances": trace.distances_to(problem.x_h),
    }


def run_regression(
    problem: PaperProblem,
    aggregator: Union[str, GradientAggregator],
    attack: Union[str, ByzantineAttack, None],
    iterations: int = 500,
    seed: int = 0,
    label: Optional[str] = None,
) -> RegressionRunResult:
    """Run the paper's experiment with the given filter and fault behaviour.

    ``attack=None`` keeps the Byzantine agent honest (it truthfully reports
    its gradient) while the filter still runs — useful for filter-overhead
    ablations; for the paper's *fault-free* baseline (faulty agent removed
    entirely) use :func:`run_fault_free`.
    """
    agg_name = aggregator if isinstance(aggregator, str) else aggregator.name
    if isinstance(aggregator, str):
        aggregator = make_aggregator(aggregator, problem.n, problem.f)
    attack_name: Optional[str] = None
    if isinstance(attack, str):
        attack_name = attack
        attack = make_attack(attack)
    elif attack is not None:
        attack_name = attack.name

    faulty = list(problem.faulty_ids) if attack is not None else []
    trace = run_dgd(
        costs=problem.costs,
        faulty_ids=faulty,
        aggregator=aggregator,
        attack=attack,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        seed=seed,
    )
    series = _series(problem, trace)
    output = trace.final_estimate
    return RegressionRunResult(
        label=label or f"{agg_name}/{attack_name or 'honest'}",
        aggregator=agg_name,
        attack=attack_name,
        output=output,
        distance=problem.distance_to_honest_minimizer(output),
        final_loss=problem.honest_aggregate_loss(output),
        trace=trace,
        losses=series["losses"],
        distances=series["distances"],
    )


@dataclass
class SweepSpec:
    """One cell of a batched regression sweep."""

    aggregator: Union[str, GradientAggregator]
    attack: Union[str, ByzantineAttack, None]
    seed: int = 0
    schedule: Optional[StepSchedule] = None
    label: Optional[str] = None


@dataclass
class SweepRunResult:
    """One trial's outcome from the batched sweep engine.

    Mirrors :class:`RegressionRunResult` minus the gradient-level trace —
    the batch path records iterates lazily; rerun the cell through
    :func:`run_regression` when per-iteration gradients are needed.
    """

    label: str
    aggregator: str
    attack: Optional[str]
    seed: int
    output: np.ndarray
    distance: float           # dist(x_H, x_out)
    final_loss: float         # sum_{i in H} Q_i(x_out)
    losses: np.ndarray        # per-iteration honest aggregate loss
    distances: np.ndarray     # per-iteration ||x_t - x_H||
    estimates: np.ndarray     # iterate trajectory x_0 .. x_T, (T + 1, d)

    def __repr__(self) -> str:
        return (
            f"SweepRunResult(label={self.label!r},"
            f" distance={self.distance:.6g})"
        )


def run_regression_sweep(
    problem: PaperProblem,
    specs: Sequence[SweepSpec],
    iterations: int = 500,
    record_gradients: bool = False,
) -> List[SweepRunResult]:
    """Run every sweep cell in lockstep through the batch engine.

    All specs share the problem's costs, constraint and (unless overridden
    per spec) schedule; aggregator/attack registry names are resolved here
    so equal-config cells share vectorized kernels.  Results arrive in spec
    order.
    """
    trials: List[BatchTrial] = []
    names: List[tuple] = []
    for spec in specs:
        if isinstance(spec.aggregator, str):
            agg_name = spec.aggregator
            aggregator = make_aggregator(spec.aggregator, problem.n, problem.f)
        else:
            agg_name = spec.aggregator.name
            aggregator = spec.aggregator
        attack_name: Optional[str] = None
        attack = spec.attack
        if isinstance(attack, str):
            attack_name = attack
            attack = make_attack(attack)
        elif attack is not None:
            attack_name = attack.name
        faulty = tuple(problem.faulty_ids) if attack is not None else ()
        label = spec.label or f"{agg_name}/{attack_name or 'honest'}"
        trials.append(
            BatchTrial(
                aggregator=aggregator,
                attack=attack,
                faulty_ids=faulty,
                seed=spec.seed,
                schedule=spec.schedule,
                label=label,
            )
        )
        names.append((label, agg_name, attack_name))

    stack = stack_costs(problem.costs)
    trace = run_dgd_batch(
        costs=stack,
        trials=trials,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        record_gradients=record_gradients,
    )
    honest = list(problem.honest_ids)
    losses = trace.losses(lambda pts: stack.values(pts)[:, honest].sum(axis=1))
    distances = trace.distances_to(problem.x_h)
    outputs = trace.final_estimates
    results: List[SweepRunResult] = []
    for s, ((label, agg_name, attack_name), spec) in enumerate(zip(names, specs)):
        results.append(
            SweepRunResult(
                label=label,
                aggregator=agg_name,
                attack=attack_name,
                seed=spec.seed,
                output=outputs[s],
                distance=float(distances[s, -1]),
                final_loss=float(losses[s, -1]),
                losses=losses[s],
                distances=distances[s],
                estimates=trace.trial_estimates(s),
            )
        )
    return results


def run_fault_free_batch(
    problem: PaperProblem,
    iterations: int = 500,
    seed: int = 0,
) -> SweepRunResult:
    """Batch-engine version of :func:`run_fault_free` (one-trial batch)."""
    honest_costs = [problem.costs[i] for i in problem.honest_ids]
    trial = BatchTrial(
        aggregator=MeanAggregator(), attack=None, seed=seed, label="fault-free"
    )
    stack = stack_costs(honest_costs)
    trace = run_dgd_batch(
        costs=stack,
        trials=[trial],
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
    )
    losses = trace.losses(lambda pts: stack.values(pts).sum(axis=1))
    distances = trace.distances_to(problem.x_h)
    output = trace.final_estimates[0]
    return SweepRunResult(
        label="fault-free",
        aggregator="mean",
        attack=None,
        seed=seed,
        output=output,
        distance=float(distances[0, -1]),
        final_loss=float(losses[0, -1]),
        losses=losses[0],
        distances=distances[0],
        estimates=trace.trial_estimates(0),
    )


def run_fault_free(
    problem: PaperProblem,
    iterations: int = 500,
    seed: int = 0,
) -> RegressionRunResult:
    """The paper's fault-free baseline: faulty agents omitted, plain mean.

    The remaining n − f honest agents run unfiltered DGD ("using averaging
    for aggregation", Figure 2 caption).
    """
    honest_costs = [problem.costs[i] for i in problem.honest_ids]
    trace = run_dgd(
        costs=honest_costs,
        faulty_ids=[],
        aggregator=MeanAggregator(),
        attack=None,
        constraint=problem.constraint,
        schedule=problem.schedule,
        initial_estimate=problem.initial_estimate,
        iterations=iterations,
        seed=seed,
    )
    series = _series(problem, trace)
    output = trace.final_estimate
    return RegressionRunResult(
        label="fault-free",
        aggregator="mean",
        attack=None,
        output=output,
        distance=problem.distance_to_honest_minimizer(output),
        final_loss=problem.honest_aggregate_loss(output),
        trace=trace,
        losses=series["losses"],
        distances=series["distances"],
    )
