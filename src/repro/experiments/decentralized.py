"""The decentralized experiment family: topology × connectivity × f sweeps.

Runs the Appendix-J regression system through the decentralized graph
engine (:class:`~repro.distsys.decentralized.DecentralizedSimulator`) on a
spectrum of communication topologies and reports, per configuration, the
**convergence radius** ``max_{i honest} ||x_i^T - x_H||`` and the final
**consensus gap** ``max_{i,j honest} ||x_i^T - x_j^T||`` — the two
quantities the decentralized fault-tolerance statements bound.

Every topology's whole (aggregator × attack × seed) grid executes as *one*
batched decentralized simulation: the engine folds agents into the batch
axis of the standard ``aggregate_batch`` kernels (regular graphs) or runs
the masked neighborhood kernels (irregular graphs), so the sweep contains
no per-agent Python inner loop.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aggregators.registry import make_aggregator
from ..attacks.registry import make_attack
from ..distsys.batch import BatchTrial
from ..distsys.decentralized import DecentralizedSimulator
from ..distsys.topology import CommunicationTopology, make_topology
from ..functions.batched import stack_costs
from ..telemetry.recorder import current_recorder
from .orchestrator import (
    OrchestratorConfig,
    SweepCell,
    SweepReport,
    run_sweep_cells,
)
from .paper_regression import PaperProblem, paper_problem
from .reporting import format_table

__all__ = [
    "DecentralizedSweepRow",
    "default_topologies",
    "decentralized_sweep",
    "orchestrated_decentralized_sweep",
    "render_decentralized_report",
]


def serialize_topology(topology: CommunicationTopology) -> Dict[str, object]:
    """A topology as a JSON-able payload (name + adjacency rows)."""
    return {
        "name": topology.name,
        "adjacency": np.asarray(topology.adjacency, dtype=bool).tolist(),
    }


def deserialize_topology(payload: Dict[str, object]) -> CommunicationTopology:
    """Rebuild a :func:`serialize_topology` payload."""
    return CommunicationTopology(
        name=str(payload["name"]),
        adjacency=np.asarray(payload["adjacency"], dtype=bool),
    )


@dataclass
class DecentralizedSweepRow:
    """One (topology, f, filter, attack) cell of the decentralized sweep."""

    topology: str
    algebraic_connectivity: float       # λ2 of the undirected skeleton
    degree_range: str                   # closed in-degree min..max
    f: int
    aggregator: str
    attack: Optional[str]
    seeds: int
    mean_radius: float                  # mean over seeds of the final radius
    worst_radius: float                 # max over seeds
    mean_gap: float                     # mean over seeds of the final gap
    #: Disconnected topologies only (``allow_disconnected=True``): the mean
    #: final consensus gap *per connected component* (smallest-member order)
    #: — the global ``mean_gap`` is ``nan`` there, since agents in different
    #: components can never agree.  ``component_sizes`` aligns with it.
    component_gaps: Optional[Tuple[float, ...]] = None
    component_sizes: Optional[Tuple[int, ...]] = None


def default_topologies(n: int, seed: int = 0) -> List[CommunicationTopology]:
    """The sweep's topology spectrum, densest to sparsest, on ``n`` agents."""
    return [
        make_topology("complete", n),
        make_topology("torus", n),
        make_topology("ring", n, hops=2),
        make_topology("random_regular", n, seed=seed, degree=3),
        make_topology("erdos_renyi", n, seed=seed, p=0.7),
        make_topology("ring", n),
    ]


def decentralized_sweep(
    problem: Optional[PaperProblem] = None,
    topologies: Optional[Sequence[CommunicationTopology]] = None,
    aggregators: Sequence[str] = ("cwtm", "cge_mean", "median"),
    attacks: Sequence[Optional[str]] = (
        None,
        "gradient_reverse",
        "edge_equivocation",
    ),
    iterations: int = 300,
    seeds: Sequence[int] = (0,),
    allow_disconnected: bool = False,
    quarantined_out: Optional[List[Dict[str, object]]] = None,
) -> List[DecentralizedSweepRow]:
    """Run the topology × connectivity × f sweep; returns report rows.

    ``quarantined_out``, when given, receives the engines' per-trial
    quarantine records (enriched with topology and trial label) — the
    rows themselves stay schema-stable, so existing consumers are
    unaffected while the orchestrator can surface containment provenance.

    ``attacks`` containing ``None`` adds the fault-free baseline (``f = 0``,
    no Byzantine agent) for each topology × filter cell; named attacks run
    with the paper's faulty set (``f = len(problem.faulty_ids)``).

    ``allow_disconnected=True`` admits disconnected topologies: the global
    consensus gap is reported as ``nan`` (agents in different components
    can never agree) and each row instead carries the mean final gap *per
    connected component* in ``component_gaps``.

    The default filter set is *normalized* (``cwtm``, ``cge_mean``,
    ``median``): the plain ``cge`` sum is well-defined here too, but its
    magnitude scales with neighborhood size, which makes convergence radii
    incomparable across topologies of different degree.

    ``seeds`` defaults to a single seed because the default attacks are
    deterministic — extra seeds only add information for stochastic attacks
    (e.g. ``"random"``) or per-trial restart overrides.
    """
    problem = problem or paper_problem()
    stack = stack_costs(problem.costs)
    topologies = (
        list(topologies) if topologies is not None else default_topologies(problem.n)
    )
    rows: List[DecentralizedSweepRow] = []
    for topology in topologies:
        trials: List[BatchTrial] = []
        cells: List[Tuple[str, Optional[str]]] = []
        for aggregator in aggregators:
            for attack in attacks:
                cells.append((aggregator, attack))
                for seed in seeds:
                    faulty = () if attack is None else tuple(problem.faulty_ids)
                    trials.append(
                        BatchTrial(
                            aggregator=make_aggregator(
                                aggregator, problem.n, problem.f
                            ),
                            attack=None if attack is None else make_attack(attack),
                            faulty_ids=faulty,
                            seed=seed,
                        )
                    )
        simulator = DecentralizedSimulator(
            costs=stack,
            topology=topology,
            trials=trials,
            constraint=problem.constraint,
            schedule=problem.schedule,
            initial_estimate=problem.initial_estimate,
            allow_disconnected=allow_disconnected,
        )
        simulator.set_recorder(current_recorder())
        trace = simulator.run(iterations)
        if quarantined_out is not None:
            quarantined_out.extend(
                {
                    **dict(record),
                    "topology": topology.name,
                    "label": trace.labels[int(record["trial"])],
                }
                for record in trace.quarantined
            )
        radii = trace.distances_to(problem.x_h)[:, -1]       # (S,)
        components = topology.connected_components()
        disconnected = len(components) > 1
        if disconnected:
            gaps = np.full(len(trials), np.nan)
            component_gaps = [
                series[:, -1]
                for series in trace.component_consensus_gaps(components)
            ]
            component_sizes = tuple(len(c) for c in components)
        else:
            gaps = trace.consensus_gap()[:, -1]              # (S,)
            component_gaps = None
            component_sizes = None
        degrees = topology.closed_in_degrees
        degree_range = (
            f"{int(degrees.min())}"
            if degrees.min() == degrees.max()
            else f"{int(degrees.min())}..{int(degrees.max())}"
        )
        lambda2 = topology.algebraic_connectivity()
        for c, (aggregator, attack) in enumerate(cells):
            span = slice(c * len(seeds), (c + 1) * len(seeds))
            rows.append(
                DecentralizedSweepRow(
                    topology=topology.name,
                    algebraic_connectivity=lambda2,
                    degree_range=degree_range,
                    f=0 if attack is None else problem.f,
                    aggregator=aggregator,
                    attack=attack,
                    seeds=len(seeds),
                    mean_radius=float(radii[span].mean()),
                    worst_radius=float(radii[span].max()),
                    mean_gap=float(gaps[span].mean()),
                    component_gaps=(
                        None
                        if component_gaps is None
                        else tuple(
                            float(np.mean(per_comp[span]))
                            for per_comp in component_gaps
                        )
                    ),
                    component_sizes=component_sizes,
                )
            )
    return rows


def _row_from_payload(row: Dict[str, object]) -> DecentralizedSweepRow:
    """Rebuild a report row from its JSON form (lists back to tuples)."""
    data = dict(row)
    for name in ("component_gaps", "component_sizes"):
        if data.get(name) is not None:
            data[name] = tuple(data[name])
    return DecentralizedSweepRow(**data)


def _run_decentralized_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """Orchestrator worker: one (topology, filter, attack) cell.

    Rebuilds the default paper problem and the cell's topology from the
    JSON payload, so the cell reruns identically anywhere.
    """
    quarantined: List[Dict[str, object]] = []
    rows = decentralized_sweep(
        problem=None,
        topologies=[deserialize_topology(payload["topology"])],
        aggregators=[str(payload["aggregator"])],
        attacks=[payload["attack"]],
        iterations=int(payload["iterations"]),
        seeds=[int(s) for s in payload["seeds"]],
        allow_disconnected=bool(payload["allow_disconnected"]),
        quarantined_out=quarantined,
    )
    result: Dict[str, object] = {"rows": [asdict(row) for row in rows]}
    if quarantined:
        result["quarantined"] = quarantined
    return result


def orchestrated_decentralized_sweep(
    topologies: Optional[Sequence[CommunicationTopology]] = None,
    aggregators: Sequence[str] = ("cwtm", "cge_mean", "median"),
    attacks: Sequence[Optional[str]] = (
        None,
        "gradient_reverse",
        "edge_equivocation",
    ),
    iterations: int = 300,
    seeds: Sequence[int] = (0,),
    allow_disconnected: bool = False,
    config: Optional[OrchestratorConfig] = None,
) -> Tuple[List[DecentralizedSweepRow], SweepReport]:
    """The topology × filter × attack sweep through the orchestrator.

    One crash-safe cell per (topology, filter, attack); rows arrive in
    :func:`decentralized_sweep` order, with failed cells' rows absent and
    listed in ``report.failed_cells``.  Workers rebuild the default paper
    problem, so there is no ``problem`` parameter; topologies travel as
    explicit adjacency payloads.
    """
    config = config or OrchestratorConfig()
    problem_n = paper_problem().n
    topologies = (
        list(topologies)
        if topologies is not None
        else default_topologies(problem_n)
    )
    serialized = [serialize_topology(t) for t in topologies]
    spec_doc = {
        "family": "decentralized",
        "topologies": serialized,
        "aggregators": list(aggregators),
        "attacks": list(attacks),
        "iterations": int(iterations),
        "seeds": [int(s) for s in seeds],
        "allow_disconnected": bool(allow_disconnected),
    }
    cells: List[SweepCell] = []
    for t, (topology, topo_payload) in enumerate(zip(topologies, serialized)):
        for aggregator in aggregators:
            for attack in attacks:
                cells.append(
                    SweepCell(
                        key=(
                            f"t{t}-{topology.name}/{aggregator}/"
                            f"{attack or 'honest'}"
                        ),
                        payload={
                            "topology": topo_payload,
                            "aggregator": str(aggregator),
                            "attack": attack,
                            "iterations": int(iterations),
                            "seeds": [int(s) for s in seeds],
                            "allow_disconnected": bool(allow_disconnected),
                        },
                    )
                )
    report = run_sweep_cells(
        spec_doc, cells, _run_decentralized_cell, config
    )
    usable = report.results()
    rows: List[DecentralizedSweepRow] = []
    for cell in cells:
        payload = usable.get(cell.key)
        if payload is None:
            continue
        rows.extend(_row_from_payload(row) for row in payload["rows"])
    return rows, report


def _gap_cell(row: DecentralizedSweepRow) -> object:
    """The gap column: global gap, or per-component gaps when disconnected."""
    if row.component_gaps is None:
        return row.mean_gap
    return " / ".join(
        f"C{k}(n={size}):{gap:.4g}"
        for k, (gap, size) in enumerate(
            zip(row.component_gaps, row.component_sizes)
        )
    )


def render_decentralized_report(
    rows: Sequence[DecentralizedSweepRow], iterations: int = 300
) -> str:
    """The convergence-radius report as an aligned text table."""
    return format_table(
        headers=[
            "topology",
            "lambda2",
            "closed deg",
            "f",
            "filter",
            "attack",
            "radius (mean)",
            "radius (worst)",
            "gap (mean)",
        ],
        rows=[
            [
                r.topology,
                r.algebraic_connectivity,
                r.degree_range,
                r.f,
                r.aggregator,
                r.attack or "honest",
                r.mean_radius,
                r.worst_radius,
                _gap_cell(r),
            ]
            for r in rows
        ],
        title=(
            "Decentralized robust DGD on the Appendix-J system - "
            f"convergence radius after {iterations} iterations "
            "(radius = max honest distance to x_H)"
        ),
    )
