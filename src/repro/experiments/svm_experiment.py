"""Distributed SVM experiment (the Section-5 / Appendix-K SVM study).

The paper: "We also conducted experiments for distributed learning with
support vector machine ... the DGD method with the said gradient-filters
reaches comparable performance to the fault-free case, and ... DGD cannot
reach convergence if it uses plain averaging to aggregate the gradients."

This module reproduces that claim end to end on synthetic linearly
separable data: agents hold smooth-hinge SVM costs over i.i.d. shards, the
server runs DGD with CGE / CWTM / plain averaging against the paper's fault
behaviours, and test accuracy is the reported metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..aggregators.registry import make_aggregator
from ..attacks.registry import make_attack
from ..distsys.simulator import run_dgd
from ..functions.svm import SmoothHingeCost
from ..optim.projections import BoxSet
from ..optim.schedules import paper_schedule
from .reporting import format_table

__all__ = ["SVMExperimentConfig", "SVMPanel", "run_svm_experiment", "render_svm_panel"]


@dataclass
class SVMExperimentConfig:
    """Knobs of the distributed-SVM study."""

    n_agents: int = 10
    f: int = 2
    dim: int = 4
    n_train: int = 1_500
    n_test: int = 500
    margin: float = 1.0
    regularization: float = 0.01
    smoothing: float = 0.5
    iterations: int = 400
    attacks: Tuple[str, ...] = ("gradient_reverse", "large_norm")
    attack_scale: float = 8.0  # amplification for gradient_reverse
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.f < self.n_agents:
            raise ValueError("need 0 <= f < n_agents")
        if self.dim < 1 or self.n_train < self.n_agents:
            raise ValueError("bad dimensions")


@dataclass
class SVMPanel:
    """Accuracies of every (method, fault) combination."""

    config: SVMExperimentConfig
    separator: np.ndarray                       # ground-truth w
    accuracies: Dict[str, float] = field(default_factory=dict)

    @property
    def fault_free(self) -> float:
        """The fault-free reference accuracy."""
        return self.accuracies["fault-free"]


def _make_data(
    rng: np.random.Generator, n: int, w_true: np.ndarray, margin: float
) -> Tuple[np.ndarray, np.ndarray]:
    z = rng.normal(size=(n, w_true.shape[0]))
    y = np.where(z @ w_true >= 0, 1.0, -1.0)
    z += margin * 0.2 * y[:, None] * w_true
    return z, y


def run_svm_experiment(config: SVMExperimentConfig = None) -> SVMPanel:
    """Run the full SVM lineup; returns test accuracies per method."""
    config = config or SVMExperimentConfig()
    rng = np.random.default_rng(config.seed)
    w_true = rng.normal(size=config.dim)
    w_true /= np.linalg.norm(w_true)
    train_z, train_y = _make_data(rng, config.n_train, w_true, config.margin)
    test_z, test_y = _make_data(rng, config.n_test, w_true, config.margin)

    order = rng.permutation(config.n_train)
    shards = np.array_split(order, config.n_agents)
    costs = [
        SmoothHingeCost(
            train_z[idx],
            train_y[idx],
            regularization=config.regularization,
            smoothing=config.smoothing,
        )
        for idx in shards
    ]
    faulty = list(range(config.n_agents - config.f, config.n_agents))

    def accuracy(w: np.ndarray) -> float:
        return float((np.sign(test_z @ w) == test_y).mean())

    def run(cost_list, faulty_ids, aggregator_name, attack) -> float:
        n = len(cost_list)
        f = len(faulty_ids)
        trace = run_dgd(
            costs=cost_list,
            faulty_ids=faulty_ids,
            aggregator=make_aggregator(aggregator_name, n, f),
            attack=attack,
            constraint=BoxSet.symmetric(50.0, dim=config.dim),
            schedule=paper_schedule(),
            initial_estimate=np.zeros(config.dim),
            iterations=config.iterations,
            seed=config.seed + 1,
        )
        return accuracy(trace.final_estimate)

    panel = SVMPanel(config=config, separator=w_true)
    honest_costs = [costs[i] for i in range(config.n_agents) if i not in faulty]
    panel.accuracies["fault-free"] = run(honest_costs, [], "mean", None)
    for attack_name in config.attacks:
        attack = make_attack(attack_name)
        if attack_name == "gradient_reverse" and config.attack_scale != 1.0:
            from ..attacks.simple import GradientReverseAttack

            attack = GradientReverseAttack(scale=config.attack_scale)
        for aggregator in ("cge", "cwtm", "mean"):
            key = f"{aggregator}-{attack_name}"
            panel.accuracies[key] = run(costs, faulty, aggregator, attack)
    return panel


def render_svm_panel(panel: SVMPanel) -> str:
    """Text table of the SVM accuracies."""
    rows = [[name, acc] for name, acc in panel.accuracies.items()]
    title = (
        f"Distributed SVM — n={panel.config.n_agents}, f={panel.config.f},"
        f" d={panel.config.dim}, smooth hinge"
    )
    return format_table(["method/fault", "test accuracy"], rows, title=title)
