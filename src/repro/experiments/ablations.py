"""Ablation studies beyond the paper's headline experiments.

Each function backs one benchmark module (DESIGN.md, per-experiment index):

* :func:`filter_zoo` — every registered filter against every attack on the
  Appendix-J regression problem (extends Table 1 to the baselines of
  Section 2.2).
* :func:`f_sweep` — CGE's measured error versus the Theorem-4/5 envelopes
  ``D·ε`` as the number of Byzantine agents grows, on a synthetic
  regression family with dialable redundancy.
* :func:`redundancy_sweep` — the Theorem-1/2 correlation: instances with a
  controlled ε, checking the Theorem-2 algorithm's 2ε guarantee and
  DGD+CGE's D·ε guarantee empirically.
* :func:`exact_algorithm_scaling` — output quality and subset counts of the
  Theorem-2 procedure as n grows (its combinatorial cost is the reason the
  paper calls it impractical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aggregators.registry import available_aggregators, make_aggregator
from ..attacks.registry import make_attack
from ..core.bounds import cge_bound, cge_bound_v2
from ..core.exact_algorithm import exact_resilient_argmin
from ..core.redundancy import honest_subset_epsilon, measure_redundancy
from ..core.resilience import evaluate_resilience
from ..functions.least_squares import linear_regression_agents
from ..functions.quadratic import SquaredDistanceCost
from ..optim.projections import BoxSet
from ..optim.schedules import HarmonicSchedule
from .paper_regression import PaperProblem, paper_problem
from .runner import SweepSpec, run_regression_sweep

__all__ = [
    "FilterZooRow",
    "filter_zoo",
    "FSweepRow",
    "f_sweep",
    "RedundancySweepRow",
    "redundancy_sweep",
    "ExactScalingRow",
    "exact_algorithm_scaling",
    "synthetic_regression_costs",
    "DimensionSweepRow",
    "dimension_sweep",
    "ScheduleSweepRow",
    "schedule_sweep",
    "AdaptiveAttackRow",
    "adaptive_attack_sweep",
    "HeterogeneityRow",
    "heterogeneity_sweep",
    "AttackScaleRow",
    "attack_scale_sweep",
]

#: Filters that need n/f shapes unavailable on the 6-agent problem.
_ZOO_EXCLUDED = frozenset({"sum"})  # sum == unscaled mean; excluded as duplicate


@dataclass
class FilterZooRow:
    """One (filter, attack) cell of the filter-zoo ablation."""

    aggregator: str
    attack: str
    distance: float
    within_epsilon: bool
    error: Optional[str] = None


def filter_zoo(
    problem: Optional[PaperProblem] = None,
    attacks: Sequence[str] = ("gradient_reverse", "random", "zero", "large_norm"),
    iterations: int = 500,
    seed: int = 0,
) -> List[FilterZooRow]:
    """Every registered filter under each attack on the paper problem.

    Each filter's attack lineup runs as one lockstep batch; a filter whose
    capacity requirements fail on this system (e.g. Bulyan's n >= 4f + 3)
    yields error rows for its whole lineup, as it would per trial.
    """
    problem = problem or paper_problem()
    rows: List[FilterZooRow] = []
    for name in available_aggregators():
        if name in _ZOO_EXCLUDED:
            continue
        specs = [
            SweepSpec(aggregator=name, attack=attack, seed=seed)
            for attack in attacks
        ]
        try:
            results = run_regression_sweep(
                problem, specs, iterations=iterations
            )
        except ValueError as exc:
            # e.g. Bulyan's n >= 4f + 3 on n=6, f=1 holds; keep guard
            rows.extend(
                FilterZooRow(
                    aggregator=name,
                    attack=attack,
                    distance=float("nan"),
                    within_epsilon=False,
                    error=str(exc),
                )
                for attack in attacks
            )
            continue
        rows.extend(
            FilterZooRow(
                aggregator=name,
                attack=attack,
                distance=result.distance,
                within_epsilon=result.distance < problem.epsilon,
            )
            for attack, result in zip(attacks, results)
        )
    return rows


def synthetic_regression_costs(
    n: int,
    noise_scale: float = 0.05,
    seed: int = 0,
) -> Tuple[list, np.ndarray]:
    """A redundant n-agent regression family with evenly spread unit rows.

    Rows are unit vectors at angles ``i*pi/n`` — every subset of >= 2 rows is
    full rank, so the family satisfies (2f, ε)-redundancy with small ε for a
    wide range of f.  Returns (costs, x_star).
    """
    if n < 3:
        raise ValueError("need at least 3 agents")
    rng = np.random.default_rng(seed)
    angles = np.pi * np.arange(n) / n
    design = np.column_stack([np.cos(angles), np.sin(angles)])
    x_star = np.array([1.0, -0.5])
    noise = rng.normal(scale=noise_scale, size=n)
    response = design @ x_star + noise
    return linear_regression_agents(design, response), x_star


@dataclass
class FSweepRow:
    """CGE error at one fault count versus the theoretical envelopes."""

    n: int
    f: int
    epsilon: float
    measured_distance: float
    bound_thm4: float  # D * eps, inf when Theorem 4 not applicable
    bound_thm5: float  # D * eps, inf when Theorem 5 not applicable
    within_thm4: bool
    within_thm5: bool


def f_sweep(
    n: int = 12,
    max_f: int = 4,
    iterations: int = 600,
    attack: str = "gradient_reverse",
    seed: int = 0,
    convergence_slack: float = 0.05,
) -> List[FSweepRow]:
    """Measured CGE error versus ``D·ε`` for f = 0..max_f.

    The Theorem-4/5 bounds are *asymptotic*; ``convergence_slack`` is the
    additive tolerance granted to the finite-iteration iterate when setting
    the ``within_*`` flags (the f = 0 bound is exactly zero, which no finite
    run attains).
    """
    if max_f >= n / 2:
        raise ValueError("max_f must satisfy max_f < n/2")
    costs, _ = synthetic_regression_costs(n, seed=seed)
    from ..core.theory import smoothness_constant, strong_convexity_constant

    rows: List[FSweepRow] = []
    for f in range(max_f + 1):
        honest = list(range(n - f))
        faulty = list(range(n - f, n))
        report = measure_redundancy(costs, f) if f > 0 else None
        eps = report.epsilon if report else 0.0
        mu = smoothness_constant(costs)
        gamma = strong_convexity_constant(costs, f)
        honest_costs = [costs[i] for i in honest]
        x_h = np.linalg.lstsq(
            np.vstack([c.design for c in honest_costs]),
            np.concatenate([c.response for c in honest_costs]),
            rcond=None,
        )[0]

        trace_attack = make_attack(attack) if f > 0 else None
        from ..distsys.simulator import run_dgd

        trace = run_dgd(
            costs=costs,
            faulty_ids=faulty,
            aggregator=make_aggregator("cge", n, f),
            attack=trace_attack,
            constraint=BoxSet.symmetric(100.0, dim=2),
            schedule=HarmonicSchedule(scale=0.5 / max(1, n - f)),
            initial_estimate=np.zeros(2),
            iterations=iterations,
            seed=seed,
        )
        measured = float(np.linalg.norm(trace.final_estimate - x_h))
        b4 = cge_bound(n, f, mu, gamma)
        b5 = cge_bound_v2(n, f, mu, gamma)
        bound4 = b4.radius(eps) if b4.applicable else float("inf")
        bound5 = b5.radius(eps) if b5.applicable else float("inf")
        rows.append(
            FSweepRow(
                n=n,
                f=f,
                epsilon=eps,
                measured_distance=measured,
                bound_thm4=bound4,
                bound_thm5=bound5,
                within_thm4=measured <= bound4 + convergence_slack,
                within_thm5=measured <= bound5 + convergence_slack,
            )
        )
    return rows


@dataclass
class RedundancySweepRow:
    """Theorem-2 and DGD+CGE errors on an instance with controlled ε."""

    spread: float
    epsilon: float
    exact_error: float          # worst-case Definition-2 distance, Theorem 2
    exact_within_2eps: bool
    cge_error: float
    cge_bound: float


def redundancy_sweep(
    n: int = 7,
    f: int = 2,
    spreads: Sequence[float] = (0.0, 0.1, 0.3, 1.0),
    iterations: int = 800,
    seed: int = 0,
) -> List[RedundancySweepRow]:
    """Robust-mean instances with growing honest disagreement.

    Honest agents hold ``Q_i(x) = ||x − target_i||²`` with targets inside a
    ball of radius ``spread`` — ε grows with the spread.  Byzantine agents
    submit a plausible quadratic centred far away.  The Theorem-2 output must
    stay within 2ε of every honest (n−f)-subset argmin; DGD+CGE must stay
    within D·ε of x_H.
    """
    rng = np.random.default_rng(seed)
    rows: List[RedundancySweepRow] = []
    center = np.array([2.0, -1.0])
    directions = rng.normal(size=(n, 2))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    radii = rng.random(n) ** 0.5
    for spread in spreads:
        targets = center + spread * radii[:, None] * directions
        honest_costs = [SquaredDistanceCost(t) for t in targets[: n - f]]
        # The slack the Theorem-2 proof consumes, over the honest set.
        eps = honest_subset_epsilon(honest_costs, f=f)

        # Byzantine submissions: innocent-looking quadratics far from center.
        adversarial = [
            SquaredDistanceCost(center + np.array([10.0 + k, -10.0 - k]))
            for k in range(f)
        ]
        received = list(honest_costs) + adversarial
        exact = exact_resilient_argmin(received, f=f)
        evaluation = evaluate_resilience(
            exact.output, honest_costs, n=n, f=f
        )

        from ..core.theory import smoothness_constant, strong_convexity_constant
        from ..distsys.simulator import run_dgd

        mu = smoothness_constant(honest_costs)
        gamma = strong_convexity_constant(honest_costs, 0)
        x_h = np.mean(targets[: n - f], axis=0)
        # CGE sums n - f gradients of 2-smooth quadratics: the summed
        # gradient has Lipschitz constant 2(n - f), so eta_0 = 1/(2(n - f))
        # is the largest stable harmonic scale (and converges fastest).
        trace = run_dgd(
            costs=list(honest_costs) + adversarial,
            faulty_ids=list(range(n - f, n)),
            aggregator=make_aggregator("cge", n, f),
            attack=make_attack("gradient_reverse"),
            constraint=BoxSet.symmetric(100.0, dim=2),
            schedule=HarmonicSchedule(scale=1.0 / (2.0 * (n - f))),
            initial_estimate=np.zeros(2),
            iterations=iterations,
            seed=seed,
        )
        cge_error = float(np.linalg.norm(trace.final_estimate - x_h))
        bound = cge_bound(n, f, mu, gamma)
        rows.append(
            RedundancySweepRow(
                spread=float(spread),
                epsilon=eps,
                exact_error=evaluation.worst_distance,
                exact_within_2eps=evaluation.worst_distance <= 2 * eps + 1e-9,
                cge_error=cge_error,
                cge_bound=bound.radius(eps) if bound.applicable else float("inf"),
            )
        )
    return rows


@dataclass
class ExactScalingRow:
    """Cost and quality of the Theorem-2 procedure at one system size."""

    n: int
    f: int
    outer_subsets: int
    worst_distance: float
    epsilon: float


def exact_algorithm_scaling(
    sizes: Sequence[int] = (5, 6, 7, 8, 9),
    f: int = 2,
    seed: int = 0,
) -> List[ExactScalingRow]:
    """Theorem-2 run per system size (benchmarked for wall time)."""
    rng = np.random.default_rng(seed)
    rows: List[ExactScalingRow] = []
    for n in sizes:
        if n <= 2 * f:
            continue
        targets = np.array([1.0, 1.0]) + 0.1 * rng.normal(size=(n - f, 2))
        honest = [SquaredDistanceCost(t) for t in targets]
        adversarial = [
            SquaredDistanceCost(np.array([50.0, 50.0 + k])) for k in range(f)
        ]
        received = honest + adversarial
        result = exact_resilient_argmin(received, f=f)
        evaluation = evaluate_resilience(result.output, honest, n=n, f=f)
        rows.append(
            ExactScalingRow(
                n=n,
                f=f,
                outer_subsets=len(result.radii),
                worst_distance=evaluation.worst_distance,
                epsilon=honest_subset_epsilon(honest, f=f),
            )
        )
    return rows


@dataclass
class DimensionSweepRow:
    """CWTM behaviour at one problem dimension (Theorem 6's d-dependence)."""

    d: int
    lam: float
    lambda_threshold: float       # gamma / (mu sqrt(d))
    applicable: bool
    bound: float                  # D' * eps, inf when not applicable
    epsilon: float
    measured_distance: float


def dimension_sweep(
    dims: Sequence[int] = (1, 2, 4, 8, 16),
    n: int = 6,
    f: int = 1,
    spread: float = 0.05,
    iterations: int = 800,
    seed: int = 0,
) -> List[DimensionSweepRow]:
    """Theorem 6's dimension dependence, measured.

    The CWTM guarantee needs ``lambda < gamma / (mu sqrt(d))`` — the same
    gradient dissimilarity that is harmless in low dimension voids the
    guarantee as d grows.  Robust-mean instances keep (mu, gamma, lambda)
    essentially constant across d, so the sweep isolates the sqrt(d) term.
    """
    from ..core.bounds import cwtm_bound
    from ..core.theory import (
        gradient_dissimilarity,
        smoothness_constant,
        strong_convexity_constant,
    )
    from ..distsys.simulator import run_dgd

    rows: List[DimensionSweepRow] = []
    for d in dims:
        rng = np.random.default_rng((seed, d))
        base = np.ones(d)
        targets = base + spread * rng.normal(size=(n, d))
        costs = [SquaredDistanceCost(t) for t in targets]
        mu = smoothness_constant(costs)
        gamma = strong_convexity_constant(costs, f)
        lam = gradient_dissimilarity(
            costs, rng=np.random.default_rng((seed, d, 1)), samples=200,
            radius=5.0, center=base,
        )
        bound = cwtm_bound(n, d, mu, gamma, lam)
        eps = measure_redundancy(costs, f).epsilon
        trace = run_dgd(
            costs=costs,
            faulty_ids=[n - 1],
            aggregator=make_aggregator("cwtm", n, f),
            attack=make_attack("gradient_reverse"),
            constraint=BoxSet.symmetric(100.0, dim=d),
            schedule=HarmonicSchedule(scale=0.45),
            initial_estimate=np.zeros(d),
            iterations=iterations,
            seed=seed,
        )
        x_h = targets[: n - f].mean(axis=0)
        measured = float(np.linalg.norm(trace.final_estimate - x_h))
        rows.append(
            DimensionSweepRow(
                d=d,
                lam=lam,
                lambda_threshold=gamma / (mu * float(np.sqrt(d))),
                applicable=bound.applicable,
                bound=bound.radius(eps) if bound.applicable else float("inf"),
                epsilon=eps,
                measured_distance=measured,
            )
        )
    return rows


@dataclass
class ScheduleSweepRow:
    """Convergence of one step-size schedule on the paper problem."""

    label: str
    robbins_monro: bool
    distance_at_100: float
    final_distance: float
    within_epsilon: bool


def schedule_sweep(
    iterations: int = 500,
    seed: int = 0,
) -> List[ScheduleSweepRow]:
    """Theorem 3's step-size hypothesis, probed on the Appendix-J problem.

    Diminishing Robbins–Monro schedules (the paper's 1.5/(t+1), slower
    harmonics, t^{-0.75}) converge inside epsilon.  Constant steps sit
    outside Theorem 3's hypothesis: a stable one (eta*L < 2 for the summed
    CGE gradient) still converges on this quadratic instance, while an
    unstable one (here 0.5, eta*L ~ 2.6) oscillates outside epsilon.
    """
    from ..optim.schedules import (
        ConstantSchedule,
        HarmonicSchedule,
        PolynomialSchedule,
    )

    problem = paper_problem()
    schedules = [
        ("paper 1.5/(t+1)", HarmonicSchedule(scale=1.5)),
        ("harmonic 0.5/(t+1)", HarmonicSchedule(scale=0.5)),
        ("polynomial t^-0.75", PolynomialSchedule(scale=0.5, power=0.75)),
        ("constant 0.02 (stable)", ConstantSchedule(0.02)),
        ("constant 0.5 (unstable)", ConstantSchedule(0.5)),
    ]
    specs = [
        SweepSpec(
            aggregator="cge",
            attack="gradient_reverse",
            seed=seed,
            schedule=schedule,
            label=label,
        )
        for label, schedule in schedules
    ]
    results = run_regression_sweep(problem, specs, iterations=iterations)
    rows: List[ScheduleSweepRow] = []
    for (label, schedule), result in zip(schedules, results):
        distances = result.distances
        rows.append(
            ScheduleSweepRow(
                label=label,
                robbins_monro=schedule.satisfies_robbins_monro,
                distance_at_100=float(distances[min(100, len(distances) - 1)]),
                final_distance=float(distances[-1]),
                within_epsilon=float(distances[-1]) < problem.epsilon,
            )
        )
    return rows


@dataclass
class AdaptiveAttackRow:
    """One (filter, attack) cell of the adaptive-attack sweep."""

    aggregator: str
    attack: str
    distance: float
    within_epsilon: bool
    within_theorem5: bool


def adaptive_attack_sweep(
    iterations: int = 500,
    seed: int = 0,
) -> List[AdaptiveAttackRow]:
    """Filter-aware attacks versus CGE/CWTM on the paper problem.

    The Theorem-5 envelope D*eps must hold for CGE against *any* Byzantine
    behaviour — including the CGE-evasion attack crafted to never be
    eliminated — while the plain epsilon level may be exceeded (the
    theorems only promise D*eps, not eps).
    """
    from ..core.bounds import cge_bound_v2

    problem = paper_problem()
    bound = cge_bound_v2(problem.n, problem.f, problem.mu, problem.gamma)
    envelope = bound.radius(problem.epsilon) if bound.applicable else float("inf")
    attacks = (
        "gradient_reverse",
        "random",
        "zero",
        "cge_evasion",
        "coordinate_shift",
    )
    combos = [
        (aggregator, attack)
        for aggregator in ("cge", "cwtm")
        for attack in attacks
    ]
    results = run_regression_sweep(
        problem,
        [SweepSpec(aggregator=a, attack=b, seed=seed) for a, b in combos],
        iterations=iterations,
    )
    return [
        AdaptiveAttackRow(
            aggregator=aggregator,
            attack=attack,
            distance=result.distance,
            within_epsilon=result.distance < problem.epsilon,
            within_theorem5=result.distance <= envelope + 1e-9,
        )
        for (aggregator, attack), result in zip(combos, results)
    ]


@dataclass
class HeterogeneityRow:
    """Filtered-learning accuracy at one data-heterogeneity level."""

    alpha: float          # Dirichlet concentration (inf encodes i.i.d.)
    label: str
    fault_free_accuracy: float
    filtered_accuracy: float       # CGE under gradient-reverse
    unfiltered_accuracy: float     # plain mean under gradient-reverse
    accuracy_gap: float            # fault-free minus filtered


def heterogeneity_sweep(
    alphas: Sequence[float] = (100.0, 1.0, 0.1),
    include_iid: bool = True,
    n_agents: int = 10,
    f: int = 3,
    n_train: int = 1_200,
    n_test: int = 300,
    iterations: int = 200,
    seed: int = 0,
) -> List[HeterogeneityRow]:
    """Appendix K's correlation observation, quantified.

    Shards the same synthetic dataset with decreasing Dirichlet
    concentration (i.i.d. → strong label skew) and measures fault-free,
    CGE-filtered and unfiltered accuracy under gradient-reverse faults.
    With skewed shards the honest costs lose redundancy, so the filtered-
    vs-fault-free gap widens — the learning-side analogue of growing ε.
    """
    from ..learning.datasets import (
        make_synthetic_classification,
        shard_dataset,
        shard_dataset_dirichlet,
    )
    from ..learning.dsgd import DistributedSGD
    from ..learning.models import MLPClassifier

    train, test = make_synthetic_classification(
        variant="mnist_like",
        n_train=n_train,
        n_test=n_test,
        image_side=14,
        seed=seed,
    )
    chooser = np.random.default_rng(seed + 2)
    faulty = sorted(
        chooser.choice(n_agents, size=f, replace=False).tolist()
    )

    def run(shards, faulty_ids, fault, aggregator) -> float:
        model = MLPClassifier(train.n_features, (64, 32), 10, seed=seed + 11)
        driver = DistributedSGD(
            model=model,
            shards=shards,
            faulty_ids=faulty_ids,
            fault=fault,
            aggregator=aggregator,
            test_set=test,
            batch_size=64,
            step_size=0.05,
            seed=seed + 3,
        )
        return driver.run(iterations, eval_every=iterations).final_accuracy

    settings: List[Tuple[float, str, list]] = []
    if include_iid:
        settings.append(
            (float("inf"), "iid", shard_dataset(train, n_agents, seed=seed + 1))
        )
    for alpha in alphas:
        settings.append(
            (
                float(alpha),
                f"dirichlet({alpha:g})",
                shard_dataset_dirichlet(
                    train, n_agents, alpha=alpha, seed=seed + 1
                ),
            )
        )

    rows: List[HeterogeneityRow] = []
    honest_only = [i for i in range(n_agents) if i not in faulty]
    for alpha, label, shards in settings:
        fault_free = run(
            [shards[i] for i in honest_only], [], None, "mean"
        )
        filtered = run(shards, faulty, "gradient_reverse", "cge_mean")
        unfiltered = run(shards, faulty, "gradient_reverse", "mean")
        rows.append(
            HeterogeneityRow(
                alpha=alpha,
                label=label,
                fault_free_accuracy=fault_free,
                filtered_accuracy=filtered,
                unfiltered_accuracy=unfiltered,
                accuracy_gap=fault_free - filtered,
            )
        )
    return rows


@dataclass
class AttackScaleRow:
    """Errors of CGE and plain mean at one gradient-reverse amplification."""

    scale: float
    cge_distance: float
    mean_distance: float
    cge_within_epsilon: bool
    mean_within_epsilon: bool


def attack_scale_sweep(
    scales: Sequence[float] = (0.5, 1.0, 2.0, 5.0, 20.0, 100.0),
    iterations: int = 500,
    seed: int = 0,
) -> List[AttackScaleRow]:
    """Gradient-reverse amplification sweep on the Appendix-J problem.

    Plain averaging degrades with the attack amplitude (the Byzantine term
    enters the average linearly) while CGE becomes *easier* to defend as
    the amplitude grows (large norms are eliminated); at amplitude ~1 the
    reversed gradient blends in — the regime the redundancy theory handles.
    """
    from ..attacks.simple import GradientReverseAttack

    problem = paper_problem()
    combos = [
        (float(scale), aggregator)
        for scale in scales
        for aggregator in ("cge", "mean")
    ]
    results = run_regression_sweep(
        problem,
        [
            SweepSpec(
                aggregator=aggregator,
                attack=GradientReverseAttack(scale=scale),
                seed=seed,
            )
            for scale, aggregator in combos
        ],
        iterations=iterations,
    )
    distances = {
        (scale, aggregator): result.distance
        for (scale, aggregator), result in zip(combos, results)
    }
    return [
        AttackScaleRow(
            scale=float(scale),
            cge_distance=distances[(float(scale), "cge")],
            mean_distance=distances[(float(scale), "mean")],
            cge_within_epsilon=distances[(float(scale), "cge")] < problem.epsilon,
            mean_within_epsilon=distances[(float(scale), "mean")] < problem.epsilon,
        )
        for scale in scales
    ]
