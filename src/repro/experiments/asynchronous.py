"""The asynchronous experiment family: staleness × drop-rate × filter sweeps.

Runs the Appendix-J regression system through the event-driven engine
(:class:`~repro.distsys.asynchronous.AsynchronousSimulator`) on a grid of
staleness bounds and loss rates — under a fixed delay spectrum (uniform
0–2 round delivery lag) with the paper's gradient-reverse adversary — and
reports, per configuration, the final **convergence radius**
``||x_T - x_H||`` together with the asynchrony diagnostics the synchronous
sweeps cannot produce: the per-round fraction of agents whose message
missed the staleness bound, the mean staleness of the messages actually
aggregated, and the number of stalled rounds.

Each (filter) column runs under its *declared* missing-value policy — the
contract introduced by the asynchronous engine: ``"shrink"`` re-aggregates
at the round's attendance with step-S1 ``n``/``f`` bookkeeping, ``"masked"``
keeps the declared tolerance through the masked kernels of
:mod:`repro.aggregators.masked`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.registry import make_attack
from ..distsys.asynchronous import run_asynchronous
from ..distsys.batch_async import (
    AsyncBatchTrial,
    BatchAsynchronousSimulator,
    run_asynchronous_batch,
)
from ..distsys.faults import IIDDrop, LinkDelay, uniform_delay
from ..functions.batched import stack_costs
from ..telemetry.recorder import current_recorder
from .checkpoint import CheckpointStore, spec_hash
from .orchestrator import (
    EngineCheckpointer,
    OrchestratorConfig,
    SweepCell,
    SweepReport,
    run_engine_checkpointed,
    run_sweep_cells,
)
from .paper_regression import PaperProblem, paper_problem
from .reporting import format_table

__all__ = [
    "AsynchronousSweepRow",
    "DEFAULT_POLICIES",
    "SWEEP_ENGINES",
    "asynchronous_sweep",
    "orchestrated_asynchronous_sweep",
    "render_asynchronous_report",
]

#: The two sweep execution engines: ``"batched"`` runs every
#: (τ, drop, filter, seed) cell in lockstep through
#: :class:`~repro.distsys.batch_async.BatchAsynchronousSimulator`;
#: ``"reference"`` replays the per-trial event-driven engine cell by cell
#: (the oracle the batched engine is pinned against — and the fallback for
#: configurations the tensor program cannot express).
SWEEP_ENGINES = ("batched", "reference")

#: Declared missing-value policy per default filter: CGE shrinks (its sum
#: scales with attendance anyway), the trim-style filters keep their
#: declared tolerance through the masked kernels.
DEFAULT_POLICIES: Dict[str, str] = {
    "cge": "shrink",
    "cge_mean": "shrink",
    "cwtm": "masked",
    "median": "masked",
    "mean": "masked",
}


@dataclass
class AsynchronousSweepRow:
    """One (staleness bound, drop rate, filter) cell of the async sweep."""

    staleness_bound: int
    drop_rate: float
    aggregator: str
    policy: str
    attack: Optional[str]
    seeds: int
    mean_radius: float          # mean over seeds of the final radius
    worst_radius: float         # max over seeds
    missing_rate: float         # mean per-round fraction of missing agents
    mean_staleness: float       # mean staleness of aggregated messages
    stalled: int                # total stalled rounds across seeds


def _assemble_row(
    tau, drop_rate, aggregator, policy, attack, seeds,
    radii, missing, staleness, stalled,
) -> AsynchronousSweepRow:
    """Fold one cell's per-seed statistics into a report row."""
    finite_staleness = [s for s in staleness if not np.isnan(s)]
    return AsynchronousSweepRow(
        staleness_bound=int(tau),
        drop_rate=float(drop_rate),
        aggregator=aggregator,
        policy=policy,
        attack=attack,
        seeds=len(seeds),
        mean_radius=float(np.mean(radii)),
        worst_radius=float(np.max(radii)),
        missing_rate=float(np.mean(missing)),
        mean_staleness=(
            float(np.mean(finite_staleness))
            if finite_staleness
            else float("nan")
        ),
        stalled=int(stalled),
    )


def _cell_conditions(drop_rate: float, delay_high: int):
    """The sweep's shared per-cell condition pipeline."""
    conditions = [LinkDelay(uniform_delay(0, delay_high))]
    if drop_rate > 0:
        conditions.append(IIDDrop(drop_rate))
    return conditions


def _batched_trials(
    problem, cells, seeds, policies, attack, delay_high
) -> List[AsyncBatchTrial]:
    """The (cell × seed) trial grid for the batched engine, in cell order."""
    return [
        AsyncBatchTrial(
            aggregator=aggregator,
            attack=None if attack is None else make_attack(attack),
            faulty_ids=tuple(problem.faulty_ids),
            conditions=tuple(_cell_conditions(drop_rate, delay_high)),
            staleness_bound=int(tau),
            missing_policy=policies.get(aggregator, "shrink"),
            seed=int(seed),
            label=f"tau{tau}/drop{drop_rate}/{aggregator}/s{seed}",
        )
        for (tau, drop_rate, aggregator) in cells
        for seed in seeds
    ]


def _rows_from_batch_trace(
    problem, trace, cells, seeds, policies, attack
) -> List[AsynchronousSweepRow]:
    """Fold a batched trace into one report row per (τ, drop, filter) cell."""
    radii_all = np.linalg.norm(
        trace.final_estimates - np.asarray(problem.x_h), axis=1
    )
    missing_all = trace.missing_fraction().mean(axis=1)
    profile_all = trace.staleness_profile()
    stalled_all = trace.stalled_rounds()
    rows: List[AsynchronousSweepRow] = []
    for c, (tau, drop_rate, aggregator) in enumerate(cells):
        sl = slice(c * len(seeds), (c + 1) * len(seeds))
        staleness = [
            float(np.nanmean(profile))
            if np.isfinite(profile).any()
            else float("nan")
            for profile in profile_all[sl]
        ]
        rows.append(
            _assemble_row(
                tau, drop_rate, aggregator,
                policies.get(aggregator, "shrink"), attack, seeds,
                radii_all[sl], missing_all[sl], staleness,
                int(stalled_all[sl].sum()),
            )
        )
    return rows


def asynchronous_sweep(
    problem: Optional[PaperProblem] = None,
    staleness_bounds: Sequence[int] = (0, 1, 2, 4),
    drop_rates: Sequence[float] = (0.0, 0.15, 0.35),
    aggregators: Sequence[str] = ("cge", "cwtm", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 200,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
    engine: str = "batched",
) -> List[AsynchronousSweepRow]:
    """Run the staleness × drop-rate × filter sweep; returns report rows.

    Every cell shares the same delay spectrum (uniform integer delays in
    ``0..delay_high`` on every link) so the staleness bound is the axis
    that decides how much of the in-flight traffic is usable; the drop
    rate adds i.i.d. loss on top.

    With ``engine="batched"`` (the default) every (τ, drop, filter, seed)
    cell becomes one :class:`~repro.distsys.batch_async.AsyncBatchTrial`
    and the whole sweep runs in lockstep as a single ``(S, n, d)`` tensor
    program — pre-sampled network realizations, one stale-gradient einsum
    per round, batched filter kernels.  ``engine="reference"`` replays the
    per-trial event-driven engine cell by cell; the two produce the same
    rows to 1e-9 (per-trial network streams are identical), so the flag
    is a verification fallback, not a semantic switch.
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"unknown sweep engine {engine!r}; known: {', '.join(SWEEP_ENGINES)}"
        )
    problem = problem or paper_problem()
    stack = stack_costs(problem.costs)
    policies = dict(DEFAULT_POLICIES, **(policies or {}))
    cells = [
        (tau, drop_rate, aggregator)
        for tau in staleness_bounds
        for drop_rate in drop_rates
        for aggregator in aggregators
    ]

    rows: List[AsynchronousSweepRow] = []
    if engine == "batched":
        trials = _batched_trials(
            problem, cells, seeds, policies, attack, delay_high
        )
        trace = run_asynchronous_batch(
            stack,
            trials,
            constraint=problem.constraint,
            schedule=problem.schedule,
            initial_estimate=problem.initial_estimate,
            iterations=iterations,
        )
        return _rows_from_batch_trace(
            problem, trace, cells, seeds, policies, attack
        )

    for tau, drop_rate, aggregator in cells:
        policy = policies.get(aggregator, "shrink")
        radii, missing, staleness = [], [], []
        stalled = 0
        for seed in seeds:
            trace = run_asynchronous(
                stack,
                faulty_ids=list(problem.faulty_ids),
                aggregator=aggregator,
                attack=None if attack is None else make_attack(attack),
                constraint=problem.constraint,
                schedule=problem.schedule,
                initial_estimate=problem.initial_estimate,
                iterations=iterations,
                conditions=_cell_conditions(drop_rate, delay_high),
                staleness_bound=tau,
                missing_policy=policy,
                seed=seed,
            )
            radii.append(
                float(np.linalg.norm(trace.final_estimate - problem.x_h))
            )
            missing.append(float(trace.missing_fraction().mean()))
            profile = trace.staleness_profile()
            staleness.append(
                float(np.nanmean(profile))
                if np.isfinite(profile).any()
                else float("nan")
            )
            stalled += trace.stalled_rounds()
        rows.append(
            _assemble_row(
                tau, drop_rate, aggregator, policy, attack, seeds,
                radii, missing, staleness, stalled,
            )
        )
    return rows


def _run_asynchronous_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """Orchestrator worker: one (τ, drop, filter) cell over a seed chunk.

    Rebuilds the default paper problem in-process; the batched engine
    runs through
    :func:`~repro.experiments.orchestrator.run_engine_checkpointed` when
    the payload carries a mid-trajectory checkpoint contract (the
    chunk-boundary ``state_dict`` of
    :class:`~repro.distsys.batch_async.BatchAsynchronousSimulator` makes
    the resumed trajectory bit-identical to an uninterrupted run).
    """
    problem = paper_problem()
    tau = int(payload["tau"])
    drop_rate = float(payload["drop_rate"])
    aggregator = str(payload["aggregator"])
    seeds = [int(s) for s in payload["seeds"]]
    policies = dict(payload["policies"])
    attack = payload["attack"]
    iterations = int(payload["iterations"])
    delay_high = int(payload["delay_high"])
    engine = str(payload["engine"])
    cells = [(tau, drop_rate, aggregator)]
    if engine == "batched":
        stack = stack_costs(problem.costs)
        trials = _batched_trials(
            problem, cells, seeds, policies, attack, delay_high
        )

        def make_engine() -> BatchAsynchronousSimulator:
            return BatchAsynchronousSimulator(
                costs=stack,
                trials=trials,
                constraint=problem.constraint,
                schedule=problem.schedule,
                initial_estimate=problem.initial_estimate,
            )

        checkpoint = payload.get("checkpoint")
        if checkpoint:
            trace = run_engine_checkpointed(
                make_engine,
                iterations,
                checkpoint_every=int(checkpoint["every"]),
                checkpointer=EngineCheckpointer(
                    store=CheckpointStore(checkpoint["dir"]),
                    sweep_hash=str(checkpoint["spec_hash"]),
                    key=str(checkpoint["key"]),
                ),
            )
        else:
            trace = make_engine().set_recorder(
                current_recorder()
            ).run(iterations)
        rows = _rows_from_batch_trace(
            problem, trace, cells, seeds, policies, attack
        )
        result: Dict[str, object] = {
            "rows": [asdict(row) for row in rows]
        }
        quarantined = [
            {**dict(record), "label": trace.labels[int(record["trial"])]}
            for record in trace.quarantined
        ]
        if quarantined:
            result["quarantined"] = quarantined
        return result
    rows = asynchronous_sweep(
        problem=problem,
        staleness_bounds=[tau],
        drop_rates=[drop_rate],
        aggregators=[aggregator],
        attack=attack,
        policies=policies,
        iterations=iterations,
        seeds=seeds,
        delay_high=delay_high,
        engine="reference",
    )
    return {"rows": [asdict(row) for row in rows]}


def _merge_chunk_rows(
    chunks: Sequence[AsynchronousSweepRow],
) -> AsynchronousSweepRow:
    """Fold one configuration's seed-chunk rows into its report row.

    Means are seed-weighted, worst is the max, stalled counts sum;
    ``mean_staleness`` weights the finite chunks by their seed counts (a
    chunk is ``nan`` only when *no* seed in it ever aggregated a
    message, so the weighting is exact unless a chunk mixes all-``nan``
    and finite seeds — in which case resumed and uninterrupted
    *orchestrated* runs still agree bit for bit, since they chunk
    identically).
    """
    first = chunks[0]
    total = sum(r.seeds for r in chunks)
    finite = [
        (r.mean_staleness, r.seeds)
        for r in chunks
        if not np.isnan(r.mean_staleness)
    ]
    return AsynchronousSweepRow(
        staleness_bound=first.staleness_bound,
        drop_rate=first.drop_rate,
        aggregator=first.aggregator,
        policy=first.policy,
        attack=first.attack,
        seeds=total,
        mean_radius=float(
            sum(r.mean_radius * r.seeds for r in chunks) / total
        ),
        worst_radius=float(max(r.worst_radius for r in chunks)),
        missing_rate=float(
            sum(r.missing_rate * r.seeds for r in chunks) / total
        ),
        mean_staleness=(
            float(
                sum(v * w for v, w in finite) / sum(w for _, w in finite)
            )
            if finite
            else float("nan")
        ),
        stalled=int(sum(r.stalled for r in chunks)),
    )


def orchestrated_asynchronous_sweep(
    staleness_bounds: Sequence[int] = (0, 1, 2, 4),
    drop_rates: Sequence[float] = (0.0, 0.15, 0.35),
    aggregators: Sequence[str] = ("cge", "cwtm", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 200,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
    engine: str = "batched",
    seed_chunk: Optional[int] = None,
    config: Optional[OrchestratorConfig] = None,
) -> Tuple[List[AsynchronousSweepRow], SweepReport]:
    """The staleness × drop × filter sweep through the orchestrator.

    Decomposes the sweep into one cell per (τ, drop rate, filter)
    configuration — times a seed chunk of at most ``seed_chunk`` seeds
    when given — and runs the cells crash-safely (checkpointed, retried,
    sharded across ``config.jobs`` processes).  Rows arrive in the same
    order as :func:`asynchronous_sweep`; a configuration whose cells all
    failed is absent from the rows and present in
    ``report.failed_cells``.  Workers rebuild the default paper problem,
    so there is no ``problem`` parameter.
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"unknown sweep engine {engine!r}; "
            f"known: {', '.join(SWEEP_ENGINES)}"
        )
    if seed_chunk is not None and seed_chunk < 1:
        raise ValueError(f"seed_chunk must be >= 1, got {seed_chunk!r}")
    config = config or OrchestratorConfig()
    policies = dict(DEFAULT_POLICIES, **(policies or {}))
    seeds = [int(s) for s in seeds]
    chunk = seed_chunk or len(seeds) or 1
    seed_chunks = [
        seeds[i : i + chunk] for i in range(0, len(seeds), chunk)
    ] or [[]]
    configurations = [
        (int(tau), float(drop_rate), str(aggregator))
        for tau in staleness_bounds
        for drop_rate in drop_rates
        for aggregator in aggregators
    ]
    spec_doc = {
        "family": "asynchronous",
        "staleness_bounds": [int(t) for t in staleness_bounds],
        "drop_rates": [float(d) for d in drop_rates],
        "aggregators": list(aggregators),
        "attack": attack,
        "policies": policies,
        "iterations": int(iterations),
        "seeds": seeds,
        "delay_high": int(delay_high),
        "engine": engine,
        "seed_chunk": seed_chunk,
    }
    sweep_hash = spec_hash(spec_doc)
    cells: List[SweepCell] = []
    cell_keys: Dict[Tuple[int, float, str], List[str]] = {}
    for tau, drop_rate, aggregator in configurations:
        for chunk_seeds in seed_chunks:
            key = f"tau{tau}/drop{drop_rate}/{aggregator}"
            if len(seed_chunks) > 1:
                key = f"{key}/seeds{chunk_seeds[0]}-{chunk_seeds[-1]}"
            payload: Dict[str, object] = {
                "tau": tau,
                "drop_rate": drop_rate,
                "aggregator": aggregator,
                "seeds": chunk_seeds,
                "policies": policies,
                "attack": attack,
                "iterations": int(iterations),
                "delay_high": int(delay_high),
                "engine": engine,
            }
            if (
                engine == "batched"
                and config.checkpoint_dir is not None
                and config.checkpoint_every is not None
            ):
                payload["checkpoint"] = {
                    "dir": str(config.checkpoint_dir),
                    "spec_hash": sweep_hash,
                    "key": key,
                    "every": int(config.checkpoint_every),
                }
            cells.append(SweepCell(key=key, payload=payload))
            cell_keys.setdefault((tau, drop_rate, aggregator), []).append(key)
    report = run_sweep_cells(spec_doc, cells, _run_asynchronous_cell, config)
    usable = report.results()
    rows: List[AsynchronousSweepRow] = []
    for configuration in configurations:
        chunks: List[AsynchronousSweepRow] = []
        for key in cell_keys[configuration]:
            payload = usable.get(key)
            if payload is None:
                continue
            chunks.extend(
                AsynchronousSweepRow(**row) for row in payload["rows"]
            )
        if chunks:
            rows.append(_merge_chunk_rows(chunks))
    return rows, report


def render_asynchronous_report(
    rows: Sequence[AsynchronousSweepRow], iterations: int = 200
) -> str:
    """The convergence-radius report as an aligned text table."""
    return format_table(
        headers=[
            "tau",
            "drop",
            "filter",
            "policy",
            "attack",
            "radius (mean)",
            "radius (worst)",
            "missing",
            "staleness",
            "stalled",
        ],
        rows=[
            [
                r.staleness_bound,
                r.drop_rate,
                r.aggregator,
                r.policy,
                r.attack or "honest",
                r.mean_radius,
                r.worst_radius,
                r.missing_rate,
                r.mean_staleness,
                r.stalled,
            ]
            for r in rows
        ],
        title=(
            "Asynchronous robust DGD on the Appendix-J system - "
            f"convergence radius after {iterations} rounds under uniform "
            "0..2 delivery delays (radius = ||x_T - x_H||)"
        ),
    )
