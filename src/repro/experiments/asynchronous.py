"""The asynchronous experiment family: staleness × drop-rate × filter sweeps.

Runs the Appendix-J regression system through the event-driven engine
(:class:`~repro.distsys.asynchronous.AsynchronousSimulator`) on a grid of
staleness bounds and loss rates — under a fixed delay spectrum (uniform
0–2 round delivery lag) with the paper's gradient-reverse adversary — and
reports, per configuration, the final **convergence radius**
``||x_T - x_H||`` together with the asynchrony diagnostics the synchronous
sweeps cannot produce: the per-round fraction of agents whose message
missed the staleness bound, the mean staleness of the messages actually
aggregated, and the number of stalled rounds.

Each (filter) column runs under its *declared* missing-value policy — the
contract introduced by the asynchronous engine: ``"shrink"`` re-aggregates
at the round's attendance with step-S1 ``n``/``f`` bookkeeping, ``"masked"``
keeps the declared tolerance through the masked kernels of
:mod:`repro.aggregators.masked`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..attacks.registry import make_attack
from ..distsys.asynchronous import run_asynchronous
from ..distsys.faults import IIDDrop, LinkDelay, uniform_delay
from ..functions.batched import stack_costs
from .paper_regression import PaperProblem, paper_problem
from .reporting import format_table

__all__ = [
    "AsynchronousSweepRow",
    "DEFAULT_POLICIES",
    "asynchronous_sweep",
    "render_asynchronous_report",
]

#: Declared missing-value policy per default filter: CGE shrinks (its sum
#: scales with attendance anyway), the trim-style filters keep their
#: declared tolerance through the masked kernels.
DEFAULT_POLICIES: Dict[str, str] = {
    "cge": "shrink",
    "cge_mean": "shrink",
    "cwtm": "masked",
    "median": "masked",
    "mean": "masked",
}


@dataclass
class AsynchronousSweepRow:
    """One (staleness bound, drop rate, filter) cell of the async sweep."""

    staleness_bound: int
    drop_rate: float
    aggregator: str
    policy: str
    attack: Optional[str]
    seeds: int
    mean_radius: float          # mean over seeds of the final radius
    worst_radius: float         # max over seeds
    missing_rate: float         # mean per-round fraction of missing agents
    mean_staleness: float       # mean staleness of aggregated messages
    stalled: int                # total stalled rounds across seeds


def asynchronous_sweep(
    problem: Optional[PaperProblem] = None,
    staleness_bounds: Sequence[int] = (0, 1, 2, 4),
    drop_rates: Sequence[float] = (0.0, 0.15, 0.35),
    aggregators: Sequence[str] = ("cge", "cwtm", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 200,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
) -> List[AsynchronousSweepRow]:
    """Run the staleness × drop-rate × filter sweep; returns report rows.

    Every cell shares the same delay spectrum (uniform integer delays in
    ``0..delay_high`` on every link) so the staleness bound is the axis
    that decides how much of the in-flight traffic is usable; the drop
    rate adds i.i.d. loss on top.  The stale-gradient evaluation runs on
    the problem's coefficient-stacked costs
    (:func:`~repro.functions.batched.stack_costs`), so each run's hot
    path is one ``gradients_each`` einsum per round.
    """
    problem = problem or paper_problem()
    stack = stack_costs(problem.costs)
    policies = dict(DEFAULT_POLICIES, **(policies or {}))
    rows: List[AsynchronousSweepRow] = []
    for tau in staleness_bounds:
        for drop_rate in drop_rates:
            for aggregator in aggregators:
                policy = policies.get(aggregator, "shrink")
                radii, missing, staleness = [], [], []
                stalled = 0
                for seed in seeds:
                    conditions = [LinkDelay(uniform_delay(0, delay_high))]
                    if drop_rate > 0:
                        conditions.append(IIDDrop(drop_rate))
                    trace = run_asynchronous(
                        stack,
                        faulty_ids=list(problem.faulty_ids),
                        aggregator=aggregator,
                        attack=None if attack is None else make_attack(attack),
                        constraint=problem.constraint,
                        schedule=problem.schedule,
                        initial_estimate=problem.initial_estimate,
                        iterations=iterations,
                        conditions=conditions,
                        staleness_bound=tau,
                        missing_policy=policy,
                        seed=seed,
                    )
                    radii.append(
                        float(np.linalg.norm(trace.final_estimate - problem.x_h))
                    )
                    missing.append(float(trace.missing_fraction().mean()))
                    profile = trace.staleness_profile()
                    staleness.append(
                        float(np.nanmean(profile))
                        if np.isfinite(profile).any()
                        else float("nan")
                    )
                    stalled += trace.stalled_rounds()
                finite_staleness = [s for s in staleness if not np.isnan(s)]
                rows.append(
                    AsynchronousSweepRow(
                        staleness_bound=int(tau),
                        drop_rate=float(drop_rate),
                        aggregator=aggregator,
                        policy=policy,
                        attack=attack,
                        seeds=len(seeds),
                        mean_radius=float(np.mean(radii)),
                        worst_radius=float(np.max(radii)),
                        missing_rate=float(np.mean(missing)),
                        mean_staleness=(
                            float(np.mean(finite_staleness))
                            if finite_staleness
                            else float("nan")
                        ),
                        stalled=stalled,
                    )
                )
    return rows


def render_asynchronous_report(
    rows: Sequence[AsynchronousSweepRow], iterations: int = 200
) -> str:
    """The convergence-radius report as an aligned text table."""
    return format_table(
        headers=[
            "tau",
            "drop",
            "filter",
            "policy",
            "attack",
            "radius (mean)",
            "radius (worst)",
            "missing",
            "staleness",
            "stalled",
        ],
        rows=[
            [
                r.staleness_bound,
                r.drop_rate,
                r.aggregator,
                r.policy,
                r.attack or "honest",
                r.mean_radius,
                r.worst_radius,
                r.missing_rate,
                r.mean_staleness,
                r.stalled,
            ]
            for r in rows
        ],
        title=(
            "Asynchronous robust DGD on the Appendix-J system - "
            f"convergence radius after {iterations} rounds under uniform "
            "0..2 delivery delays (radius = ||x_T - x_H||)"
        ),
    )
