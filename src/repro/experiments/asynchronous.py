"""The asynchronous experiment family: staleness × drop-rate × filter sweeps.

Runs the Appendix-J regression system through the event-driven engine
(:class:`~repro.distsys.asynchronous.AsynchronousSimulator`) on a grid of
staleness bounds and loss rates — under a fixed delay spectrum (uniform
0–2 round delivery lag) with the paper's gradient-reverse adversary — and
reports, per configuration, the final **convergence radius**
``||x_T - x_H||`` together with the asynchrony diagnostics the synchronous
sweeps cannot produce: the per-round fraction of agents whose message
missed the staleness bound, the mean staleness of the messages actually
aggregated, and the number of stalled rounds.

Each (filter) column runs under its *declared* missing-value policy — the
contract introduced by the asynchronous engine: ``"shrink"`` re-aggregates
at the round's attendance with step-S1 ``n``/``f`` bookkeeping, ``"masked"``
keeps the declared tolerance through the masked kernels of
:mod:`repro.aggregators.masked`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..attacks.registry import make_attack
from ..distsys.asynchronous import run_asynchronous
from ..distsys.batch_async import AsyncBatchTrial, run_asynchronous_batch
from ..distsys.faults import IIDDrop, LinkDelay, uniform_delay
from ..functions.batched import stack_costs
from .paper_regression import PaperProblem, paper_problem
from .reporting import format_table

__all__ = [
    "AsynchronousSweepRow",
    "DEFAULT_POLICIES",
    "SWEEP_ENGINES",
    "asynchronous_sweep",
    "render_asynchronous_report",
]

#: The two sweep execution engines: ``"batched"`` runs every
#: (τ, drop, filter, seed) cell in lockstep through
#: :class:`~repro.distsys.batch_async.BatchAsynchronousSimulator`;
#: ``"reference"`` replays the per-trial event-driven engine cell by cell
#: (the oracle the batched engine is pinned against — and the fallback for
#: configurations the tensor program cannot express).
SWEEP_ENGINES = ("batched", "reference")

#: Declared missing-value policy per default filter: CGE shrinks (its sum
#: scales with attendance anyway), the trim-style filters keep their
#: declared tolerance through the masked kernels.
DEFAULT_POLICIES: Dict[str, str] = {
    "cge": "shrink",
    "cge_mean": "shrink",
    "cwtm": "masked",
    "median": "masked",
    "mean": "masked",
}


@dataclass
class AsynchronousSweepRow:
    """One (staleness bound, drop rate, filter) cell of the async sweep."""

    staleness_bound: int
    drop_rate: float
    aggregator: str
    policy: str
    attack: Optional[str]
    seeds: int
    mean_radius: float          # mean over seeds of the final radius
    worst_radius: float         # max over seeds
    missing_rate: float         # mean per-round fraction of missing agents
    mean_staleness: float       # mean staleness of aggregated messages
    stalled: int                # total stalled rounds across seeds


def _assemble_row(
    tau, drop_rate, aggregator, policy, attack, seeds,
    radii, missing, staleness, stalled,
) -> AsynchronousSweepRow:
    """Fold one cell's per-seed statistics into a report row."""
    finite_staleness = [s for s in staleness if not np.isnan(s)]
    return AsynchronousSweepRow(
        staleness_bound=int(tau),
        drop_rate=float(drop_rate),
        aggregator=aggregator,
        policy=policy,
        attack=attack,
        seeds=len(seeds),
        mean_radius=float(np.mean(radii)),
        worst_radius=float(np.max(radii)),
        missing_rate=float(np.mean(missing)),
        mean_staleness=(
            float(np.mean(finite_staleness))
            if finite_staleness
            else float("nan")
        ),
        stalled=int(stalled),
    )


def asynchronous_sweep(
    problem: Optional[PaperProblem] = None,
    staleness_bounds: Sequence[int] = (0, 1, 2, 4),
    drop_rates: Sequence[float] = (0.0, 0.15, 0.35),
    aggregators: Sequence[str] = ("cge", "cwtm", "median"),
    attack: Optional[str] = "gradient_reverse",
    policies: Optional[Dict[str, str]] = None,
    iterations: int = 200,
    seeds: Sequence[int] = (0,),
    delay_high: int = 2,
    engine: str = "batched",
) -> List[AsynchronousSweepRow]:
    """Run the staleness × drop-rate × filter sweep; returns report rows.

    Every cell shares the same delay spectrum (uniform integer delays in
    ``0..delay_high`` on every link) so the staleness bound is the axis
    that decides how much of the in-flight traffic is usable; the drop
    rate adds i.i.d. loss on top.

    With ``engine="batched"`` (the default) every (τ, drop, filter, seed)
    cell becomes one :class:`~repro.distsys.batch_async.AsyncBatchTrial`
    and the whole sweep runs in lockstep as a single ``(S, n, d)`` tensor
    program — pre-sampled network realizations, one stale-gradient einsum
    per round, batched filter kernels.  ``engine="reference"`` replays the
    per-trial event-driven engine cell by cell; the two produce the same
    rows to 1e-9 (per-trial network streams are identical), so the flag
    is a verification fallback, not a semantic switch.
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"unknown sweep engine {engine!r}; known: {', '.join(SWEEP_ENGINES)}"
        )
    problem = problem or paper_problem()
    stack = stack_costs(problem.costs)
    policies = dict(DEFAULT_POLICIES, **(policies or {}))
    cells = [
        (tau, drop_rate, aggregator)
        for tau in staleness_bounds
        for drop_rate in drop_rates
        for aggregator in aggregators
    ]

    def cell_conditions(drop_rate):
        conditions = [LinkDelay(uniform_delay(0, delay_high))]
        if drop_rate > 0:
            conditions.append(IIDDrop(drop_rate))
        return conditions

    rows: List[AsynchronousSweepRow] = []
    if engine == "batched":
        trials = [
            AsyncBatchTrial(
                aggregator=aggregator,
                attack=None if attack is None else make_attack(attack),
                faulty_ids=tuple(problem.faulty_ids),
                conditions=tuple(cell_conditions(drop_rate)),
                staleness_bound=int(tau),
                missing_policy=policies.get(aggregator, "shrink"),
                seed=int(seed),
                label=f"tau{tau}/drop{drop_rate}/{aggregator}/s{seed}",
            )
            for (tau, drop_rate, aggregator) in cells
            for seed in seeds
        ]
        trace = run_asynchronous_batch(
            stack,
            trials,
            constraint=problem.constraint,
            schedule=problem.schedule,
            initial_estimate=problem.initial_estimate,
            iterations=iterations,
        )
        radii_all = np.linalg.norm(
            trace.final_estimates - np.asarray(problem.x_h), axis=1
        )
        missing_all = trace.missing_fraction().mean(axis=1)
        profile_all = trace.staleness_profile()
        stalled_all = trace.stalled_rounds()
        for c, (tau, drop_rate, aggregator) in enumerate(cells):
            sl = slice(c * len(seeds), (c + 1) * len(seeds))
            staleness = [
                float(np.nanmean(profile))
                if np.isfinite(profile).any()
                else float("nan")
                for profile in profile_all[sl]
            ]
            rows.append(
                _assemble_row(
                    tau, drop_rate, aggregator,
                    policies.get(aggregator, "shrink"), attack, seeds,
                    radii_all[sl], missing_all[sl], staleness,
                    int(stalled_all[sl].sum()),
                )
            )
        return rows

    for tau, drop_rate, aggregator in cells:
        policy = policies.get(aggregator, "shrink")
        radii, missing, staleness = [], [], []
        stalled = 0
        for seed in seeds:
            trace = run_asynchronous(
                stack,
                faulty_ids=list(problem.faulty_ids),
                aggregator=aggregator,
                attack=None if attack is None else make_attack(attack),
                constraint=problem.constraint,
                schedule=problem.schedule,
                initial_estimate=problem.initial_estimate,
                iterations=iterations,
                conditions=cell_conditions(drop_rate),
                staleness_bound=tau,
                missing_policy=policy,
                seed=seed,
            )
            radii.append(
                float(np.linalg.norm(trace.final_estimate - problem.x_h))
            )
            missing.append(float(trace.missing_fraction().mean()))
            profile = trace.staleness_profile()
            staleness.append(
                float(np.nanmean(profile))
                if np.isfinite(profile).any()
                else float("nan")
            )
            stalled += trace.stalled_rounds()
        rows.append(
            _assemble_row(
                tau, drop_rate, aggregator, policy, attack, seeds,
                radii, missing, staleness, stalled,
            )
        )
    return rows


def render_asynchronous_report(
    rows: Sequence[AsynchronousSweepRow], iterations: int = 200
) -> str:
    """The convergence-radius report as an aligned text table."""
    return format_table(
        headers=[
            "tau",
            "drop",
            "filter",
            "policy",
            "attack",
            "radius (mean)",
            "radius (worst)",
            "missing",
            "staleness",
            "stalled",
        ],
        rows=[
            [
                r.staleness_bound,
                r.drop_rate,
                r.aggregator,
                r.policy,
                r.attack or "honest",
                r.mean_radius,
                r.worst_radius,
                r.missing_rate,
                r.mean_staleness,
                r.stalled,
            ]
            for r in rows
        ],
        title=(
            "Asynchronous robust DGD on the Appendix-J system - "
            f"convergence radius after {iterations} rounds under uniform "
            "0..2 delivery delays (radius = ||x_T - x_H||)"
        ),
    )
