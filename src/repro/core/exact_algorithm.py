"""The constructive algorithm from the proof of Theorem 2.

Under (2f, ε)-redundancy this three-step procedure is (f, 2ε)-resilient:

  Step 1: every agent sends its full cost function to the server (Byzantine
          agents may send arbitrary functions).
  Step 2: for each candidate set T with |T| = n − f, the server picks a
          minimizer ``x_T`` of the aggregate over T and computes
          ``r_T = max over T̂ ⊂ T, |T̂| = n − 2f of dist(x_T, argmin_T̂)``
          (equations (10)–(11)).
  Step 3: output ``x_S`` for S minimizing ``r_T`` (equation (12)).

The paper notes it "is not a very practical algorithm due to being
computationally expensive" — the enumeration is Θ(C(n, f) · C(n−f, f));
``bench_exact_algorithm`` measures that growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..functions.base import CostFunction
from ..functions.sums import SumCost
from ..optim.argmin import resolve_argmin_set
from .geometry import PointSet

__all__ = ["ExactAlgorithmResult", "exact_resilient_argmin"]


@dataclass
class ExactAlgorithmResult:
    """Output of the Theorem-2 procedure with its audit trail."""

    output: np.ndarray
    selected_set: Tuple[int, ...]
    radius: float                       # r_S of the winning set
    radii: Dict[Tuple[int, ...], float]  # r_T for every candidate T
    candidates: Dict[Tuple[int, ...], np.ndarray]  # x_T for every T

    def __repr__(self) -> str:
        return (
            f"ExactAlgorithmResult(selected={self.selected_set},"
            f" radius={self.radius:.6g},"
            f" candidates={len(self.candidates)})"
        )


def exact_resilient_argmin(
    costs: Sequence[CostFunction], f: int
) -> ExactAlgorithmResult:
    """Run the Theorem-2 algorithm on the received cost functions.

    ``costs`` are the n functions the server received — Byzantine agents'
    entries may be arbitrary (that is the threat model; the algorithm never
    learns which entries are faulty).  Requires ``0 < f < n/2`` as in the
    paper (f = 0 reduces to plain aggregate minimization and is allowed).
    """
    n = len(costs)
    if f < 0:
        raise ValueError("f must be non-negative")
    if 2 * f >= n and f > 0:
        raise ValueError(
            f"resilience is impossible for f >= n/2 (Lemma 1): n={n}, f={f}"
        )

    argmin_cache: Dict[Tuple[int, ...], PointSet] = {}

    def cached_argmin(subset: Tuple[int, ...]) -> PointSet:
        if subset not in argmin_cache:
            aggregate = SumCost([costs[i] for i in subset])
            argmin_cache[subset] = resolve_argmin_set(aggregate)
        return argmin_cache[subset]

    if f == 0:
        full = tuple(range(n))
        x_full = cached_argmin(full).support_points()[0]
        return ExactAlgorithmResult(
            output=np.asarray(x_full, dtype=float),
            selected_set=full,
            radius=0.0,
            radii={full: 0.0},
            candidates={full: np.asarray(x_full, dtype=float)},
        )

    radii: Dict[Tuple[int, ...], float] = {}
    candidates: Dict[Tuple[int, ...], np.ndarray] = {}
    for outer in combinations(range(n), n - f):
        x_t = np.asarray(cached_argmin(outer).support_points()[0], dtype=float)
        candidates[outer] = x_t
        r_t = 0.0
        for inner in combinations(outer, n - 2 * f):
            inner_set = cached_argmin(inner)
            r_t = max(r_t, inner_set.distance_to(x_t))  # equation (10)
        radii[outer] = r_t                              # equation (11)

    selected = min(radii, key=lambda key: (radii[key], key))  # equation (12)
    return ExactAlgorithmResult(
        output=candidates[selected],
        selected_set=selected,
        radius=radii[selected],
        radii=radii,
        candidates=candidates,
    )
