"""End-to-end resilience certification for a cost family.

The workflow a downstream user actually wants: *given my agents' costs and
a fault budget f, what does this paper guarantee, and does it hold when I
run the system?*  :func:`certify_system` chains the library's pieces:

1. feasibility (Lemma 1: f < n/2),
2. redundancy measurement (Definition 3 — the exact enumeration, or the
   sampled lower bound for large n),
3. assumption constants µ, γ, λ (Assumptions 2/3/5),
4. theory bounds (Theorems 4, 5, 6) with applicability flags,
5. optional empirical stress runs of DGD under a battery of attacks, each
   audited against Definition 2 and the theory envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..functions.base import CostFunction
from .bounds import ResilienceBound, cge_bound, cge_bound_v2, cwtm_bound
from .redundancy import estimate_or_measure_epsilon
from .resilience import resilience_is_feasible
from .theory import measure_constants

__all__ = ["AttackOutcome", "CertificationReport", "certify_system"]


@dataclass
class AttackOutcome:
    """One empirical stress run inside a certification."""

    aggregator: str
    attack: str
    distance: float
    within_epsilon: bool
    within_envelope: bool


@dataclass
class CertificationReport:
    """Everything :func:`certify_system` establishes about a system."""

    n: int
    f: int
    feasible: bool
    epsilon: float
    epsilon_is_exact: bool
    mu: float
    gamma: float
    lam: float
    bound_cge_thm4: ResilienceBound
    bound_cge_thm5: ResilienceBound
    bound_cwtm_thm6: ResilienceBound
    outcomes: List[AttackOutcome] = field(default_factory=list)

    @property
    def best_cge_envelope(self) -> float:
        """Tightest applicable CGE guarantee radius (D·ε), inf if none."""
        radii = [
            b.radius(self.epsilon)
            for b in (self.bound_cge_thm4, self.bound_cge_thm5)
            if b.applicable
        ]
        return min(radii) if radii else float("inf")

    def render(self) -> str:
        """Human-readable certification summary."""
        lines = [
            f"Resilience certification — n={self.n}, f={self.f}",
            f"  Lemma-1 feasibility (f < n/2): {'OK' if self.feasible else 'FAIL'}",
            (
                f"  (2f, eps)-redundancy eps: {self.epsilon:.6g}"
                f" ({'exact' if self.epsilon_is_exact else 'sampled lower bound'})"
            ),
            (
                f"  constants: mu={self.mu:.4g}, gamma={self.gamma:.4g},"
                f" lambda={self.lam:.4g}"
            ),
        ]
        for bound in (
            self.bound_cge_thm4,
            self.bound_cge_thm5,
            self.bound_cwtm_thm6,
        ):
            if bound.applicable:
                lines.append(
                    f"  {bound.theorem}: applicable,"
                    f" guaranteed radius {bound.radius(self.epsilon):.6g}"
                )
            else:
                lines.append(f"  {bound.theorem}: NOT applicable")
        for outcome in self.outcomes:
            verdict = "ok" if outcome.within_envelope else "VIOLATION"
            lines.append(
                f"  run {outcome.aggregator}/{outcome.attack}:"
                f" dist={outcome.distance:.6g}"
                f" (<eps: {outcome.within_epsilon}, envelope: {verdict})"
            )
        return "\n".join(lines)


def certify_system(
    costs: Sequence[CostFunction],
    f: int,
    stress_attacks: Sequence[str] = (),
    aggregators: Sequence[str] = ("cge", "cwtm"),
    iterations: int = 500,
    exhaustive_limit: int = 10,
    seed: int = 0,
) -> CertificationReport:
    """Certify a cost family against the paper's theory.

    ``exhaustive_limit`` bounds the system size for which the Definition-3
    enumeration is exhaustive; larger systems fall back to the sampled
    lower bound of :mod:`repro.core.sampling`.  ``stress_attacks`` names
    attacks from the registry; each is run through DGD with the last ``f``
    agents Byzantine and audited against ε and the tightest applicable
    envelope.
    """
    n = len(costs)
    feasible = resilience_is_feasible(n, f)
    if feasible:
        epsilon, exact = estimate_or_measure_epsilon(
            costs, f, exhaustive_limit=exhaustive_limit, seed=seed
        )
    else:
        # Lemma 1: no deterministic algorithm exists; the redundancy
        # parameter (which needs n - 2f >= 1) is undefined here.
        epsilon, exact = float("nan"), False
    constants = measure_constants(costs, f, rng=np.random.default_rng(seed))
    report = CertificationReport(
        n=n,
        f=f,
        feasible=feasible,
        epsilon=epsilon,
        epsilon_is_exact=exact,
        mu=constants.mu,
        gamma=constants.gamma,
        lam=constants.lam,
        bound_cge_thm4=cge_bound(n, f, constants.mu, constants.gamma),
        bound_cge_thm5=cge_bound_v2(n, f, constants.mu, constants.gamma),
        bound_cwtm_thm6=cwtm_bound(
            n, costs[0].dim, constants.mu, constants.gamma, constants.lam
        ),
    )
    if not stress_attacks or not feasible:
        return report

    from ..aggregators.registry import make_aggregator
    from ..attacks.registry import make_attack
    from ..distsys.simulator import run_dgd
    from ..functions.sums import SumCost
    from ..optim.argmin import resolve_argmin_set
    from ..optim.projections import BoxSet
    from ..optim.schedules import paper_schedule

    honest = list(costs[: n - f])
    x_h = resolve_argmin_set(SumCost(honest)).support_points()[0]
    envelope = report.best_cge_envelope
    for aggregator in aggregators:
        for attack in stress_attacks:
            trace = run_dgd(
                costs=costs,
                faulty_ids=list(range(n - f, n)),
                aggregator=make_aggregator(aggregator, n, f),
                attack=make_attack(attack),
                constraint=BoxSet.symmetric(1000.0, dim=costs[0].dim),
                schedule=paper_schedule(),
                initial_estimate=np.zeros(costs[0].dim),
                iterations=iterations,
                seed=seed,
            )
            distance = float(np.linalg.norm(trace.final_estimate - x_h))
            report.outcomes.append(
                AttackOutcome(
                    aggregator=aggregator,
                    attack=attack,
                    distance=distance,
                    within_epsilon=distance < epsilon,
                    within_envelope=distance <= envelope + 1e-9,
                )
            )
    return report
