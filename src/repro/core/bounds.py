"""Resilience bounds of Theorems 4, 5 and 6.

These closed forms turn the measured problem constants (µ, γ, λ, ε) into the
asymptotic error radii the paper guarantees:

* CGE, Theorem 4:  α = 1 − (f/n)(1 + 2µ/γ),  D = 4µf / (αγ)
  (limit ‖x_t − x_H‖ ≤ D·ε), requiring α > 0 — i.e. f/n < 1/(1 + 2µ/γ).
* CGE, Theorem 5 (sharper, requires f ≤ n/3):
  α = 1 − (f/n)(1 + µ/γ),  D = (1 + 2f)(n − 2f)µ / (αnγ).
* CWTM, Theorem 6:  D' = 2√d·nµλ / (γ − √d·µλ), requiring λ < γ/(µ√d).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ResilienceBound",
    "cge_bound",
    "cge_bound_v2",
    "cwtm_bound",
    "cge_breakdown_fraction",
]


@dataclass(frozen=True)
class ResilienceBound:
    """A filter's guaranteed asymptotic resilience radius per unit ε.

    ``factor`` is D (or D'): the algorithm is asymptotically (f, D·ε)-
    resilient.  ``applicable`` is False when the theorem's hypothesis fails
    (α ≤ 0, f too large, or λ too large), in which case ``factor`` is NaN.
    """

    theorem: str
    applicable: bool
    factor: float
    alpha: Optional[float] = None

    def radius(self, epsilon: float) -> float:
        """The guaranteed limit radius ``factor * epsilon``."""
        if not self.applicable:
            raise ValueError(f"{self.theorem} hypothesis not satisfied")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        return self.factor * epsilon


def _validate(n: int, f: int, mu: float, gamma: float) -> None:
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= f < n:
        raise ValueError(f"need 0 <= f < n (got n={n}, f={f})")
    if mu <= 0 or gamma <= 0:
        raise ValueError("mu and gamma must be positive")
    if gamma > mu + 1e-9:
        raise ValueError(
            f"gamma <= mu must hold (Appendix C), got gamma={gamma}, mu={mu}"
        )


def cge_breakdown_fraction(mu: float, gamma: float) -> float:
    """Largest f/n ratio with a Theorem-4 guarantee: 1 / (1 + 2µ/γ)."""
    if mu <= 0 or gamma <= 0:
        raise ValueError("mu and gamma must be positive")
    return 1.0 / (1.0 + 2.0 * mu / gamma)


def cge_bound(n: int, f: int, mu: float, gamma: float) -> ResilienceBound:
    """Theorem 4: DGD + CGE is asymptotically (f, Dε)-resilient.

    ``D = 4µf/(αγ)`` with ``α = 1 − (f/n)(1 + 2µ/γ)``; D = 0 when f = 0
    (exact convergence in the fault-free case).
    """
    _validate(n, f, mu, gamma)
    alpha = 1.0 - (f / n) * (1.0 + 2.0 * mu / gamma)
    if alpha <= 0:
        return ResilienceBound(
            theorem="Theorem 4", applicable=False, factor=float("nan"), alpha=alpha
        )
    factor = 4.0 * mu * f / (alpha * gamma)
    return ResilienceBound(
        theorem="Theorem 4", applicable=True, factor=factor, alpha=alpha
    )


def cge_bound_v2(n: int, f: int, mu: float, gamma: float) -> ResilienceBound:
    """Theorem 5: the alternative CGE bound exploiting 2f-redundancy.

    ``D = (1 + 2f)(n − 2f)µ/(αnγ)`` with ``α = 1 − (f/n)(1 + µ/γ)``;
    requires ``f <= n/3``.
    """
    _validate(n, f, mu, gamma)
    if f > n / 3.0:
        return ResilienceBound(
            theorem="Theorem 5", applicable=False, factor=float("nan"), alpha=None
        )
    alpha = 1.0 - (f / n) * (1.0 + mu / gamma)
    if alpha <= 0:
        return ResilienceBound(
            theorem="Theorem 5", applicable=False, factor=float("nan"), alpha=alpha
        )
    if f == 0:
        factor = 0.0
    else:
        factor = (1.0 + 2.0 * f) * (n - 2.0 * f) * mu / (alpha * n * gamma)
    return ResilienceBound(
        theorem="Theorem 5", applicable=True, factor=factor, alpha=alpha
    )


def cwtm_bound(
    n: int, d: int, mu: float, gamma: float, lam: float
) -> ResilienceBound:
    """Theorem 6: DGD + CWTM is asymptotically (f, D'ε)-resilient.

    ``D' = 2√d·nµλ / (γ − √d·µλ)``; requires λ < γ/(µ√d) (Assumption 5
    with a sufficiently small dissimilarity constant).  Note D' does not
    depend on f directly.
    """
    if d <= 0:
        raise ValueError("d must be positive")
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    if n <= 0:
        raise ValueError("n must be positive")
    if mu <= 0 or gamma <= 0:
        raise ValueError("mu and gamma must be positive")
    root_d = math.sqrt(d)
    if lam >= gamma / (mu * root_d):
        return ResilienceBound(
            theorem="Theorem 6", applicable=False, factor=float("nan"), alpha=None
        )
    factor = 2.0 * root_d * n * mu * lam / (gamma - root_d * mu * lam)
    return ResilienceBound(
        theorem="Theorem 6", applicable=True, factor=factor, alpha=None
    )
