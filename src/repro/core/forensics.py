"""Post-hoc filter forensics on execution traces.

Given a recorded run, reconstruct *which agents each filter discarded* at
every iteration — the observable counterpart of the proofs' bookkeeping
(Theorem 4 charges each surviving Byzantine gradient against an eliminated
honest one; Theorem 6 reasons about which entries are trimmed).  Useful for
diagnosing why a filter under-performed (e.g. the zero attack is *never*
eliminated by CGE) and for measuring honest collateral.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..aggregators.cge import cge_selection
from ..distsys.trace import ExecutionTrace

__all__ = [
    "CGEForensics",
    "cge_forensics",
    "CWTMForensics",
    "cwtm_forensics",
]


@dataclass
class CGEForensics:
    """Per-agent elimination statistics of a CGE run."""

    rounds: int
    f: int
    eliminated_per_round: List[List[int]]
    elimination_fraction: Dict[int, float]   # agent id -> fraction of rounds
    byzantine_filtered_fraction: float       # mean over rounds & faulty ids
    honest_collateral_fraction: float        # mean over rounds & honest ids

    def __repr__(self) -> str:
        return (
            f"CGEForensics(rounds={self.rounds},"
            f" byz_filtered={self.byzantine_filtered_fraction:.3f},"
            f" honest_collateral={self.honest_collateral_fraction:.3f})"
        )


def cge_forensics(
    trace: ExecutionTrace, f: int, faulty_ids: Sequence[int] = ()
) -> CGEForensics:
    """Replay CGE's norm-sort selection over a recorded trace.

    Uses each round's recorded gradients (deterministic given the trace),
    so the reconstruction is exact for runs that used
    :class:`~repro.aggregators.cge.CGEAggregator` with the same ``f``.
    """
    if len(trace) == 0:
        raise ValueError("trace is empty")
    faulty = frozenset(int(i) for i in faulty_ids)
    eliminated_rounds: List[List[int]] = []
    counts: Dict[int, int] = {}
    byz_filtered = 0
    byz_total = 0
    honest_filtered = 0
    honest_total = 0
    for record in trace:
        ids = sorted(record.gradients)
        stack = np.vstack([record.gradients[i] for i in ids])
        kept_rows = set(cge_selection(stack, f).tolist())
        eliminated = [
            ids[row] for row in range(len(ids)) if row not in kept_rows
        ]
        eliminated_rounds.append(sorted(eliminated))
        for agent in eliminated:
            counts[agent] = counts.get(agent, 0) + 1
        for agent in ids:
            if agent in faulty:
                byz_total += 1
                byz_filtered += agent in eliminated
            else:
                honest_total += 1
                honest_filtered += agent in eliminated
    rounds = len(trace)
    all_ids = sorted(trace.records[0].gradients)
    return CGEForensics(
        rounds=rounds,
        f=f,
        eliminated_per_round=eliminated_rounds,
        elimination_fraction={
            i: counts.get(i, 0) / rounds for i in all_ids
        },
        byzantine_filtered_fraction=(
            byz_filtered / byz_total if byz_total else 0.0
        ),
        honest_collateral_fraction=(
            honest_filtered / honest_total if honest_total else 0.0
        ),
    )


@dataclass
class CWTMForensics:
    """Per-agent trimming statistics of a CWTM run.

    ``trim_fraction[i]`` is the fraction of (round, coordinate) cells in
    which agent i's entry was among the f largest or f smallest and hence
    discarded by the trimmed mean.
    """

    rounds: int
    f: int
    dimension: int
    trim_fraction: Dict[int, float]
    byzantine_trimmed_fraction: float
    honest_collateral_fraction: float

    def __repr__(self) -> str:
        return (
            f"CWTMForensics(rounds={self.rounds},"
            f" byz_trimmed={self.byzantine_trimmed_fraction:.3f},"
            f" honest_collateral={self.honest_collateral_fraction:.3f})"
        )


def cwtm_forensics(
    trace: ExecutionTrace, f: int, faulty_ids: Sequence[int] = ()
) -> CWTMForensics:
    """Replay CWTM's per-coordinate trimming over a recorded trace."""
    if len(trace) == 0:
        raise ValueError("trace is empty")
    if f <= 0:
        raise ValueError("CWTM forensics needs f >= 1")
    faulty = frozenset(int(i) for i in faulty_ids)
    all_ids = sorted(trace.records[0].gradients)
    n = len(all_ids)
    dim = trace.records[0].estimate.shape[0]
    trimmed_cells: Dict[int, int] = {i: 0 for i in all_ids}
    total_cells = 0
    for record in trace:
        ids = sorted(record.gradients)
        stack = np.vstack([record.gradients[i] for i in ids])
        order = np.argsort(stack, axis=0, kind="stable")
        trimmed_rows = np.concatenate([order[:f], order[n - f:]], axis=0)
        for k in range(stack.shape[1]):
            for row in trimmed_rows[:, k]:
                trimmed_cells[ids[int(row)]] += 1
        total_cells += stack.shape[1]
    rounds = len(trace)
    cells_per_agent = rounds * dim
    byz = [i for i in all_ids if i in faulty]
    honest = [i for i in all_ids if i not in faulty]
    byz_frac = (
        float(np.mean([trimmed_cells[i] / cells_per_agent for i in byz]))
        if byz
        else 0.0
    )
    honest_frac = (
        float(np.mean([trimmed_cells[i] / cells_per_agent for i in honest]))
        if honest
        else 0.0
    )
    return CWTMForensics(
        rounds=rounds,
        f=f,
        dimension=dim,
        trim_fraction={
            i: trimmed_cells[i] / cells_per_agent for i in all_ids
        },
        byzantine_trimmed_fraction=byz_frac,
        honest_collateral_fraction=honest_frac,
    )
