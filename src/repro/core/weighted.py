"""Alternate approximation notions of Section 2.1.

Su & Vaidya (PODC 2016, reference [49]) measure approximate fault-tolerance
through *non-uniformly weighted* aggregates: an algorithm's output x̂ is
acceptable if it minimizes ``sum_i alpha_i Q_i`` for some convex weights
``alpha`` over the honest agents, scored by

1. how many weights are positive, and
2. the smallest positive weight.

For differentiable convex costs, x̂ minimizes the weighted aggregate iff
``sum_i alpha_i grad Q_i(x̂) = 0`` — a linear feasibility problem in
``alpha``, solved here with ``scipy.optimize.linprog``.

The module also provides the *function-value / gradient-value* approximation
measures the paper discusses (and criticizes: they are sensitive to cost
rescaling, unlike the distance-based (f, ε)-resilience — see
:func:`scaling_sensitivity_demo`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from ..functions.base import CostFunction

__all__ = [
    "WeightedCertificate",
    "weighted_minimizer_certificate",
    "gradient_value_approximation",
    "cost_value_approximation",
    "scaling_sensitivity_demo",
]


@dataclass
class WeightedCertificate:
    """Certificate that a point minimizes some weighted honest aggregate.

    Attributes:
        feasible: whether convex weights with (near-)zero weighted gradient
            exist at the audited point.
        weights: the maximizing weights (sum to 1), or None if infeasible.
        min_positive_weight: Su–Vaidya metric (2) — the value of the
            max-min LP; larger is better (1/h is the uniform ideal).
        n_positive: Su–Vaidya metric (1) — number of weights above ``tol``.
        residual_norm: ``||sum_i alpha_i grad Q_i(x)||`` at the solution.
    """

    feasible: bool
    weights: Optional[np.ndarray]
    min_positive_weight: float
    n_positive: int
    residual_norm: float

    def __repr__(self) -> str:
        return (
            f"WeightedCertificate(feasible={self.feasible},"
            f" n_positive={self.n_positive},"
            f" min_weight={self.min_positive_weight:.4g})"
        )


def weighted_minimizer_certificate(
    costs: Sequence[CostFunction],
    point: Sequence[float],
    tolerance: float = 1e-8,
) -> WeightedCertificate:
    """Audit ``point`` as a weighted-aggregate minimizer of ``costs``.

    Solves ``max t  s.t.  alpha_i >= t,  sum alpha = 1,
    |sum_i alpha_i grad Q_i(point)| <= tolerance (per coordinate)`` — the
    max-min-weight convex-combination certificate.  ``t* > 0`` means every
    honest agent's cost genuinely influences the output (the strongest form
    of the Su–Vaidya guarantee); ``t* = 0`` with feasibility means the point
    minimizes a weighted aggregate that ignores some agents.
    """
    x = np.asarray(point, dtype=float)
    h = len(costs)
    if h == 0:
        raise ValueError("need at least one cost")
    gradients = np.column_stack([c.gradient(x) for c in costs])  # (d, h)
    d = gradients.shape[0]

    # Variables: alpha_1..alpha_h, t.  Objective: maximize t.
    c_vec = np.zeros(h + 1)
    c_vec[-1] = -1.0
    # Equality: sum alpha = 1.
    a_eq = np.zeros((1, h + 1))
    a_eq[0, :h] = 1.0
    b_eq = np.array([1.0])
    # Inequalities: +-(G alpha) <= tolerance  and  t - alpha_i <= 0.
    a_ub = np.zeros((2 * d + h, h + 1))
    b_ub = np.zeros(2 * d + h)
    a_ub[:d, :h] = gradients
    b_ub[:d] = tolerance
    a_ub[d : 2 * d, :h] = -gradients
    b_ub[d : 2 * d] = tolerance
    for i in range(h):
        a_ub[2 * d + i, i] = -1.0
        a_ub[2 * d + i, h] = 1.0
    bounds = [(0.0, 1.0)] * h + [(0.0, 1.0)]

    result = linprog(
        c_vec, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not result.success:
        return WeightedCertificate(
            feasible=False,
            weights=None,
            min_positive_weight=0.0,
            n_positive=0,
            residual_norm=float("inf"),
        )
    weights = np.asarray(result.x[:h])
    t_star = float(result.x[h])
    residual = float(np.linalg.norm(gradients @ weights))
    positive = int(np.sum(weights > max(tolerance, 1e-12)))
    return WeightedCertificate(
        feasible=True,
        weights=weights,
        min_positive_weight=t_star,
        n_positive=positive,
        residual_norm=residual,
    )


def gradient_value_approximation(
    costs: Sequence[CostFunction], point: Sequence[float]
) -> float:
    """Section-2.1 gradient measure: ``max_k |sum_i grad Q_i(x)[k]|``.

    The paper notes this measure is *not* scale-invariant: doubling every
    cost doubles it while leaving the argmin (and hence any distance-based
    measure) unchanged.
    """
    x = np.asarray(point, dtype=float)
    total = np.sum([c.gradient(x) for c in costs], axis=0)
    return float(np.max(np.abs(total)))


def cost_value_approximation(
    costs: Sequence[CostFunction],
    point: Sequence[float],
    minimum_value: float,
) -> float:
    """Section-2.1 value measure: aggregate cost above the true minimum."""
    x = np.asarray(point, dtype=float)
    value = float(sum(c.value(x) for c in costs))
    return value - float(minimum_value)


def scaling_sensitivity_demo(
    costs: Sequence[CostFunction],
    point: Sequence[float],
    scale: float = 2.0,
) -> dict:
    """Numeric illustration of the paper's scale-sensitivity argument.

    Returns the gradient-value measure before/after scaling every cost by
    ``scale`` — the ratio equals ``scale`` — while the argmin of the
    aggregate (and so any (f, ε)-style distance measure) is unchanged.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    base = gradient_value_approximation(costs, point)
    scaled = gradient_value_approximation(
        [scale * c for c in costs], point
    )
    return {
        "gradient_measure": base,
        "scaled_gradient_measure": scaled,
        "ratio": scaled / base if base > 0 else float("nan"),
        "scale": scale,
    }
