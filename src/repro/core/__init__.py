"""Core contribution: resilience/redundancy theory of the paper."""

from .bounds import (
    ResilienceBound,
    cge_bound,
    cge_bound_v2,
    cge_breakdown_fraction,
    cwtm_bound,
)
from .certify import AttackOutcome, CertificationReport, certify_system
from .construct import ConstructedInstance, make_instance_with_epsilon
from .convergence import (
    ConvergenceDiagnostics,
    check_condition,
    fit_condition,
    phi_series,
)
from .exact_algorithm import ExactAlgorithmResult, exact_resilient_argmin
from .forensics import (
    CGEForensics,
    CWTMForensics,
    cge_forensics,
    cwtm_forensics,
)
from .frontier import FrontierRow, render_frontier, resilience_frontier
from .geometry import (
    AffineSubspace,
    BallSet,
    FiniteSet,
    PointSet,
    SegmentSet,
    SingletonSet,
    diameter,
    distance_to_set,
    hausdorff_distance,
    pairwise_distances,
)
from .redundancy import (
    RedundancyReport,
    estimate_or_measure_epsilon,
    has_exact_redundancy,
    has_redundancy,
    honest_subset_epsilon,
    measure_redundancy,
    subset_argmin,
)
from .sampling import SampledRedundancy, estimate_redundancy
from .resilience import (
    ResilienceEvaluation,
    evaluate_resilience,
    is_resilient_output,
    resilience_is_feasible,
)
from .weighted import (
    WeightedCertificate,
    cost_value_approximation,
    gradient_value_approximation,
    scaling_sensitivity_demo,
    weighted_minimizer_certificate,
)
from .theory import (
    AssumptionConstants,
    check_lemma3,
    gradient_dissimilarity,
    measure_constants,
    smoothness_constant,
    strong_convexity_constant,
    verify_lemma4,
)

__all__ = [
    "PointSet",
    "SingletonSet",
    "FiniteSet",
    "AffineSubspace",
    "BallSet",
    "SegmentSet",
    "distance_to_set",
    "hausdorff_distance",
    "pairwise_distances",
    "diameter",
    "RedundancyReport",
    "measure_redundancy",
    "has_redundancy",
    "has_exact_redundancy",
    "honest_subset_epsilon",
    "subset_argmin",
    "SampledRedundancy",
    "estimate_redundancy",
    "estimate_or_measure_epsilon",
    "AttackOutcome",
    "CertificationReport",
    "certify_system",
    "ConstructedInstance",
    "make_instance_with_epsilon",
    "FrontierRow",
    "resilience_frontier",
    "render_frontier",
    "ConvergenceDiagnostics",
    "phi_series",
    "check_condition",
    "fit_condition",
    "CGEForensics",
    "cge_forensics",
    "CWTMForensics",
    "cwtm_forensics",
    "WeightedCertificate",
    "weighted_minimizer_certificate",
    "gradient_value_approximation",
    "cost_value_approximation",
    "scaling_sensitivity_demo",
    "ResilienceEvaluation",
    "evaluate_resilience",
    "is_resilient_output",
    "resilience_is_feasible",
    "ExactAlgorithmResult",
    "exact_resilient_argmin",
    "ResilienceBound",
    "cge_bound",
    "cge_bound_v2",
    "cwtm_bound",
    "cge_breakdown_fraction",
    "AssumptionConstants",
    "measure_constants",
    "smoothness_constant",
    "strong_convexity_constant",
    "gradient_dissimilarity",
    "check_lemma3",
    "verify_lemma4",
]
