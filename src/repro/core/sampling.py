"""Monte-Carlo redundancy estimation for large systems.

``measure_redundancy`` enumerates Θ(C(n, f)·C(n−f, f)) subset pairs, which
the paper itself calls impractical.  For larger n this module estimates the
(2f, ε)-redundancy parameter by sampling subset pairs uniformly; the
estimate is a *lower bound* on ε (a max over a subsample), converging to
the exhaustive value as the sample count grows — the property-based tests
pin both facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..functions.base import CostFunction
from .geometry import hausdorff_distance
from .redundancy import subset_argmin

__all__ = ["SampledRedundancy", "estimate_redundancy"]


@dataclass
class SampledRedundancy:
    """Outcome of a sampled redundancy measurement."""

    n: int
    f: int
    epsilon_lower_bound: float
    samples: int
    distinct_pairs: int
    witness: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]

    def __repr__(self) -> str:
        return (
            f"SampledRedundancy(n={self.n}, f={self.f},"
            f" eps>={self.epsilon_lower_bound:.6g},"
            f" samples={self.samples})"
        )


def estimate_redundancy(
    costs: Sequence[CostFunction],
    f: int,
    samples: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> SampledRedundancy:
    """Sampled lower bound on the Definition-3 ε.

    Each sample draws a uniform S (|S| = n − f) and a uniform Ŝ ⊂ S
    (|Ŝ| = n − 2f) and records the Hausdorff distance between the two
    argmin sets; the running max over samples lower-bounds the exhaustive
    ε and equals it once every pair has been seen.
    """
    n = len(costs)
    if f < 0:
        raise ValueError("f must be non-negative")
    if n - 2 * f < 1:
        raise ValueError(
            f"(2f, eps)-redundancy needs n - 2f >= 1 (got n={n}, f={f})"
        )
    if samples <= 0:
        raise ValueError("samples must be positive")
    if f == 0:
        return SampledRedundancy(
            n=n, f=0, epsilon_lower_bound=0.0, samples=0,
            distinct_pairs=0, witness=None,
        )
    rng = rng or np.random.default_rng(0)

    argmin_cache: dict = {}

    def cached(subset: Tuple[int, ...]):
        if subset not in argmin_cache:
            argmin_cache[subset] = subset_argmin(costs, subset)
        return argmin_cache[subset]

    worst = 0.0
    witness: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
    seen = set()
    for _ in range(samples):
        outer = tuple(sorted(rng.choice(n, size=n - f, replace=False).tolist()))
        inner = tuple(
            sorted(rng.choice(outer, size=n - 2 * f, replace=False).tolist())
        )
        seen.add((outer, inner))
        gap = hausdorff_distance(cached(outer), cached(inner))
        if gap > worst:
            worst = gap
            witness = (outer, inner)
    return SampledRedundancy(
        n=n,
        f=f,
        epsilon_lower_bound=float(worst),
        samples=samples,
        distinct_pairs=len(seen),
        witness=witness,
    )
