"""(f, ε)-resilience — Definition 2 — and Lemma-1 feasibility checks.

An output point x̂ is (f, ε)-resilient for a ground-truth execution when,
for *every* subset S of non-faulty agents with |S| = n − f,
``dist(x̂, argmin sum_{i in S} Q_i) <= ε``.  These helpers evaluate that
property for a candidate output (used to validate algorithms empirically and
to build the necessity/sufficiency test fixtures).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..functions.base import CostFunction
from .redundancy import subset_argmin

__all__ = [
    "ResilienceEvaluation",
    "evaluate_resilience",
    "is_resilient_output",
    "resilience_is_feasible",
]


def resilience_is_feasible(n: int, f: int) -> bool:
    """Lemma 1: deterministic (f, ε)-resilience requires ``f < n/2``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if f < 0:
        raise ValueError("f must be non-negative")
    return f < n / 2.0


@dataclass
class ResilienceEvaluation:
    """Worst-case distance from an output to honest-subset argmin sets."""

    output: np.ndarray
    worst_distance: float
    worst_subset: Optional[Tuple[int, ...]]
    subsets_checked: int

    def satisfies(self, epsilon: float) -> bool:
        """Whether the output is within ε of every honest subset argmin."""
        return self.worst_distance <= epsilon + 1e-12

    def __repr__(self) -> str:
        return (
            f"ResilienceEvaluation(worst={self.worst_distance:.6g},"
            f" subsets={self.subsets_checked})"
        )


def evaluate_resilience(
    output: Sequence[float],
    honest_costs: Sequence[CostFunction],
    n: int,
    f: int,
) -> ResilienceEvaluation:
    """Definition-2 audit of ``output`` against the honest costs.

    ``honest_costs`` are the costs of the |H| ≥ n − f non-faulty agents in
    the execution under evaluation; every size-(n − f) subset of them is
    enumerated.  (When |H| = n − f there is exactly one subset.)
    """
    if not resilience_is_feasible(n, f):
        raise ValueError(f"f={f} >= n/2 with n={n}: resilience vacuous (Lemma 1)")
    h = len(honest_costs)
    if h < n - f:
        raise ValueError(
            f"need at least n - f = {n - f} honest costs, got {h}"
        )
    point = np.asarray(output, dtype=float)
    worst = 0.0
    worst_subset: Optional[Tuple[int, ...]] = None
    checked = 0
    for subset in combinations(range(h), n - f):
        target = subset_argmin(honest_costs, subset)
        gap = target.distance_to(point)
        checked += 1
        if gap > worst:
            worst = gap
            worst_subset = subset
    return ResilienceEvaluation(
        output=point,
        worst_distance=float(worst),
        worst_subset=worst_subset,
        subsets_checked=checked,
    )


def is_resilient_output(
    output: Sequence[float],
    honest_costs: Sequence[CostFunction],
    n: int,
    f: int,
    epsilon: float,
) -> bool:
    """Whether ``output`` certifies (f, ε)-resilience for this execution."""
    return evaluate_resilience(output, honest_costs, n, f).satisfies(epsilon)
