"""Numeric verification of the paper's assumptions and lemmas.

Assumption 2 (µ-Lipschitz gradients), Assumption 3 (γ-strong convexity of
every (n−f)-average), and Assumption 5 (λ gradient dissimilarity) are
*inputs* to Theorems 4–6; this module measures them for concrete cost
families — exactly (via Hessians, for quadratic-like costs) or by sampling.
It also checks the Lemma-3/Lemma-4 inequalities used inside the proofs,
which the property-based tests exercise directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..functions.base import CostFunction
from ..functions.sums import MeanCost
from ..optim.argmin import argmin_point

__all__ = [
    "AssumptionConstants",
    "smoothness_constant",
    "strong_convexity_constant",
    "gradient_dissimilarity",
    "measure_constants",
    "check_lemma3",
    "verify_lemma4",
]


def _sample_points(
    dim: int,
    rng: np.random.Generator,
    samples: int,
    radius: float,
    center: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Uniform sample cloud in a ball, for sampling-based estimation."""
    base = np.zeros(dim) if center is None else np.asarray(center, dtype=float)
    directions = rng.normal(size=(samples, dim))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    radii = radius * rng.random(size=(samples, 1)) ** (1.0 / dim)
    return base + directions / np.maximum(norms, 1e-300) * radii


def smoothness_constant(
    costs: Sequence[CostFunction],
    rng: Optional[np.random.Generator] = None,
    samples: int = 200,
    radius: float = 10.0,
) -> float:
    """Assumption-2 constant µ: max Lipschitz modulus across the costs.

    Costs exposing ``smoothness_constant()`` (quadratics, least squares) are
    measured exactly; others by sampling gradient difference quotients.
    """
    if not costs:
        raise ValueError("need at least one cost")
    rng = rng or np.random.default_rng(0)
    worst = 0.0
    for cost in costs:
        exact = getattr(cost, "smoothness_constant", None)
        if callable(exact):
            worst = max(worst, float(exact()))
            continue
        pts = _sample_points(cost.dim, rng, samples, radius)
        for a in range(0, samples - 1, 2):
            x, y = pts[a], pts[a + 1]
            gap = np.linalg.norm(x - y)
            if gap < 1e-12:
                continue
            ratio = np.linalg.norm(cost.gradient(x) - cost.gradient(y)) / gap
            worst = max(worst, float(ratio))
    return worst


def strong_convexity_constant(
    costs: Sequence[CostFunction],
    f: int,
    rng: Optional[np.random.Generator] = None,
    samples: int = 200,
    radius: float = 10.0,
) -> float:
    """Assumption-3 constant γ: worst strong convexity over (n−f)-averages.

    For every H with |H| = n − f the average cost Q_H must satisfy
    ``<∇Q_H(x) − ∇Q_H(y), x − y> >= γ ||x − y||^2``; the reported γ is the
    minimum over subsets.  Exact (smallest mean-Hessian eigenvalue) for
    costs with constant Hessians, sampled otherwise.
    """
    n = len(costs)
    if not 0 <= f < n:
        raise ValueError(f"need 0 <= f < n (got n={n}, f={f})")
    rng = rng or np.random.default_rng(0)
    gamma = float("inf")
    probe = np.zeros(costs[0].dim)
    for subset in combinations(range(n), n - f):
        mean = MeanCost([costs[i] for i in subset])
        hess = mean.hessian(probe)
        constant_hessian = hess is not None and all(
            type(costs[i]).hessian is not CostFunction.hessian for i in subset
        )
        if constant_hessian and _hessian_is_constant(mean, rng, radius):
            gamma = min(gamma, float(np.linalg.eigvalsh(hess).min()))
            continue
        pts = _sample_points(mean.dim, rng, samples, radius)
        for a in range(0, samples - 1, 2):
            x, y = pts[a], pts[a + 1]
            gap_sq = float((x - y) @ (x - y))
            if gap_sq < 1e-20:
                continue
            inner = float((mean.gradient(x) - mean.gradient(y)) @ (x - y))
            gamma = min(gamma, inner / gap_sq)
    return gamma


def _hessian_is_constant(
    cost: CostFunction, rng: np.random.Generator, radius: float
) -> bool:
    """Cheap probe: Hessian equal at two random points."""
    a = _sample_points(cost.dim, rng, 1, radius)[0]
    b = _sample_points(cost.dim, rng, 1, radius)[0]
    ha, hb = cost.hessian(a), cost.hessian(b)
    if ha is None or hb is None:
        return False
    return bool(np.allclose(ha, hb, atol=1e-10))


def gradient_dissimilarity(
    costs: Sequence[CostFunction],
    rng: Optional[np.random.Generator] = None,
    samples: int = 500,
    radius: float = 10.0,
    center: Optional[np.ndarray] = None,
    norm_floor: float = 1e-9,
) -> float:
    """Assumption-5 constant λ, estimated by sampling.

    λ is the smallest constant with
    ``||∇Q_i(x) − ∇Q_j(x)|| <= λ max(||∇Q_i(x)||, ||∇Q_j(x)||)`` over the
    probed region.  Points where both gradients are below ``norm_floor``
    are skipped (the bound is vacuous there).  λ ≤ 2 always holds by the
    triangle inequality.
    """
    if len(costs) < 2:
        return 0.0
    rng = rng or np.random.default_rng(0)
    pts = _sample_points(costs[0].dim, rng, samples, radius, center=center)
    lam = 0.0
    for x in pts:
        grads = [c.gradient(x) for c in costs]
        norms = [float(np.linalg.norm(g)) for g in grads]
        for i in range(len(costs)):
            for j in range(i + 1, len(costs)):
                scale = max(norms[i], norms[j])
                if scale < norm_floor:
                    continue
                gap = float(np.linalg.norm(grads[i] - grads[j]))
                lam = max(lam, gap / scale)
    return lam


@dataclass
class AssumptionConstants:
    """µ, γ, λ for a cost family, as fed to the Theorem-4/5/6 bounds."""

    mu: float
    gamma: float
    lam: float
    n: int
    f: int

    def __repr__(self) -> str:
        return (
            f"AssumptionConstants(mu={self.mu:.6g}, gamma={self.gamma:.6g},"
            f" lambda={self.lam:.6g}, n={self.n}, f={self.f})"
        )


def measure_constants(
    costs: Sequence[CostFunction],
    f: int,
    rng: Optional[np.random.Generator] = None,
    samples: int = 200,
    radius: float = 10.0,
) -> AssumptionConstants:
    """Measure (µ, γ, λ) for the cost family in one pass."""
    rng = rng or np.random.default_rng(0)
    mu = smoothness_constant(costs, rng=rng, samples=samples, radius=radius)
    gamma = strong_convexity_constant(
        costs, f, rng=rng, samples=samples, radius=radius
    )
    lam = gradient_dissimilarity(costs, rng=rng, samples=samples, radius=radius)
    return AssumptionConstants(mu=mu, gamma=gamma, lam=lam, n=len(costs), f=f)


def check_lemma3(vectors: np.ndarray, q: int, r: float) -> bool:
    """Lemma 3 premise→conclusion check on concrete vectors.

    Premise: every size-``q`` subset of the ``p`` rows sums to norm ≤ ``r``.
    Conclusion: every row has norm ≤ ``2r``.  Returns True when either the
    premise fails (vacuous) or the conclusion holds — i.e. the lemma is not
    falsified by this instance.
    """
    arr = np.atleast_2d(np.asarray(vectors, dtype=float))
    p = arr.shape[0]
    if not 1 <= q <= p / 2.0:
        raise ValueError(f"lemma requires 1 <= q <= p/2 (got p={p}, q={q})")
    for subset in combinations(range(p), q):
        if np.linalg.norm(arr[list(subset)].sum(axis=0)) > r + 1e-12:
            return True  # premise violated: nothing to check
    norms = np.linalg.norm(arr, axis=1)
    return bool(np.all(norms <= 2.0 * r + 1e-9))


def verify_lemma4(
    costs: Sequence[CostFunction],
    f: int,
    epsilon: float,
    mu: float,
    honest: Optional[Sequence[int]] = None,
) -> bool:
    """Lemma 4: gradient-norm bounds at the honest minimizer x_H.

    Checks ``||sum_{j in T} ∇Q_j(x_H)|| <= (n − 2f) µ ε`` for every T ⊂ H
    with |T| = f, and ``||∇Q_j(x_H)|| <= 2 (n − 2f) µ ε`` for every j in H.
    ``honest`` defaults to all agents (the fault-free reading with |H| = n − f
    after removing f of them is covered by passing the actual honest set).
    """
    n = len(costs)
    idx = list(range(n)) if honest is None else list(honest)
    if f <= 0:
        return True
    from ..functions.sums import SumCost

    x_h = argmin_point(SumCost([costs[i] for i in idx]))
    bound_sum = (n - 2 * f) * mu * epsilon
    bound_single = 2.0 * bound_sum
    grads = {i: costs[i].gradient(x_h) for i in idx}
    for subset in combinations(idx, f):
        total = np.sum([grads[i] for i in subset], axis=0)
        if np.linalg.norm(total) > bound_sum + 1e-7:
            return False
    return all(
        np.linalg.norm(grads[i]) <= bound_single + 1e-7 for i in idx
    )
