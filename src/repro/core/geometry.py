"""Geometric primitives used throughout the library.

Implements the two distances the paper builds its definitions on:

* the point-to-set Euclidean distance ``dist(x, X)`` of equation (3), and
* the Hausdorff distance ``dist(X, Y)`` between sets of equation (4),

together with explicit representations of the *argmin sets* that appear in
Definitions 2 and 3.  Argmin sets of convex problems are closed convex sets;
the representations below cover every case the library produces:

``SingletonSet``
    unique minimizer (strongly convex aggregate costs, full-rank least
    squares),
``FiniteSet``
    a finite collection of minimizers (used by tests and the necessity
    construction of Theorem 1),
``AffineSubspace``
    minimizers of rank-deficient least-squares problems,
``BallSet``
    a closed Euclidean ball (used to build synthetic redundancy instances).
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence, Union

import numpy as np

__all__ = [
    "PointSet",
    "SingletonSet",
    "FiniteSet",
    "AffineSubspace",
    "BallSet",
    "SegmentSet",
    "as_point",
    "distance_to_set",
    "hausdorff_distance",
    "pairwise_distances",
    "diameter",
]


ArrayLike = Union[Sequence[float], np.ndarray]


def as_point(x: ArrayLike) -> np.ndarray:
    """Return ``x`` as a 1-D float64 vector, validating the shape."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D point, got shape {arr.shape}")
    return arr


class PointSet(abc.ABC):
    """A non-empty closed subset of R^d (Assumption 1 of the paper)."""

    #: dimension of the ambient space
    dim: int

    @abc.abstractmethod
    def distance_to(self, x: ArrayLike) -> float:
        """Euclidean distance from point ``x`` to this set (equation (3))."""

    @abc.abstractmethod
    def project(self, x: ArrayLike) -> np.ndarray:
        """A point of the set attaining :meth:`distance_to` from ``x``."""

    @abc.abstractmethod
    def support_points(self) -> np.ndarray:
        """Representative points of the set, shape ``(m, dim)``.

        For bounded sets these witness the Hausdorff distance computation;
        unbounded sets (affine subspaces) return their anchor point and the
        Hausdorff computation treats them specially.
        """

    @abc.abstractmethod
    def contains(self, x: ArrayLike, tol: float = 1e-9) -> bool:
        """Whether ``x`` belongs to the set up to tolerance ``tol``."""

    def __contains__(self, x: object) -> bool:
        return self.contains(np.asarray(x, dtype=float))


class SingletonSet(PointSet):
    """The set ``{point}`` — the unique-minimizer case."""

    def __init__(self, point: ArrayLike):
        self.point = as_point(point)
        self.dim = self.point.shape[0]

    def distance_to(self, x: ArrayLike) -> float:
        return float(np.linalg.norm(as_point(x) - self.point))

    def project(self, x: ArrayLike) -> np.ndarray:
        return self.point.copy()

    def support_points(self) -> np.ndarray:
        return self.point.reshape(1, -1)

    def contains(self, x: ArrayLike, tol: float = 1e-9) -> bool:
        return self.distance_to(x) <= tol

    def __repr__(self) -> str:
        return f"SingletonSet({np.array2string(self.point, precision=4)})"


class FiniteSet(PointSet):
    """A finite set of points, stored as rows of an ``(m, d)`` array."""

    def __init__(self, points: ArrayLike):
        arr = np.atleast_2d(np.asarray(points, dtype=float))
        if arr.size == 0:
            raise ValueError("FiniteSet must be non-empty")
        self.points = arr
        self.dim = arr.shape[1]

    def distance_to(self, x: ArrayLike) -> float:
        diffs = self.points - as_point(x)
        return float(np.min(np.linalg.norm(diffs, axis=1)))

    def project(self, x: ArrayLike) -> np.ndarray:
        diffs = self.points - as_point(x)
        idx = int(np.argmin(np.linalg.norm(diffs, axis=1)))
        return self.points[idx].copy()

    def support_points(self) -> np.ndarray:
        return self.points.copy()

    def contains(self, x: ArrayLike, tol: float = 1e-9) -> bool:
        return self.distance_to(x) <= tol

    def __repr__(self) -> str:
        return f"FiniteSet({self.points.shape[0]} points, dim={self.dim})"


class AffineSubspace(PointSet):
    """The affine set ``{anchor + basis @ t : t in R^k}``.

    ``basis`` has orthonormal columns spanning the subspace direction.  A
    rank-deficient least-squares problem ``min ||b - A x||^2`` has argmin set
    of exactly this form with ``basis`` spanning the null space of ``A``.
    """

    def __init__(self, anchor: ArrayLike, basis: ArrayLike):
        self.anchor = as_point(anchor)
        mat = np.asarray(basis, dtype=float)
        if mat.ndim == 1:
            mat = mat.reshape(-1, 1)
        if mat.shape[0] != self.anchor.shape[0]:
            raise ValueError("basis rows must match anchor dimension")
        # Orthonormalize defensively so projection formulas are exact.
        if mat.shape[1] > 0:
            q, _ = np.linalg.qr(mat)
            # Drop numerically-null directions.
            norms = np.linalg.norm(q, axis=0)
            q = q[:, norms > 1e-12]
            self.basis = q
        else:
            self.basis = mat.reshape(self.anchor.shape[0], 0)
        self.dim = self.anchor.shape[0]

    @property
    def subspace_dim(self) -> int:
        """Dimension of the affine subspace (0 means a single point)."""
        return self.basis.shape[1]

    def distance_to(self, x: ArrayLike) -> float:
        return float(np.linalg.norm(as_point(x) - self.project(x)))

    def project(self, x: ArrayLike) -> np.ndarray:
        xv = as_point(x)
        if self.subspace_dim == 0:
            return self.anchor.copy()
        rel = xv - self.anchor
        return self.anchor + self.basis @ (self.basis.T @ rel)

    def support_points(self) -> np.ndarray:
        return self.anchor.reshape(1, -1)

    def contains(self, x: ArrayLike, tol: float = 1e-9) -> bool:
        return self.distance_to(x) <= tol

    def is_parallel_to(self, other: "AffineSubspace", tol: float = 1e-9) -> bool:
        """Whether the two subspaces share the same direction space."""
        if self.subspace_dim != other.subspace_dim:
            return False
        if self.subspace_dim == 0:
            return True
        proj = other.basis @ (other.basis.T @ self.basis)
        return bool(np.allclose(proj, self.basis, atol=tol))

    def __repr__(self) -> str:
        return (
            f"AffineSubspace(dim={self.dim}, subspace_dim={self.subspace_dim})"
        )


class BallSet(PointSet):
    """The closed Euclidean ball ``{x : ||x - center|| <= radius}``."""

    def __init__(self, center: ArrayLike, radius: float):
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.center = as_point(center)
        self.radius = float(radius)
        self.dim = self.center.shape[0]

    def distance_to(self, x: ArrayLike) -> float:
        return max(0.0, float(np.linalg.norm(as_point(x) - self.center)) - self.radius)

    def project(self, x: ArrayLike) -> np.ndarray:
        xv = as_point(x)
        gap = np.linalg.norm(xv - self.center)
        if gap <= self.radius:
            return xv.copy()
        return self.center + (xv - self.center) * (self.radius / gap)

    def support_points(self) -> np.ndarray:
        return self.center.reshape(1, -1)

    def contains(self, x: ArrayLike, tol: float = 1e-9) -> bool:
        return self.distance_to(x) <= tol

    def __repr__(self) -> str:
        return f"BallSet(radius={self.radius:.4g}, dim={self.dim})"


class SegmentSet(PointSet):
    """The closed line segment between two endpoints.

    Arises as the argmin set of genuinely non-differentiable aggregates —
    e.g. the Weber cost ``||x − a|| + ||x − b||`` of two agents minimizes on
    the whole segment [a, b] — giving the library real non-singleton argmin
    sets beyond affine subspaces (Definitions 2 and 3 are statements about
    such sets).
    """

    def __init__(self, start: ArrayLike, end: ArrayLike):
        self.start = as_point(start)
        self.end = as_point(end)
        if self.start.shape != self.end.shape:
            raise ValueError("segment endpoints must share a dimension")
        self.dim = self.start.shape[0]

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return float(np.linalg.norm(self.end - self.start))

    def project(self, x: ArrayLike) -> np.ndarray:
        xv = as_point(x)
        direction = self.end - self.start
        norm_sq = float(direction @ direction)
        if norm_sq == 0.0:
            return self.start.copy()
        t = float((xv - self.start) @ direction) / norm_sq
        t = min(1.0, max(0.0, t))
        return self.start + t * direction

    def distance_to(self, x: ArrayLike) -> float:
        return float(np.linalg.norm(as_point(x) - self.project(x)))

    def support_points(self) -> np.ndarray:
        return np.vstack([self.start, self.end])

    def contains(self, x: ArrayLike, tol: float = 1e-9) -> bool:
        return self.distance_to(x) <= tol

    def __repr__(self) -> str:
        return f"SegmentSet(length={self.length:.4g}, dim={self.dim})"


def distance_to_set(x: ArrayLike, target: Union[PointSet, ArrayLike]) -> float:
    """Equation (3): ``dist(x, X) = inf_{y in X} ||x - y||``.

    ``target`` may be a :class:`PointSet` or anything coercible to a point /
    array of points.
    """
    if isinstance(target, PointSet):
        return target.distance_to(x)
    arr = np.asarray(target, dtype=float)
    if arr.ndim == 1:
        return SingletonSet(arr).distance_to(x)
    return FiniteSet(arr).distance_to(x)


def _segment_sup_distance(segment: "SegmentSet", target: PointSet) -> float:
    """``sup_{x in segment} dist(x, target)`` — exact.

    For convex targets the distance is convex along the segment, so the sup
    sits at an endpoint.  For a ``FiniteSet`` target the distance is a min
    of convex functions: piecewise convex with breakpoints where two target
    points are equidistant; evaluating the endpoints plus every equidistance
    parameter in (0, 1) is exact.
    """
    endpoints = [segment.start, segment.end]
    if not isinstance(target, FiniteSet):
        return float(max(target.distance_to(p) for p in endpoints))
    direction = segment.end - segment.start
    candidates = [0.0, 1.0]
    pts = target.points
    for i in range(pts.shape[0]):
        for j in range(i + 1, pts.shape[0]):
            # ||s(t) - p_i||^2 = ||s(t) - p_j||^2 is linear in t.
            diff = pts[j] - pts[i]
            denom = 2.0 * float(direction @ diff)
            if abs(denom) < 1e-300:
                continue
            numer = float(pts[j] @ pts[j] - pts[i] @ pts[i]) - 2.0 * float(
                segment.start @ diff
            )
            t = numer / denom
            if 0.0 < t < 1.0:
                candidates.append(t)
    return float(
        max(
            target.distance_to(segment.start + t * direction)
            for t in candidates
        )
    )


def _directed_hausdorff(source: PointSet, target: PointSet) -> float:
    """``sup_{x in source} dist(x, target)`` for the supported set types."""
    if isinstance(source, (SingletonSet, FiniteSet)):
        pts = source.support_points()
        return float(max(target.distance_to(p) for p in pts))
    if isinstance(source, SegmentSet):
        return _segment_sup_distance(source, target)
    if isinstance(source, BallSet):
        # sup over the ball of the distance to ``target``: attained on the
        # boundary, bounded by center-distance + radius; exact for convex
        # targets (the ray away from the projection attains it); an upper
        # bound for FiniteSet targets.
        base = target.distance_to(source.center)
        return base + source.radius
    if isinstance(source, AffineSubspace):
        if source.subspace_dim == 0:
            return target.distance_to(source.anchor)
        if isinstance(target, AffineSubspace) and source.is_parallel_to(target):
            # Parallel affine subspaces: the directed distance is constant.
            return target.distance_to(source.anchor)
        # A genuinely unbounded source against a bounded (or non-parallel)
        # target has infinite directed distance.
        return float("inf")
    raise TypeError(f"unsupported set type {type(source).__name__}")


def hausdorff_distance(
    first: Union[PointSet, ArrayLike], second: Union[PointSet, ArrayLike]
) -> float:
    """Equation (4): Euclidean Hausdorff distance between two closed sets."""
    a = first if isinstance(first, PointSet) else _coerce(first)
    b = second if isinstance(second, PointSet) else _coerce(second)
    return max(_directed_hausdorff(a, b), _directed_hausdorff(b, a))


def _coerce(value: ArrayLike) -> PointSet:
    arr = np.asarray(value, dtype=float)
    if arr.ndim <= 1:
        return SingletonSet(arr)
    return FiniteSet(arr)


def pairwise_distances(points: ArrayLike) -> np.ndarray:
    """All-pairs Euclidean distances of row-stacked ``points``."""
    arr = np.atleast_2d(np.asarray(points, dtype=float))
    diff = arr[:, None, :] - arr[None, :, :]
    return np.linalg.norm(diff, axis=2)


def diameter(points: ArrayLike) -> float:
    """Largest pairwise distance among row-stacked ``points``."""
    dists = pairwise_distances(points)
    return float(dists.max()) if dists.size else 0.0
