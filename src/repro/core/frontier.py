"""Resilience frontier: how many faults can this system actually absorb?

Capacity planning across the paper's conditions: for each fault budget
f = 0, 1, ..., report which guarantees survive —

* Lemma 1 feasibility (f < n/2) — below this, nothing is possible;
* the p2p threshold (f < n/3) — needed to drop the trusted server (§1.4);
* Theorem 4 / Theorem 5 applicability for CGE (α > 0, plus f ≤ n/3 for
  Thm 5) and Theorem 6 for CWTM (λ < γ/(µ√d)), with the guaranteed radii
  D·ε at the family's measured redundancy.

The result is the table an operator reads to pick f: the largest fault
budget with a finite radius, and how fast the radius blows up near the
breakdown point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..functions.base import CostFunction
from .bounds import cge_bound, cge_bound_v2, cwtm_bound
from .redundancy import estimate_or_measure_epsilon
from .resilience import resilience_is_feasible
from .theory import measure_constants

__all__ = ["FrontierRow", "resilience_frontier", "render_frontier"]


@dataclass
class FrontierRow:
    """Guarantees surviving at one fault budget."""

    f: int
    feasible: bool                 # Lemma 1
    p2p_possible: bool             # f < n/3 (Section 1.4)
    epsilon: float                 # measured (2f, eps)-redundancy
    epsilon_is_exact: bool
    cge_radius: float              # best applicable CGE D*eps, inf if none
    cge_theorem: Optional[str]     # which theorem supplies the radius
    cwtm_radius: float             # Theorem-6 D'*eps, inf if not applicable


def resilience_frontier(
    costs: Sequence[CostFunction],
    max_f: Optional[int] = None,
    exhaustive_limit: int = 10,
    seed: int = 0,
) -> List[FrontierRow]:
    """Sweep f and report the surviving guarantees at each budget."""
    n = len(costs)
    if n < 2:
        raise ValueError("need at least two agents")
    d = costs[0].dim
    if max_f is None:
        max_f = (n - 1) // 2
    if max_f < 0:
        raise ValueError("max_f must be non-negative")
    rows: List[FrontierRow] = []
    for f in range(max_f + 1):
        feasible = resilience_is_feasible(n, f)
        if feasible and n - 2 * f >= 1:
            epsilon, exact = estimate_or_measure_epsilon(
                costs, f, exhaustive_limit=exhaustive_limit, seed=seed
            )
        else:
            epsilon, exact = float("nan"), False
        constants = measure_constants(
            costs, f if f < n else 0, rng=np.random.default_rng(seed)
        )
        b4 = cge_bound(n, f, constants.mu, constants.gamma)
        b5 = cge_bound_v2(n, f, constants.mu, constants.gamma)
        cge_radius = float("inf")
        cge_theorem: Optional[str] = None
        if feasible and np.isfinite(epsilon):
            candidates = [
                (b.radius(epsilon), b.theorem)
                for b in (b4, b5)
                if b.applicable
            ]
            if candidates:
                cge_radius, cge_theorem = min(candidates)
        b6 = cwtm_bound(n, d, constants.mu, constants.gamma, constants.lam)
        cwtm_radius = (
            b6.radius(epsilon)
            if (feasible and b6.applicable and np.isfinite(epsilon))
            else float("inf")
        )
        rows.append(
            FrontierRow(
                f=f,
                feasible=feasible,
                p2p_possible=(f == 0 or n > 3 * f),
                epsilon=epsilon,
                epsilon_is_exact=exact,
                cge_radius=cge_radius,
                cge_theorem=cge_theorem,
                cwtm_radius=cwtm_radius,
            )
        )
    return rows


def render_frontier(rows: Sequence[FrontierRow], n: int) -> str:
    """Text table of a resilience frontier."""
    from ..experiments.reporting import format_table

    return format_table(
        headers=[
            "f", "Lemma 1", "p2p (f<n/3)", "eps", "CGE radius",
            "via", "CWTM radius",
        ],
        rows=[
            [
                r.f,
                "ok" if r.feasible else "impossible",
                "yes" if r.p2p_possible else "no",
                r.epsilon,
                r.cge_radius,
                r.cge_theorem or "-",
                r.cwtm_radius,
            ]
            for r in rows
        ],
        title=f"Resilience frontier (n = {n})",
    )
