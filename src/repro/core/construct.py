"""Construct cost families with a *requested* redundancy parameter.

The experiments of Section 3 reason about "what if the costs satisfy
(2f, ε)-redundancy for this particular ε?"  This module solves the inverse
problem: given (n, f, ε*), build a concrete cost family whose measured
Definition-3 parameter is ε* (to a tolerance).

Two families are supported:

* ``"mean"`` — squared-distance costs (robust-mean reduction, §2.3): the
  argmin of any subset aggregate is the subset's target mean, so ε scales
  *exactly linearly* in the spread of the targets — one measurement
  calibrates the family;
* ``"regression"`` — single-row least-squares agents with noisy responses
  (the Appendix-J shape): ε is again positively homogeneous in the noise
  scale, calibrated the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..functions.base import CostFunction
from ..functions.least_squares import linear_regression_agents
from ..functions.quadratic import SquaredDistanceCost
from .redundancy import measure_redundancy

__all__ = ["ConstructedInstance", "make_instance_with_epsilon"]


@dataclass
class ConstructedInstance:
    """A cost family calibrated to a requested redundancy parameter."""

    costs: List[CostFunction]
    n: int
    f: int
    requested_epsilon: float
    achieved_epsilon: float
    scale: float           # the spread/noise scale that achieves it
    kind: str

    def __repr__(self) -> str:
        return (
            f"ConstructedInstance(kind={self.kind!r}, n={self.n}, f={self.f},"
            f" eps={self.achieved_epsilon:.6g})"
        )


def _mean_family(
    n: int, dim: int, scale: float, rng: np.random.Generator
) -> List[CostFunction]:
    directions = rng.normal(size=(n, dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    radii = rng.random(n)
    center = rng.normal(size=dim)
    targets = center + scale * radii[:, None] * directions
    return [SquaredDistanceCost(t) for t in targets]


def _regression_family(
    n: int, dim: int, scale: float, rng: np.random.Generator
) -> List[CostFunction]:
    if dim != 2:
        raise ValueError("the regression family is two-dimensional")
    angles = np.pi * np.arange(n) / n
    design = np.column_stack([np.cos(angles), np.sin(angles)])
    x_star = np.array([1.0, -0.5])
    noise = scale * rng.normal(size=n)
    return linear_regression_agents(design, design @ x_star + noise)


_FAMILIES = {"mean": _mean_family, "regression": _regression_family}


def make_instance_with_epsilon(
    n: int,
    f: int,
    epsilon: float,
    kind: str = "mean",
    dim: int = 2,
    seed: int = 0,
    tolerance: float = 1e-6,
) -> ConstructedInstance:
    """Build an n-agent family whose measured Definition-3 ε equals ``epsilon``.

    Both supported families are positively homogeneous in their scale
    parameter (scaling every target offset / every noise value by c scales
    every subset argmin gap — hence ε — by exactly c), so a single
    measurement at scale 1 calibrates the construction:
    ``scale = epsilon / eps(1)``.  The achieved ε is re-measured and must
    match to ``tolerance``.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if kind not in _FAMILIES:
        raise ValueError(f"unknown kind {kind!r}; known: {sorted(_FAMILIES)}")
    if n - 2 * f < 1:
        raise ValueError(f"need n - 2f >= 1 (got n={n}, f={f})")
    build = _FAMILIES[kind]

    if epsilon == 0.0 or f == 0:
        # Zero spread/noise gives identical (or noise-free) costs: eps = 0.
        costs = build(n, dim, 0.0, np.random.default_rng(seed))
        achieved = measure_redundancy(costs, f).epsilon if f > 0 else 0.0
        return ConstructedInstance(
            costs=costs,
            n=n,
            f=f,
            requested_epsilon=epsilon,
            achieved_epsilon=achieved,
            scale=0.0,
            kind=kind,
        )

    unit_costs = build(n, dim, 1.0, np.random.default_rng(seed))
    unit_epsilon = measure_redundancy(unit_costs, f).epsilon
    if unit_epsilon <= 0:
        raise RuntimeError(
            "degenerate draw: unit-scale instance has zero redundancy gap"
        )
    scale = epsilon / unit_epsilon
    costs = build(n, dim, scale, np.random.default_rng(seed))
    achieved = measure_redundancy(costs, f).epsilon
    if abs(achieved - epsilon) > max(tolerance, 1e-9 * epsilon * 10):
        raise RuntimeError(
            f"calibration failed: requested {epsilon}, achieved {achieved}"
        )
    return ConstructedInstance(
        costs=costs,
        n=n,
        f=f,
        requested_epsilon=epsilon,
        achieved_epsilon=achieved,
        scale=scale,
        kind=kind,
    )
