"""Empirical diagnostics for the Theorem-3 convergence condition.

Theorem 3 guarantees ``lim ||x_t − x*|| <= D*`` for the update rule (21)
whenever the filtered aggregate satisfies the inner-product condition (22):

    phi_t = <x_t − x*, GradFilter(g_1..g_n)>  >=  xi > 0
    whenever ||x_t − x*|| >= D*.

Given an :class:`~repro.distsys.trace.ExecutionTrace` and a reference point
x*, this module computes the φ_t series and fits the smallest empirical
``D*`` for which the condition held throughout the run, together with the
corresponding ``ξ`` — turning the paper's proof device into an observable
diagnostic (the Theorem-4/5/6 proofs are exactly derivations of (D*, ξ)
pairs for CGE and CWTM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..distsys.trace import ExecutionTrace

__all__ = [
    "ConvergenceDiagnostics",
    "phi_series",
    "check_condition",
    "fit_condition",
]


def phi_series(trace: ExecutionTrace, x_star: Sequence[float]) -> np.ndarray:
    """The series ``phi_t = <x_t − x*, aggregate_t>`` along a trace."""
    target = np.asarray(x_star, dtype=float)
    return np.array(
        [
            float((record.estimate - target) @ record.aggregate)
            for record in trace
        ]
    )


def check_condition(
    trace: ExecutionTrace,
    x_star: Sequence[float],
    d_star: float,
    xi: float,
) -> bool:
    """Whether condition (22) held at every recorded iteration.

    True iff ``phi_t >= xi`` for all t with ``||x_t − x*|| >= d_star``.
    """
    if d_star < 0 or xi <= 0:
        raise ValueError("need d_star >= 0 and xi > 0")
    target = np.asarray(x_star, dtype=float)
    phis = phi_series(trace, target)
    dists = np.array(
        [float(np.linalg.norm(r.estimate - target)) for r in trace]
    )
    outside = dists >= d_star
    return bool(np.all(phis[outside] >= xi)) if outside.any() else True


@dataclass
class ConvergenceDiagnostics:
    """Empirical (D*, ξ) fit for one execution."""

    d_star: float
    xi: float
    n_outside: int            # iterations with ||x_t − x*|| >= d_star
    min_phi_outside: float    # == xi when n_outside > 0
    final_distance: float
    condition_held: bool

    def __repr__(self) -> str:
        return (
            f"ConvergenceDiagnostics(d_star={self.d_star:.4g},"
            f" xi={self.xi:.4g}, outside={self.n_outside},"
            f" held={self.condition_held})"
        )


def fit_condition(
    trace: ExecutionTrace,
    x_star: Sequence[float],
    quantile_grid: int = 50,
) -> ConvergenceDiagnostics:
    """The smallest empirical D* with positive φ_t outside its ball.

    Scans candidate radii (the observed distance quantiles) from small to
    large and returns the first D* such that every recorded iterate at
    distance ≥ D* had φ_t > 0; ξ is the minimum φ over those iterates.
    Theorem 3 then predicts ``lim ||x_t − x*|| <= D*`` for runs continued
    with Robbins–Monro steps.
    """
    target = np.asarray(x_star, dtype=float)
    phis = phi_series(trace, target)
    dists = np.array(
        [float(np.linalg.norm(r.estimate - target)) for r in trace]
    )
    final = float(np.linalg.norm(trace.final_estimate - target))
    candidates = np.unique(
        np.quantile(dists, np.linspace(0.0, 1.0, max(2, quantile_grid)))
    )
    for d_star in candidates:
        outside = dists >= d_star
        if not outside.any():
            continue
        min_phi = float(phis[outside].min())
        if min_phi > 0.0:
            return ConvergenceDiagnostics(
                d_star=float(d_star),
                xi=min_phi,
                n_outside=int(outside.sum()),
                min_phi_outside=min_phi,
                final_distance=final,
                condition_held=True,
            )
    # No radius worked: the condition failed even at the largest distances.
    return ConvergenceDiagnostics(
        d_star=float("inf"),
        xi=0.0,
        n_outside=0,
        min_phi_outside=float(phis.min()) if len(phis) else 0.0,
        final_distance=final,
        condition_held=False,
    )
