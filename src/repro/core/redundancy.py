"""Redundancy properties of agents' cost functions (Definitions 1 and 3).

``(2f, ε)-redundancy`` (Definition 3): for every S with |S| = n − f and every
Ŝ ⊆ S with |Ŝ| = n − 2f, the Hausdorff distance between the argmin sets of
the two aggregates is at most ε.  ``2f-redundancy`` (Definition 1) is the
ε = 0 case.

``measure_redundancy`` computes the *smallest* ε for which the property
holds — exactly the ε = 0.0890 computation of Appendix J.2 (which enumerates
|Ŝ| ≥ n − 2f; both conventions are offered, since for |Ŝ| strictly between
n − 2f and n − f the Definition-3 statement follows from the boundary case
only up to a constant, and the paper's own numeric recipe uses ≥).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..functions.base import CostFunction
from ..functions.sums import SumCost
from ..optim.argmin import resolve_argmin_set
from .geometry import PointSet, hausdorff_distance

__all__ = [
    "RedundancyReport",
    "measure_redundancy",
    "has_redundancy",
    "has_exact_redundancy",
    "honest_subset_epsilon",
    "estimate_or_measure_epsilon",
    "subset_argmin",
]


def subset_argmin(
    costs: Sequence[CostFunction], subset: Sequence[int]
) -> PointSet:
    """Argmin set of ``sum_{i in subset} Q_i`` as an explicit point set."""
    if not subset:
        raise ValueError("subset must be non-empty")
    aggregate = SumCost([costs[i] for i in subset])
    return resolve_argmin_set(aggregate)


@dataclass
class RedundancyReport:
    """Outcome of a redundancy measurement.

    ``epsilon`` is the smallest value for which (2f, ε)-redundancy holds;
    ``witness`` is the pair of subsets (S, Ŝ) attaining it.
    """

    n: int
    f: int
    epsilon: float
    witness: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]
    pairs_checked: int

    def holds_for(self, epsilon: float) -> bool:
        """Whether (2f, ``epsilon``)-redundancy holds."""
        return self.epsilon <= epsilon + 1e-12

    def __repr__(self) -> str:
        return (
            f"RedundancyReport(n={self.n}, f={self.f},"
            f" epsilon={self.epsilon:.6g}, pairs={self.pairs_checked})"
        )


def measure_redundancy(
    costs: Sequence[CostFunction],
    f: int,
    inner_sizes: str = "paper",
) -> RedundancyReport:
    """Smallest ε such that the costs satisfy (2f, ε)-redundancy.

    ``inner_sizes`` selects which Ŝ cardinalities are enumerated:

    * ``"exact"`` — |Ŝ| = n − 2f only (the letter of Definition 3);
    * ``"paper"`` — n − 2f ≤ |Ŝ| < n − f (the Appendix-J.2 recipe, which is
      the convention used to report ε = 0.0890).

    Exhaustive enumeration: cost grows combinatorially in n, matching the
    paper's remark that the Theorem-2 machinery "is not a very practical
    algorithm".
    """
    n = len(costs)
    if f < 0:
        raise ValueError("f must be non-negative")
    if n - 2 * f < 1:
        raise ValueError(
            f"(2f, eps)-redundancy needs n - 2f >= 1 (got n={n}, f={f})"
        )
    if inner_sizes not in ("exact", "paper"):
        raise ValueError("inner_sizes must be 'exact' or 'paper'")
    if f == 0:
        return RedundancyReport(n=n, f=0, epsilon=0.0, witness=None, pairs_checked=0)

    worst = 0.0
    witness: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
    pairs = 0
    argmin_cache: dict = {}

    def cached_argmin(subset: Tuple[int, ...]) -> PointSet:
        if subset not in argmin_cache:
            argmin_cache[subset] = subset_argmin(costs, subset)
        return argmin_cache[subset]

    if inner_sizes == "exact":
        sizes = [n - 2 * f]
    else:
        sizes = list(range(n - 2 * f, n - f))

    for outer in combinations(range(n), n - f):
        outer_set = cached_argmin(outer)
        for size in sizes:
            for inner in combinations(outer, size):
                inner_set = cached_argmin(inner)
                gap = hausdorff_distance(outer_set, inner_set)
                pairs += 1
                if gap > worst:
                    worst = gap
                    witness = (outer, inner)
    return RedundancyReport(
        n=n, f=f, epsilon=float(worst), witness=witness, pairs_checked=pairs
    )


def has_redundancy(
    costs: Sequence[CostFunction],
    f: int,
    epsilon: float,
    inner_sizes: str = "paper",
) -> bool:
    """Whether the costs satisfy (2f, ``epsilon``)-redundancy."""
    report = measure_redundancy(costs, f, inner_sizes=inner_sizes)
    return report.holds_for(epsilon)


def estimate_or_measure_epsilon(
    costs: Sequence[CostFunction],
    f: int,
    exhaustive_limit: int = 10,
    samples: int = 300,
    seed: int = 0,
) -> Tuple[float, bool]:
    """ε by exhaustive enumeration when affordable, else a sampled bound.

    Returns ``(epsilon, is_exact)``: exact Definition-3 measurement for
    systems of at most ``exhaustive_limit`` agents, otherwise the
    Monte-Carlo lower bound of :mod:`repro.core.sampling`.
    """
    import numpy as np

    if len(costs) <= exhaustive_limit:
        return measure_redundancy(costs, f).epsilon, True
    from .sampling import estimate_redundancy

    sampled = estimate_redundancy(
        costs, f, samples=samples, rng=np.random.default_rng(seed)
    )
    return sampled.epsilon_lower_bound, False


def honest_subset_epsilon(honest_costs: Sequence[CostFunction], f: int) -> float:
    """The redundancy slack the Theorem-2 proof actually consumes.

    Given the costs of an honest set H with |H| = n − f, the proof of
    Theorem 2 (equations (13)–(19)) only invokes Definition 3 on pairs
    (S = H, Ŝ ⊂ H with |Ŝ| = n − 2f).  This returns
    ``max over Ŝ of hausdorff(argmin_H, argmin_Ŝ)`` — a lower bound on the
    full Definition-3 ε and the tightest empirical input to the 2ε
    guarantee when only the honest costs are known.
    """
    h = len(honest_costs)
    if f < 0:
        raise ValueError("f must be non-negative")
    if f == 0:
        return 0.0
    if h - f < 1:
        raise ValueError(
            f"honest set of {h} cannot lose f={f} agents and stay non-empty"
        )
    full = tuple(range(h))
    full_set = subset_argmin(honest_costs, full)
    worst = 0.0
    for inner in combinations(full, h - f):
        inner_set = subset_argmin(honest_costs, inner)
        worst = max(worst, hausdorff_distance(full_set, inner_set))
    return float(worst)


def has_exact_redundancy(
    costs: Sequence[CostFunction], f: int, tolerance: float = 1e-9
) -> bool:
    """Whether the costs satisfy 2f-redundancy (Definition 1) up to ``tolerance``."""
    report = measure_redundancy(costs, f, inner_sizes="exact")
    return report.epsilon <= tolerance
