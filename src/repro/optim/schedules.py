"""Step-size schedules for the DGD update rule (21).

Theorem 3 requires diminishing step sizes with ``sum eta_t = inf`` and
``sum eta_t^2 < inf``.  :class:`HarmonicSchedule` — the paper's
``eta_t = 1.5 / (t + 1)`` — satisfies both; each schedule reports whether it
meets the Robbins–Monro conditions so experiment code can assert the
hypothesis before quoting the theorem.
"""

from __future__ import annotations

import abc

__all__ = [
    "StepSchedule",
    "ConstantSchedule",
    "HarmonicSchedule",
    "PolynomialSchedule",
    "paper_schedule",
]


class StepSchedule(abc.ABC):
    """Maps iteration index ``t`` (0-based) to a positive step size."""

    @abc.abstractmethod
    def step_size(self, t: int) -> float:
        """Step size ``eta_t`` for iteration ``t >= 0``."""

    @property
    @abc.abstractmethod
    def satisfies_robbins_monro(self) -> bool:
        """True when ``sum eta_t`` diverges and ``sum eta_t^2`` converges."""

    def __call__(self, t: int) -> float:
        if t < 0:
            raise ValueError("iteration index must be non-negative")
        eta = self.step_size(t)
        if eta <= 0:
            raise ValueError(f"schedule produced non-positive step {eta}")
        return eta


class ConstantSchedule(StepSchedule):
    """``eta_t = eta`` — used by the Appendix-K learning experiments."""

    def __init__(self, eta: float):
        if eta <= 0:
            raise ValueError("step size must be positive")
        self.eta = float(eta)

    def step_size(self, t: int) -> float:
        return self.eta

    @property
    def satisfies_robbins_monro(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"ConstantSchedule({self.eta:g})"


class HarmonicSchedule(StepSchedule):
    """``eta_t = scale / (t + offset)`` — the paper's regression schedule.

    With ``scale = 1.5`` and ``offset = 1`` this is exactly Appendix J's
    ``eta_t = 1.5 / (t + 1)``; the squared series sums to
    ``scale^2 * pi^2 / 6`` (the paper quotes ``3 pi^2 / 8`` for scale 1.5).
    """

    def __init__(self, scale: float = 1.5, offset: float = 1.0):
        if scale <= 0 or offset <= 0:
            raise ValueError("scale and offset must be positive")
        self.scale = float(scale)
        self.offset = float(offset)

    def step_size(self, t: int) -> float:
        return self.scale / (t + self.offset)

    @property
    def satisfies_robbins_monro(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"HarmonicSchedule(scale={self.scale:g}, offset={self.offset:g})"


class PolynomialSchedule(StepSchedule):
    """``eta_t = scale / (t + 1)^power``.

    Robbins–Monro holds iff ``1/2 < power <= 1``.
    """

    def __init__(self, scale: float = 1.0, power: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if power < 0:
            raise ValueError("power must be non-negative")
        self.scale = float(scale)
        self.power = float(power)

    def step_size(self, t: int) -> float:
        return self.scale / (t + 1.0) ** self.power

    @property
    def satisfies_robbins_monro(self) -> bool:
        return 0.5 < self.power <= 1.0

    def __repr__(self) -> str:
        return f"PolynomialSchedule(scale={self.scale:g}, power={self.power:g})"


def paper_schedule() -> HarmonicSchedule:
    """The exact schedule of Appendix J: ``eta_t = 1.5 / (t + 1)``."""
    return HarmonicSchedule(scale=1.5, offset=1.0)
