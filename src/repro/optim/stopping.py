"""Stopping criteria for iterative solvers.

The paper runs fixed iteration budgets (500 / 1500 steps) and also observes
that "estimates practically converge after 400 iterations"; these criteria
let the harness detect that plateau programmatically.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = [
    "StoppingRule",
    "MaxIterations",
    "GradientNorm",
    "IterateMovement",
    "CombinedRule",
]


class StoppingRule(abc.ABC):
    """Decides whether the iteration should stop after an update."""

    @abc.abstractmethod
    def should_stop(
        self,
        t: int,
        x: np.ndarray,
        previous: Optional[np.ndarray],
        gradient: Optional[np.ndarray],
    ) -> bool:
        """True when iteration ``t`` (just completed) should be the last."""

    def reset(self) -> None:
        """Clear internal state before a fresh run (no-op by default)."""


class MaxIterations(StoppingRule):
    """Stop after a fixed number of iterations."""

    def __init__(self, limit: int):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = int(limit)

    def should_stop(self, t, x, previous, gradient) -> bool:
        return t + 1 >= self.limit


class GradientNorm(StoppingRule):
    """Stop when the (aggregate) gradient norm falls below a threshold."""

    def __init__(self, threshold: float):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)

    def should_stop(self, t, x, previous, gradient) -> bool:
        if gradient is None:
            return False
        return float(np.linalg.norm(gradient)) < self.threshold


class IterateMovement(StoppingRule):
    """Stop when consecutive iterates stay within ``threshold`` for a while."""

    def __init__(self, threshold: float, patience: int = 1):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.threshold = float(threshold)
        self.patience = int(patience)
        self._streak = 0

    def should_stop(self, t, x, previous, gradient) -> bool:
        if previous is None:
            self._streak = 0
            return False
        moved = float(np.linalg.norm(np.asarray(x) - np.asarray(previous)))
        if moved < self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.patience

    def reset(self) -> None:
        self._streak = 0


class CombinedRule(StoppingRule):
    """Stop when *any* of the component rules fires."""

    def __init__(self, *rules: StoppingRule):
        if not rules:
            raise ValueError("CombinedRule needs at least one rule")
        self.rules = list(rules)

    def should_stop(self, t, x, previous, gradient) -> bool:
        return any(r.should_stop(t, x, previous, gradient) for r in self.rules)

    def reset(self) -> None:
        for rule in self.rules:
            rule.reset()
