"""Optimization substrate: projections, schedules, solvers, stopping rules."""

from .argmin import argmin_point, resolve_argmin_set
from .gradient_descent import (
    GradientDescentResult,
    gradient_descent,
    solve_argmin,
)
from .projections import BallConstraint, BoxSet, ConvexSet, UnconstrainedSet
from .schedules import (
    ConstantSchedule,
    HarmonicSchedule,
    PolynomialSchedule,
    StepSchedule,
    paper_schedule,
)
from .stopping import (
    CombinedRule,
    GradientNorm,
    IterateMovement,
    MaxIterations,
    StoppingRule,
)

__all__ = [
    "ConvexSet",
    "BoxSet",
    "BallConstraint",
    "UnconstrainedSet",
    "StepSchedule",
    "ConstantSchedule",
    "HarmonicSchedule",
    "PolynomialSchedule",
    "paper_schedule",
    "StoppingRule",
    "MaxIterations",
    "GradientNorm",
    "IterateMovement",
    "CombinedRule",
    "GradientDescentResult",
    "gradient_descent",
    "solve_argmin",
    "resolve_argmin_set",
    "argmin_point",
]
