"""Argmin-set resolution for arbitrary cost functions.

Definitions 2 and 3 are statements about *sets* of minimizers.  This module
resolves a cost to a :class:`~repro.core.geometry.PointSet`:

* closed forms pass through untouched (quadratics, least squares),
* otherwise multi-start numeric minimization produces either a singleton
  (all starts agree) or a finite witness set (several distinct minimizers).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.geometry import FiniteSet, PointSet, SingletonSet
from ..functions.base import CostFunction
from .gradient_descent import solve_argmin

__all__ = ["resolve_argmin_set", "argmin_point"]


def resolve_argmin_set(
    cost: CostFunction,
    starts: Optional[Sequence[Sequence[float]]] = None,
    tolerance: float = 1e-8,
    merge_radius: float = 1e-6,
) -> PointSet:
    """The argmin set of ``cost`` as an explicit :class:`PointSet`.

    ``starts`` seeds the multi-start numeric search for costs with no closed
    form; distinct limits further apart than ``merge_radius`` are all kept,
    yielding a :class:`FiniteSet` witness of non-uniqueness.
    """
    closed = cost.argmin_set()
    if closed is not None:
        return closed
    if starts is None:
        starts = [np.zeros(cost.dim)]
    solutions = []
    for start in starts:
        x = solve_argmin(cost, x0=start, tolerance=tolerance)
        if not any(np.linalg.norm(x - s) <= merge_radius for s in solutions):
            solutions.append(x)
    if len(solutions) == 1:
        return SingletonSet(solutions[0])
    # Keep only global minimizers among the collected limits.
    values = np.array([cost.value(s) for s in solutions])
    best = values.min()
    keep = [s for s, v in zip(solutions, values) if v <= best + tolerance]
    if len(keep) == 1:
        return SingletonSet(keep[0])
    return FiniteSet(np.vstack(keep))


def argmin_point(
    cost: CostFunction, start: Optional[Sequence[float]] = None
) -> np.ndarray:
    """A single minimizer of ``cost`` (any element of the argmin set)."""
    return solve_argmin(cost, x0=start)
