"""Centralized projected gradient descent.

Used as a *solver substrate*: the redundancy computation (Definition 3) and
the Theorem-2 algorithm both need argmins of aggregate costs, and when no
closed form exists they fall back to this solver.  It also serves as the
fault-free single-machine baseline in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..functions.base import CostFunction
from .projections import ConvexSet, UnconstrainedSet
from .schedules import ConstantSchedule, StepSchedule
from .stopping import GradientNorm, MaxIterations, StoppingRule

__all__ = ["GradientDescentResult", "gradient_descent", "solve_argmin"]


@dataclass
class GradientDescentResult:
    """Outcome of a gradient-descent run."""

    x: np.ndarray
    iterations: int
    converged: bool
    final_gradient_norm: float
    history: List[np.ndarray] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"GradientDescentResult(iterations={self.iterations},"
            f" converged={self.converged},"
            f" grad_norm={self.final_gradient_norm:.3e})"
        )


def gradient_descent(
    cost: CostFunction,
    x0: Sequence[float],
    schedule: Optional[StepSchedule] = None,
    constraint: Optional[ConvexSet] = None,
    stopping: Optional[StoppingRule] = None,
    max_iterations: int = 10_000,
    record_history: bool = False,
) -> GradientDescentResult:
    """Minimize ``cost`` by projected gradient descent from ``x0``.

    Without an explicit schedule, a constant step of ``1/L`` is used when the
    cost exposes a smoothness constant, else ``1e-2``.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.shape != (cost.dim,):
        raise ValueError(f"x0 must have shape ({cost.dim},)")
    if schedule is None:
        lip = getattr(cost, "smoothness_constant", None)
        eta = 1.0 / lip() if callable(lip) and lip() > 0 else 1e-2
        schedule = ConstantSchedule(eta)
    constraint = constraint or UnconstrainedSet(cost.dim)
    stopping = stopping or GradientNorm(1e-10)
    limit_rule = MaxIterations(max_iterations)
    stopping.reset()

    history: List[np.ndarray] = [x.copy()] if record_history else []
    previous: Optional[np.ndarray] = None
    grad = cost.gradient(x)
    converged = False
    t = 0
    for t in range(max_iterations):
        grad = cost.gradient(x)
        candidate = x - schedule(t) * grad
        new_x = constraint.project(candidate)
        previous, x = x, new_x
        if record_history:
            history.append(x.copy())
        if stopping.should_stop(t, x, previous, grad):
            converged = True
            break
        if limit_rule.should_stop(t, x, previous, grad):
            break

    final_norm = float(np.linalg.norm(cost.gradient(x)))
    return GradientDescentResult(
        x=x,
        iterations=t + 1,
        converged=converged,
        final_gradient_norm=final_norm,
        history=history,
    )


def solve_argmin(
    cost: CostFunction,
    x0: Optional[Sequence[float]] = None,
    tolerance: float = 1e-9,
    max_iterations: int = 50_000,
) -> np.ndarray:
    """A minimizer of ``cost``: closed form when available, else numeric.

    Raises ``RuntimeError`` when the numeric fallback fails to reach the
    requested gradient tolerance — silent inaccuracy would corrupt the
    redundancy measurements built on top of this solver.
    """
    closed = cost.argmin_set()
    if closed is not None:
        anchor = closed.support_points()[0]
        return np.asarray(anchor, dtype=float)
    start = np.zeros(cost.dim) if x0 is None else np.asarray(x0, dtype=float)
    result = gradient_descent(
        cost,
        start,
        stopping=GradientNorm(tolerance),
        max_iterations=max_iterations,
    )
    if not result.converged and result.final_gradient_norm > tolerance * 100:
        raise RuntimeError(
            "argmin solver did not converge: gradient norm "
            f"{result.final_gradient_norm:.3e} after {result.iterations} iterations"
        )
    return result.x
