"""Projections onto compact convex sets.

The DGD update (21) constrains iterates to a compact convex set ``W`` via the
Euclidean projection of equation (20); the paper's experiments use the
hypercube ``[-1000, 1000]^2``.  Projections here are exact, idempotent and
non-expansive — properties the convergence proof of Theorem 3 relies on and
the test suite verifies.
"""

from __future__ import annotations

import abc
from typing import Sequence, Union

import numpy as np

__all__ = ["ConvexSet", "BoxSet", "BallConstraint", "UnconstrainedSet"]


class ConvexSet(abc.ABC):
    """A closed convex subset of R^d with an exact Euclidean projection."""

    @abc.abstractmethod
    def project(self, x: np.ndarray) -> np.ndarray:
        """``[x]_W`` of equation (20): the closest point of the set."""

    def project_batch(self, points: np.ndarray) -> np.ndarray:
        """Row-wise projection of an ``(S, d)`` batch of points.

        The base implementation loops; sets with closed-form projections
        override it so the batch simulator projects all trials at once.
        """
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"expected an (S, d) batch, got shape {arr.shape}")
        return np.stack([self.project(p) for p in arr])

    @abc.abstractmethod
    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Membership test up to tolerance."""

    @abc.abstractmethod
    def diameter_bound(self) -> float:
        """An upper bound on ``max_{x,y in W} ||x - y||`` (inf if unbounded)."""


class BoxSet(ConvexSet):
    """Axis-aligned box ``prod_k [low_k, high_k]``.

    ``BoxSet.symmetric(1000.0, dim=2)`` reproduces the paper's ``W``.
    """

    def __init__(self, lower: Sequence[float], upper: Sequence[float]):
        low = np.asarray(lower, dtype=float)
        high = np.asarray(upper, dtype=float)
        if low.shape != high.shape or low.ndim != 1:
            raise ValueError("lower/upper must be 1-D arrays of equal shape")
        if np.any(low > high):
            raise ValueError("lower bound exceeds upper bound")
        self.lower = low
        self.upper = high
        self.dim = low.shape[0]

    @classmethod
    def symmetric(cls, half_width: float, dim: int) -> "BoxSet":
        """The hypercube ``[-half_width, half_width]^dim``."""
        if half_width <= 0:
            raise ValueError("half_width must be positive")
        bound = np.full(dim, float(half_width))
        return cls(-bound, bound)

    def project(self, x: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(x, dtype=float), self.lower, self.upper)

    def project_batch(self, points: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(points, dtype=float), self.lower, self.upper)

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        xv = np.asarray(x, dtype=float)
        return bool(
            np.all(xv >= self.lower - tol) and np.all(xv <= self.upper + tol)
        )

    def diameter_bound(self) -> float:
        return float(np.linalg.norm(self.upper - self.lower))

    def __repr__(self) -> str:
        return f"BoxSet(dim={self.dim})"


class BallConstraint(ConvexSet):
    """Euclidean ball ``{x : ||x - center|| <= radius}``."""

    def __init__(self, center: Sequence[float], radius: float):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.center = np.asarray(center, dtype=float)
        self.radius = float(radius)
        self.dim = self.center.shape[0]

    def project(self, x: np.ndarray) -> np.ndarray:
        xv = np.asarray(x, dtype=float)
        offset = xv - self.center
        norm = float(np.linalg.norm(offset))
        if norm <= self.radius:
            return xv.copy()
        return self.center + offset * (self.radius / norm)

    def project_batch(self, points: np.ndarray) -> np.ndarray:
        arr = np.asarray(points, dtype=float)
        offsets = arr - self.center
        norms = np.linalg.norm(offsets, axis=1)
        scales = np.where(
            norms <= self.radius, 1.0, self.radius / np.maximum(norms, 1e-300)
        )
        return self.center + offsets * scales[:, None]

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        xv = np.asarray(x, dtype=float)
        return float(np.linalg.norm(xv - self.center)) <= self.radius + tol

    def diameter_bound(self) -> float:
        return 2.0 * self.radius

    def __repr__(self) -> str:
        return f"BallConstraint(radius={self.radius:g}, dim={self.dim})"


class UnconstrainedSet(ConvexSet):
    """All of R^d — the identity projection.

    Strictly outside the paper's Theorem-3 hypotheses (W must be compact),
    provided for fault-free baselines and quick experiments.
    """

    def __init__(self, dim: int):
        self.dim = int(dim)

    def project(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float).copy()

    def project_batch(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=float).copy()

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        return True

    def diameter_bound(self) -> float:
        return float("inf")

    def __repr__(self) -> str:
        return f"UnconstrainedSet(dim={self.dim})"
