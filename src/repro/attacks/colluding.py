"""Colluding omniscient attacks from the Byzantine-ML literature.

These go beyond the paper's two behaviours and stress-test the filters in
the ablation benchmarks:

* ALIE — "A Little Is Enough" (Baruch et al., 2019): all faulty agents send
  the honest mean shifted by ``z`` honest standard deviations, staying inside
  the honest spread so distance-based filters struggle.
* IPM — inner-product manipulation (Xie et al., 2020): faulty agents send a
  negatively scaled honest mean, flipping the descent direction while keeping
  a plausible magnitude.
* Mimic: all faulty agents replay one honest agent's gradient, starving the
  aggregate of diversity.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import AttackContext, BatchAttackContext, ByzantineAttack

__all__ = ["ALIEAttack", "InnerProductManipulationAttack", "MimicAttack"]


def _tile_faulty(poisoned: np.ndarray, context: BatchAttackContext) -> np.ndarray:
    """Broadcast one ``(S, d)`` poisoned vector to all faulty columns."""
    return np.broadcast_to(
        poisoned[:, None, :],
        (context.trials, len(context.faulty_ids), context.dim),
    ).copy()


class ALIEAttack(ByzantineAttack):
    """Honest mean minus ``z_max`` honest standard deviations, per coordinate."""

    name = "alie"
    requires_omniscience = True

    def __init__(self, z_max: float = 1.0):
        if z_max <= 0:
            raise ValueError("z_max must be positive")
        self.z_max = float(z_max)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        honest = context.honest_stack()
        mean = honest.mean(axis=0)
        std = honest.std(axis=0)
        poisoned = mean - self.z_max * std
        return {i: poisoned.copy() for i in context.faulty_ids}

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        honest = context.honest_stacks()
        poisoned = honest.mean(axis=1) - self.z_max * honest.std(axis=1)
        return _tile_faulty(poisoned, context)


class InnerProductManipulationAttack(ByzantineAttack):
    """Send ``-epsilon *`` (honest mean), reversing the descent direction."""

    name = "ipm"
    requires_omniscience = True

    def __init__(self, epsilon: float = 0.5):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        honest_mean = context.honest_stack().mean(axis=0)
        poisoned = -self.epsilon * honest_mean
        return {i: poisoned.copy() for i in context.faulty_ids}

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        poisoned = -self.epsilon * context.honest_stacks().mean(axis=1)
        return _tile_faulty(poisoned, context)


class MimicAttack(ByzantineAttack):
    """Every faulty agent replays the gradient of one fixed honest agent."""

    name = "mimic"
    requires_omniscience = True

    def __init__(self, target_rank: int = 0):
        if target_rank < 0:
            raise ValueError("target_rank must be non-negative")
        self.target_rank = int(target_rank)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        if not context.honest_gradients:
            raise RuntimeError("mimic attack requires omniscience")
        ids = sorted(context.honest_gradients)
        victim = ids[self.target_rank % len(ids)]
        copied = context.honest_gradients[victim]
        return {i: copied.copy() for i in context.faulty_ids}

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        honest = context.honest_stacks()
        victim_column = self.target_rank % honest.shape[1]
        return _tile_faulty(honest[:, victim_column, :], context)
