"""Filter-aware adaptive attacks.

These omniscient behaviours target the *specific* filters the paper
analyzes, probing the edges of the Theorem-4/6 guarantees:

* :class:`CGEEvasionAttack` — sends a vector pointed against the honest
  descent direction with norm just *below* the smallest honest gradient
  norm, so CGE's norm sort can never eliminate it (the worst case its
  analysis must absorb: Theorem 4's proof charges each surviving Byzantine
  gradient against an eliminated honest one).
* :class:`CoordinateShiftAttack` — targets CWTM: shifts each coordinate to
  sit just inside the honest coordinate range, maximally biasing the
  trimmed mean without ever being trimmed.
* :class:`AlternatingAttack` — switches between two behaviours on a fixed
  period, defeating defenses that profile a static behaviour.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import AttackContext, BatchAttackContext, ByzantineAttack
from .colluding import _tile_faulty

__all__ = ["CGEEvasionAttack", "CoordinateShiftAttack", "AlternatingAttack"]


class CGEEvasionAttack(ByzantineAttack):
    """Anti-descent vector with a norm CGE will never eliminate."""

    name = "cge_evasion"
    requires_omniscience = True

    def __init__(self, norm_fraction: float = 0.9):
        if not 0 < norm_fraction <= 1:
            raise ValueError("norm_fraction must be in (0, 1]")
        self.norm_fraction = float(norm_fraction)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        honest = context.honest_stack()
        norms = np.linalg.norm(honest, axis=1)
        target_norm = self.norm_fraction * float(norms.min())
        direction = -honest.mean(axis=0)
        scale = float(np.linalg.norm(direction))
        if scale < 1e-300 or target_norm == 0.0:
            poisoned = np.zeros(context.dim)
        else:
            poisoned = direction * (target_norm / scale)
        return {i: poisoned.copy() for i in context.faulty_ids}

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        honest = context.honest_stacks()
        norms = np.linalg.norm(honest, axis=2)
        target_norms = self.norm_fraction * norms.min(axis=1)
        directions = -honest.mean(axis=1)
        scales = np.linalg.norm(directions, axis=1)
        usable = (scales >= 1e-300) & (target_norms != 0.0)
        factors = np.where(
            usable, target_norms / np.where(usable, scales, 1.0), 0.0
        )
        poisoned = directions * factors[:, None]
        return _tile_faulty(poisoned, context)


class CoordinateShiftAttack(ByzantineAttack):
    """Per-coordinate extreme values that CWTM cannot trim away.

    Sends, in each coordinate, the value ``fraction`` of the way from the
    honest median to the honest minimum — inside the honest range, so with
    ``f`` faulty agents the trimmed mean still averages over it.
    """

    name = "coordinate_shift"
    requires_omniscience = True

    def __init__(self, fraction: float = 1.0):
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        honest = context.honest_stack()
        median = np.median(honest, axis=0)
        low = honest.min(axis=0)
        poisoned = median + self.fraction * (low - median)
        return {i: poisoned.copy() for i in context.faulty_ids}

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        honest = context.honest_stacks()
        median = np.median(honest, axis=1)
        low = honest.min(axis=1)
        poisoned = median + self.fraction * (low - median)
        return _tile_faulty(poisoned, context)


class AlternatingAttack(ByzantineAttack):
    """Alternate between two attacks with a fixed period."""

    name = "alternating"

    def __init__(
        self,
        first: ByzantineAttack,
        second: ByzantineAttack,
        period: int = 10,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.first = first
        self.second = second
        self.period = int(period)

    @property
    def requires_omniscience(self) -> bool:  # type: ignore[override]
        return self.first.requires_omniscience or self.second.requires_omniscience

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        phase = (context.iteration // self.period) % 2
        active = self.first if phase == 0 else self.second
        return active.fabricate(context)

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        phase = (context.iteration // self.period) % 2
        active = self.first if phase == 0 else self.second
        return active.fabricate_batch(context)
