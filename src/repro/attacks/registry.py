"""Name-based construction of Byzantine attacks."""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from .adaptive import CGEEvasionAttack, CoordinateShiftAttack
from .base import ByzantineAttack
from .colluding import ALIEAttack, InnerProductManipulationAttack, MimicAttack
from .simple import (
    ConstantVectorAttack,
    GradientReverseAttack,
    LargeNormAttack,
    RandomGaussianAttack,
    SignFlipAttack,
    ZeroGradientAttack,
)

__all__ = ["make_attack", "available_attacks"]

_BUILDERS: Dict[str, Callable[[], ByzantineAttack]] = {
    "gradient_reverse": lambda: GradientReverseAttack(),
    "random": lambda: RandomGaussianAttack(standard_deviation=200.0),
    "zero": lambda: ZeroGradientAttack(),
    "sign_flip": lambda: SignFlipAttack(),
    "large_norm": lambda: LargeNormAttack(),
    "constant": lambda: ConstantVectorAttack(np.array([1.0])),
    "alie": lambda: ALIEAttack(),
    "ipm": lambda: InnerProductManipulationAttack(),
    "mimic": lambda: MimicAttack(),
    "cge_evasion": lambda: CGEEvasionAttack(),
    "coordinate_shift": lambda: CoordinateShiftAttack(),
}


def available_attacks() -> List[str]:
    """Sorted registry names."""
    return sorted(_BUILDERS)


def make_attack(name: str) -> ByzantineAttack:
    """Build attack ``name`` with its paper-default parameters."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; known: {', '.join(available_attacks())}"
        ) from None
    return builder()
