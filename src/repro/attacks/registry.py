"""Name-based construction of Byzantine attacks."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from .adaptive import CGEEvasionAttack, CoordinateShiftAttack
from .base import ByzantineAttack
from .colluding import ALIEAttack, InnerProductManipulationAttack, MimicAttack
from .crash import CrashAttack
from .equivocation import EdgeEquivocationAttack
from .hostile import InfinityAttack, NaNAttack, OverflowAttack
from .simple import (
    ConstantVectorAttack,
    GradientReverseAttack,
    LargeNormAttack,
    RandomGaussianAttack,
    SignFlipAttack,
    ZeroGradientAttack,
)

__all__ = ["make_attack", "available_attacks", "attack_descriptions"]

#: Registry: name -> (one-line description, builder).  Keeping the
#: description next to the builder makes it impossible to register an
#: attack without one (``repro-experiments list`` renders these).
_REGISTRY: Dict[str, Tuple[str, Callable[[], ByzantineAttack]]] = {
    "gradient_reverse": (
        "send the negated true gradient (paper Section 5)",
        lambda: GradientReverseAttack(),
    ),
    "random": (
        "i.i.d. Gaussian noise vectors with large variance",
        lambda: RandomGaussianAttack(standard_deviation=200.0),
    ),
    "zero": (
        "send the zero vector (free-riding / dropped update)",
        lambda: ZeroGradientAttack(),
    ),
    "sign_flip": (
        "flip the sign of every coordinate of the true gradient",
        lambda: SignFlipAttack(),
    ),
    "large_norm": (
        "truthful direction scaled to an enormous norm",
        lambda: LargeNormAttack(),
    ),
    "constant": (
        "a fixed constant vector every iteration",
        lambda: ConstantVectorAttack(np.array([1.0])),
    ),
    "alie": (
        "A-Little-Is-Enough: hide inside honest mean +/- z*sigma",
        lambda: ALIEAttack(),
    ),
    "ipm": (
        "inner-product manipulation against the honest mean",
        lambda: InnerProductManipulationAttack(),
    ),
    "mimic": (
        "replay one honest agent's gradient (omniscient)",
        lambda: MimicAttack(),
    ),
    "cge_evasion": (
        "norm just under the CGE cutoff, reversed direction",
        lambda: CGEEvasionAttack(),
    ),
    "coordinate_shift": (
        "adaptive per-coordinate shift against CWTM trims",
        lambda: CoordinateShiftAttack(),
    ),
    "edge_equivocation": (
        "per-edge equivocation: truth to some neighbors, reversal to others",
        lambda: EdgeEquivocationAttack(),
    ),
    "crash": (
        "crash fault: honest until the crash round, then silently stops sending",
        lambda: CrashAttack(),
    ),
    "nan": (
        "all-NaN payload: poisons any filter without non-finite semantics",
        lambda: NaNAttack(),
    ),
    "inf": (
        "±Inf payload mixing both tails (their sum is NaN)",
        lambda: InfinityAttack(),
    ),
    "overflow": (
        "finite ±1e300 payload whose squared distances overflow",
        lambda: OverflowAttack(),
    ),
}


def available_attacks() -> List[str]:
    """Sorted registry names."""
    return sorted(_REGISTRY)


def attack_descriptions() -> Dict[str, str]:
    """One-line description per registered attack, sorted by name."""
    return {name: _REGISTRY[name][0] for name in available_attacks()}


def make_attack(name: str) -> ByzantineAttack:
    """Build attack ``name`` with its paper-default parameters."""
    try:
        _, builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; known: {', '.join(available_attacks())}"
        ) from None
    return builder()
