"""Byzantine fault behaviours — Section 5 and literature baselines."""

from .adaptive import AlternatingAttack, CGEEvasionAttack, CoordinateShiftAttack
from .base import (
    AttackContext,
    BatchAttackContext,
    ByzantineAttack,
    DecentralizedAttackContext,
)
from .colluding import ALIEAttack, InnerProductManipulationAttack, MimicAttack
from .crash import CrashAttack
from .equivocation import EdgeEquivocationAttack
from .hostile import InfinityAttack, NaNAttack, OverflowAttack
from .registry import attack_descriptions, available_attacks, make_attack
from .simple import (
    ConstantVectorAttack,
    GradientReverseAttack,
    LargeNormAttack,
    RandomGaussianAttack,
    SignFlipAttack,
    ZeroGradientAttack,
)

__all__ = [
    "AttackContext",
    "BatchAttackContext",
    "ByzantineAttack",
    "GradientReverseAttack",
    "RandomGaussianAttack",
    "ZeroGradientAttack",
    "ConstantVectorAttack",
    "SignFlipAttack",
    "LargeNormAttack",
    "ALIEAttack",
    "InnerProductManipulationAttack",
    "MimicAttack",
    "CGEEvasionAttack",
    "CoordinateShiftAttack",
    "AlternatingAttack",
    "CrashAttack",
    "NaNAttack",
    "InfinityAttack",
    "OverflowAttack",
    "make_attack",
    "available_attacks",
    "attack_descriptions",
    "DecentralizedAttackContext",
    "EdgeEquivocationAttack",
]
