"""Byzantine fault behaviours — Section 5 and literature baselines."""

from .adaptive import AlternatingAttack, CGEEvasionAttack, CoordinateShiftAttack
from .base import AttackContext, BatchAttackContext, ByzantineAttack
from .colluding import ALIEAttack, InnerProductManipulationAttack, MimicAttack
from .registry import available_attacks, make_attack
from .simple import (
    ConstantVectorAttack,
    GradientReverseAttack,
    LargeNormAttack,
    RandomGaussianAttack,
    SignFlipAttack,
    ZeroGradientAttack,
)

__all__ = [
    "AttackContext",
    "BatchAttackContext",
    "ByzantineAttack",
    "GradientReverseAttack",
    "RandomGaussianAttack",
    "ZeroGradientAttack",
    "ConstantVectorAttack",
    "SignFlipAttack",
    "LargeNormAttack",
    "ALIEAttack",
    "InnerProductManipulationAttack",
    "MimicAttack",
    "CGEEvasionAttack",
    "CoordinateShiftAttack",
    "AlternatingAttack",
    "make_attack",
    "available_attacks",
]
