"""The paper's fault behaviours and other non-colluding attacks.

Section 5 / Appendix J simulate two behaviours:

* ``gradient-reverse`` — the faulty agent sends ``-s_t`` where ``s_t`` is its
  correct gradient, and
* ``random`` — an i.i.d. Gaussian vector with zero mean and isotropic
  covariance (standard deviation 200 in the paper).

This module also provides the standard zero, constant, sign-flip and
large-norm behaviours used in the wider literature and in our ablations.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .base import AttackContext, BatchAttackContext, ByzantineAttack

__all__ = [
    "GradientReverseAttack",
    "RandomGaussianAttack",
    "ZeroGradientAttack",
    "ConstantVectorAttack",
    "SignFlipAttack",
    "LargeNormAttack",
]


class GradientReverseAttack(ByzantineAttack):
    """Send ``-scale * true_gradient`` (paper's *gradient-reverse*, scale 1)."""

    name = "gradient_reverse"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        return {
            i: -self.scale * context.true_gradients[i]
            for i in context.faulty_ids
        }

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        return -self.scale * context.true_gradients


class RandomGaussianAttack(ByzantineAttack):
    """Send an isotropic Gaussian vector (paper's *random*, sigma = 200)."""

    name = "random"

    def __init__(self, standard_deviation: float = 200.0):
        if standard_deviation <= 0:
            raise ValueError("standard deviation must be positive")
        self.standard_deviation = float(standard_deviation)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        return {
            i: context.rng.normal(0.0, self.standard_deviation, size=context.dim)
            for i in context.faulty_ids
        }

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        # One (F, d) draw per trial consumes each generator's stream exactly
        # like the per-trial path's F sequential size-(d,) draws.
        shape = (len(context.faulty_ids), context.dim)
        return np.stack(
            [
                rng.normal(0.0, self.standard_deviation, size=shape)
                for rng in context.rngs
            ]
        )


class ZeroGradientAttack(ByzantineAttack):
    """Send the zero vector — a stealthy do-nothing fault.

    Against CGE this is a *strong* attack: zero has the smallest possible
    norm, so it is always retained and dilutes the honest update.
    """

    name = "zero"

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        return {i: np.zeros(context.dim) for i in context.faulty_ids}

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        return np.zeros_like(context.true_gradients)


class ConstantVectorAttack(ByzantineAttack):
    """Send a fixed vector every iteration (e.g. to drag the estimate)."""

    name = "constant"

    def __init__(self, vector: Sequence[float]):
        self.vector = np.asarray(vector, dtype=float)
        if self.vector.ndim != 1:
            raise ValueError("vector must be 1-D")

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        if self.vector.shape[0] != context.dim:
            raise ValueError(
                f"attack vector has dim {self.vector.shape[0]}, "
                f"system has dim {context.dim}"
            )
        return {i: self.vector.copy() for i in context.faulty_ids}

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        if self.vector.shape[0] != context.dim:
            raise ValueError(
                f"attack vector has dim {self.vector.shape[0]}, "
                f"system has dim {context.dim}"
            )
        shape = (context.trials, len(context.faulty_ids), context.dim)
        return np.broadcast_to(self.vector, shape).copy()


class SignFlipAttack(ByzantineAttack):
    """Flip the sign of every coordinate of the true gradient.

    Identical to gradient-reverse with scale 1; kept as a separate name
    because the learning literature tunes the two independently — here the
    flip applies coordinate-wise magnitudes ``|g|`` times ``-sign(g)``.
    """

    name = "sign_flip"

    def __init__(self, magnitude: float = 1.0):
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        self.magnitude = float(magnitude)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        out = {}
        for i in context.faulty_ids:
            g = context.true_gradients[i]
            out[i] = -self.magnitude * np.sign(g) * np.abs(g)
        return out

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        g = context.true_gradients
        return -self.magnitude * np.sign(g) * np.abs(g)


class LargeNormAttack(ByzantineAttack):
    """Send the true gradient scaled by a huge factor.

    Easily filtered by CGE (largest norms are eliminated) but devastating to
    plain averaging — useful for sanity-checking filters.
    """

    name = "large_norm"

    def __init__(self, factor: float = 1e6):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.factor = float(factor)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        return {
            i: self.factor * context.true_gradients[i]
            for i in context.faulty_ids
        }

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        return self.factor * context.true_gradients
