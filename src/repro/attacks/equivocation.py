"""Per-edge equivocation — attacks only the decentralized setting permits.

Under the server-based architecture (and the peer-to-peer simulation built
on Byzantine broadcast) every faulty agent is forced into *one* gradient
per iteration: the server sees a single message, and OM(f) makes honest
receivers agree on a single value.  On a sparse communication graph no such
primitive is in force, so a Byzantine agent may send a *different* vector
along every outgoing edge — the classic equivocation threat the
decentralized fault-tolerance literature (arXiv:2101.12316, 2009.14763)
defends against with neighborhood-wise filtering.

:class:`EdgeEquivocationAttack` is the canonical instance: truthful toward
one half of its out-neighborhood, gradient-reversing toward the other, so
no single received value betrays the fault while neighborhoods still see
inconsistent reports.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import AttackContext, ByzantineAttack, DecentralizedAttackContext

__all__ = ["EdgeEquivocationAttack"]


class EdgeEquivocationAttack(ByzantineAttack):
    """Alternate truth / reversed gradient across each out-neighborhood.

    Each faulty agent walks its *actual* receivers (ascending id, from
    ``context.receivers``) and sends the truth to every other one and
    ``-scale *`` its true gradient to the rest — so the attack genuinely
    equivocates whenever an agent has at least two out-edges, regardless of
    how receiver ids happen to be distributed (a global id-parity rule
    would send one single branch to e.g. a ring neighborhood {1, 5}).
    Where a broadcast primitive forces one value per sender — the server
    and peer-to-peer engines — the attack degrades to plain gradient
    reversal, which is also what :meth:`fabricate` implements.
    """

    name = "edge_equivocation"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        return {
            i: -self.scale * context.true_gradients[i]
            for i in context.faulty_ids
        }

    def fabricate_batch(self, context) -> np.ndarray:
        return -self.scale * np.asarray(context.true_gradients, dtype=float)

    def fabricate_edges(self, context: DecentralizedAttackContext) -> np.ndarray:
        true = np.asarray(context.true_gradients, dtype=float)  # (S, F, d)
        reversed_branch = (-self.scale * true)[:, :, None, :]
        out = np.repeat(true[:, :, None, :], context.agents, axis=2)
        if context.receivers is None:
            # No delivery structure known: fall back to global id parity.
            odd = np.arange(context.agents) % 2 == 1
            out[:, :, odd, :] = reversed_branch
            return out
        for column, faulty_id in enumerate(context.faulty_ids):
            reached = np.flatnonzero(context.receivers[column])
            # The closed out-neighborhood includes the attacker itself; it
            # always keeps the truth and must not consume a branch slot
            # (otherwise e.g. ring neighborhoods {2, self, 4} would send
            # the reversal only to the attacker and truth to both peers).
            reached = reached[reached != faulty_id]
            out[:, column, reached[1::2], :] = reversed_branch[:, column]
        return out
