"""Non-finite and overflow-scale hostile payloads.

Section 4's adversary "may send arbitrary incorrect vectors" — which
includes vectors no real computation produces: ``NaN``, ``±Inf``, and
magnitudes large enough that a squared distance overflows double
precision (any coordinate beyond ~1e154).  These attacks exercise that
corner of the threat model directly; the aggregator front-doors and the
engines' quarantine layer (:mod:`repro.distsys.health`) define what
every filter does when they land.

All three behaviours are deterministic and consume no randomness, so the
per-trial, batched and per-edge fabrication paths agree bit-for-bit by
construction.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import AttackContext, BatchAttackContext, ByzantineAttack

__all__ = ["NaNAttack", "InfinityAttack", "OverflowAttack"]


class NaNAttack(ByzantineAttack):
    """Send all-``NaN`` vectors — the pure poison payload.

    Order-statistic filters sort ``NaN`` past ``+Inf`` and trim it away;
    distance-based filters rank ``NaN`` candidates last; strict filters
    (mean/sum) refuse with a :class:`~repro.health.QuarantineError`.
    """

    name = "nan"

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        return {
            i: np.full(context.dim, np.nan) for i in context.faulty_ids
        }

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        return np.full_like(context.true_gradients, np.nan)


class InfinityAttack(ByzantineAttack):
    """Send ``±Inf`` vectors, mixing both tails.

    The sign alternates with the faulty column *and* the coordinate
    (``(-1)**(j + k) * Inf``), so even a scalar problem with two faulty
    agents serves both ``+Inf`` and ``-Inf`` — the combination whose sum
    is ``NaN`` and which stresses both trim tails of CWTM/CGE.
    """

    name = "inf"

    def _payload(self, columns: int, dim: int) -> np.ndarray:
        parity = (np.arange(columns)[:, None] + np.arange(dim)[None, :]) % 2
        return np.where(parity == 0, np.inf, -np.inf)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        payload = self._payload(len(context.faulty_ids), context.dim)
        return {
            fid: payload[j].copy()
            for j, fid in enumerate(context.faulty_ids)
        }

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        payload = self._payload(len(context.faulty_ids), context.dim)
        shape = (context.trials,) + payload.shape
        return np.broadcast_to(payload, shape).copy()


class OverflowAttack(ByzantineAttack):
    """Send ``±magnitude`` following the true gradient's signs.

    The default magnitude 1e300 is finite, so it sails through any
    naive ``isfinite`` check — but one squared distance against it
    overflows to ``Inf`` (doubles overflow near 1e154 squared), which is
    exactly the failure mode the overflow-safe distance kernels must
    absorb.  Zero coordinates map to ``+magnitude`` so the payload never
    hides a coordinate.
    """

    name = "overflow"

    def __init__(self, magnitude: float = 1e300):
        if not np.isfinite(magnitude) or magnitude <= 0:
            raise ValueError("magnitude must be positive and finite")
        self.magnitude = float(magnitude)

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        return {
            i: self.magnitude
            * np.where(context.true_gradients[i] < 0, -1.0, 1.0)
            for i in context.faulty_ids
        }

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        g = context.true_gradients
        return self.magnitude * np.where(g < 0, -1.0, 1.0)
