"""Byzantine fault-behaviour abstraction.

A Byzantine agent "may send arbitrary incorrect vectors as their gradients to
the server" (Section 4).  Attacks in this package model that freedom: at each
iteration the simulator hands the attack an :class:`AttackContext` describing
everything a worst-case adversary may know — the current estimate, the true
gradients of the compromised agents, and (for *omniscient* attacks) the
honest agents' gradients — and receives one fabricated gradient per faulty
agent.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["AttackContext", "ByzantineAttack"]


@dataclass
class AttackContext:
    """Everything an adversary can observe at one iteration.

    Attributes:
        iteration: current iteration index ``t``.
        estimate: the broadcast estimate ``x_t``, shape ``(d,)``.
        faulty_ids: ids of the compromised agents, ascending.
        true_gradients: each faulty agent's *correct* gradient at ``x_t``
            (what the agent would send if honest), keyed by agent id.
        honest_gradients: honest agents' gradients keyed by id — only
            populated for omniscient attacks.
        rng: deterministic per-run random generator.
    """

    iteration: int
    estimate: np.ndarray
    faulty_ids: Sequence[int]
    true_gradients: Dict[int, np.ndarray]
    honest_gradients: Optional[Dict[int, np.ndarray]] = None
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    @property
    def dim(self) -> int:
        """Dimension of the optimization variable."""
        return int(np.asarray(self.estimate).shape[0])

    def honest_stack(self) -> np.ndarray:
        """Honest gradients as an ``(h, d)`` array (omniscient attacks only)."""
        if not self.honest_gradients:
            raise RuntimeError(
                "attack requires omniscient access to honest gradients; "
                "enable it on the simulator"
            )
        ids = sorted(self.honest_gradients)
        return np.vstack([self.honest_gradients[i] for i in ids])


class ByzantineAttack(abc.ABC):
    """A rule for fabricating faulty gradients each iteration."""

    #: short registry name, e.g. ``"gradient_reverse"``
    name: str = "abstract"

    #: whether the attack needs honest agents' gradients
    requires_omniscience: bool = False

    @abc.abstractmethod
    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        """Gradient to send for every faulty agent id in the context."""

    def __repr__(self) -> str:
        params = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        inner = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"
