"""Byzantine fault-behaviour abstraction.

A Byzantine agent "may send arbitrary incorrect vectors as their gradients to
the server" (Section 4).  Attacks in this package model that freedom: at each
iteration the simulator hands the attack an :class:`AttackContext` describing
everything a worst-case adversary may know — the current estimate, the true
gradients of the compromised agents, and (for *omniscient* attacks) the
honest agents' gradients — and receives one fabricated gradient per faulty
agent.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "AttackContext",
    "BatchAttackContext",
    "DecentralizedAttackContext",
    "ByzantineAttack",
]


@dataclass
class AttackContext:
    """Everything an adversary can observe at one iteration.

    Attributes:
        iteration: current iteration index ``t``.
        estimate: the broadcast estimate ``x_t``, shape ``(d,)``.
        faulty_ids: ids of the compromised agents, ascending.
        true_gradients: each faulty agent's *correct* gradient at ``x_t``
            (what the agent would send if honest), keyed by agent id.
        honest_gradients: honest agents' gradients keyed by id — only
            populated for omniscient attacks.
        rng: deterministic per-run random generator.
        view_rounds: timeline context (asynchronous engine only) — the
            round whose iterate each message in play was evaluated at, so
            ``iteration - view_rounds[i]`` is message ``i``'s staleness.
            ``None`` under the synchronous engines (everything is fresh).
        compromised_since: timeline context (asynchronous engine only) —
            the round each faulty agent was compromised at, for attacks
            that ramp up after takeover.  ``None`` under the synchronous
            engines (compromise is from round 0).
    """

    iteration: int
    estimate: np.ndarray
    faulty_ids: Sequence[int]
    true_gradients: Dict[int, np.ndarray]
    honest_gradients: Optional[Dict[int, np.ndarray]] = None
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    view_rounds: Optional[Dict[int, int]] = None
    compromised_since: Optional[Dict[int, int]] = None

    def staleness(self, agent_id: int) -> int:
        """Rounds between message ``agent_id``'s view and now (0 = fresh)."""
        if self.view_rounds is None:
            return 0
        return int(self.iteration) - int(self.view_rounds[agent_id])

    @property
    def dim(self) -> int:
        """Dimension of the optimization variable."""
        return int(np.asarray(self.estimate).shape[0])

    def honest_stack(self) -> np.ndarray:
        """Honest gradients as an ``(h, d)`` array (omniscient attacks only)."""
        if not self.honest_gradients:
            raise RuntimeError(
                "attack requires omniscient access to honest gradients; "
                "enable it on the simulator"
            )
        ids = sorted(self.honest_gradients)
        return np.vstack([self.honest_gradients[i] for i in ids])


@dataclass
class BatchAttackContext:
    """Adversary observables for ``S`` lockstep trials of a batched sweep.

    The batch engine (:class:`~repro.distsys.batch.BatchSimulator`) runs the
    same system under ``S`` independent trials; this context carries the
    per-trial observables as stacked tensors.  Row order inside
    ``honest_gradients`` follows ``honest_ids`` ascending, matching the
    id-sorted :meth:`AttackContext.honest_stack` of the per-trial path.

    Attributes:
        iteration: current iteration index ``t`` (shared by all trials).
        estimates: the broadcast estimates, shape ``(S, d)``.
        faulty_ids: ids of the compromised agents, ascending.
        true_gradients: correct gradients of the compromised agents at each
            trial's estimate, shape ``(S, F, d)`` with columns ordered like
            ``faulty_ids``.
        honest_gradients: honest agents' gradients, shape ``(S, H, d)`` —
            only populated for omniscient attacks.
        honest_ids: ids labelling the columns of ``honest_gradients``.
        rngs: one deterministic generator per trial (the trial's seed).
        view_rounds: timeline context (batched asynchronous engine only) —
            ``(S, F)`` round indices whose iterate each faulty message was
            evaluated at, columns ordered like ``faulty_ids``.  ``None``
            under the synchronous engines (everything is fresh).
        compromised_since: timeline context (batched asynchronous engine
            only) — ``(S, F)`` rounds each faulty agent was compromised
            at.  ``None`` under the synchronous engines.
    """

    iteration: int
    estimates: np.ndarray
    faulty_ids: Sequence[int]
    true_gradients: np.ndarray
    honest_gradients: Optional[np.ndarray] = None
    honest_ids: Optional[Sequence[int]] = None
    rngs: Sequence[np.random.Generator] = ()
    view_rounds: Optional[np.ndarray] = None
    compromised_since: Optional[np.ndarray] = None

    @property
    def trials(self) -> int:
        """Number of lockstep trials ``S``."""
        return int(np.asarray(self.estimates).shape[0])

    @property
    def dim(self) -> int:
        """Dimension of the optimization variable."""
        return int(np.asarray(self.estimates).shape[1])

    def honest_stacks(self) -> np.ndarray:
        """Honest gradients as ``(S, H, d)`` (omniscient attacks only)."""
        if self.honest_gradients is None:
            raise RuntimeError(
                "attack requires omniscient access to honest gradients; "
                "enable it on the simulator"
            )
        return self.honest_gradients

    def trial_context(self, s: int) -> AttackContext:
        """The per-trial :class:`AttackContext` of trial ``s``."""
        honest = None
        if self.honest_gradients is not None:
            assert self.honest_ids is not None
            honest = {
                hid: self.honest_gradients[s, j]
                for j, hid in enumerate(self.honest_ids)
            }
        return AttackContext(
            iteration=self.iteration,
            estimate=self.estimates[s],
            faulty_ids=list(self.faulty_ids),
            true_gradients={
                fid: self.true_gradients[s, j]
                for j, fid in enumerate(self.faulty_ids)
            },
            honest_gradients=honest,
            rng=self.rngs[s],
            view_rounds=(
                None
                if self.view_rounds is None
                else {
                    fid: int(self.view_rounds[s, j])
                    for j, fid in enumerate(self.faulty_ids)
                }
            ),
            compromised_since=(
                None
                if self.compromised_since is None
                else {
                    fid: int(self.compromised_since[s, j])
                    for j, fid in enumerate(self.faulty_ids)
                }
            ),
        )


@dataclass
class DecentralizedAttackContext:
    """Adversary observables in the decentralized (sparse-graph) setting.

    Without a broadcast primitive there is no single estimate and no forced
    consistency: every agent holds its own iterate and a Byzantine agent may
    send a *different* fabrication along every outgoing edge.  This context
    therefore extends the batched observables with the communication
    structure: who each compromised agent can reach, and every agent's
    current iterate.

    Attributes:
        iteration: current iteration index ``t`` (shared by all trials).
        reference_estimates: a representative honest iterate per trial,
            shape ``(S, d)`` — equal to the shared iterate whenever the
            honest agents are in lockstep (e.g. on the complete graph).
        agent_estimates: every agent's own iterate, shape ``(S, n, d)``.
        faulty_ids: ids of the compromised agents, ascending.
        true_gradients: correct gradients of the compromised agents at
            their *own* estimates, shape ``(S, F, d)``.
        honest_gradients: honest agents' gradients, shape ``(S, H, d)`` —
            only populated for omniscient attacks.
        honest_ids: ids labelling the columns of ``honest_gradients``.
        receivers: boolean ``(F, n)`` delivery mask — ``receivers[j, i]``
            means faulty agent ``faulty_ids[j]``'s message reaches agent
            ``i`` (closed out-neighborhood, so self-delivery is included).
        rngs: one deterministic generator per trial.
    """

    iteration: int
    reference_estimates: np.ndarray
    agent_estimates: np.ndarray
    faulty_ids: Sequence[int]
    true_gradients: np.ndarray
    honest_gradients: Optional[np.ndarray] = None
    honest_ids: Optional[Sequence[int]] = None
    receivers: Optional[np.ndarray] = None
    rngs: Sequence[np.random.Generator] = ()

    @property
    def trials(self) -> int:
        """Number of lockstep trials ``S``."""
        return int(np.asarray(self.reference_estimates).shape[0])

    @property
    def dim(self) -> int:
        """Dimension of the optimization variable."""
        return int(np.asarray(self.reference_estimates).shape[1])

    @property
    def agents(self) -> int:
        """Total number of agents ``n``."""
        return int(np.asarray(self.agent_estimates).shape[1])

    def broadcast_context(self) -> BatchAttackContext:
        """The broadcast-equivalent :class:`BatchAttackContext`.

        Used by the default per-edge fabrication: an attack without an edge
        strategy behaves as if it broadcast one fabrication to its whole
        out-neighborhood, consuming its generators exactly as it would under
        the batched server engine.
        """
        return BatchAttackContext(
            iteration=self.iteration,
            estimates=self.reference_estimates,
            faulty_ids=list(self.faulty_ids),
            true_gradients=self.true_gradients,
            honest_gradients=self.honest_gradients,
            honest_ids=(
                None if self.honest_ids is None else list(self.honest_ids)
            ),
            rngs=self.rngs,
        )


class ByzantineAttack(abc.ABC):
    """A rule for fabricating faulty gradients each iteration."""

    #: short registry name, e.g. ``"gradient_reverse"``
    name: str = "abstract"

    #: whether the attack needs honest agents' gradients
    requires_omniscience: bool = False

    #: whether :meth:`silences` can ever return True.  Engines that run a
    #: full-attendance lockstep (the batch, peer-to-peer and decentralized
    #: engines) cannot represent a missing message and must reject such
    #: attacks loudly instead of silently fabricating for a crashed agent.
    may_be_silent: bool = False

    @abc.abstractmethod
    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        """Gradient to send for every faulty agent id in the context."""

    def silences(self, agent_id: int, iteration: int) -> bool:
        """Whether compromised agent ``agent_id`` sends *nothing* at ``t``.

        Crash-style faults override this; the simulators consult it before
        collecting a compromised agent's message (a silenced agent is
        eliminated by step S1 in the synchronous engine, and counted
        missing by the asynchronous engine's missing-value policy).
        Attacks with ``may_be_silent = False`` must leave it False.
        """
        return False

    def fabricate_batch(self, context: BatchAttackContext) -> np.ndarray:
        """Fabrications for all trials at once, shape ``(S, F, d)``.

        Column ``j`` holds the gradient sent by ``context.faulty_ids[j]``.
        The base implementation replays :meth:`fabricate` per trial —
        consuming each trial's generator exactly as the per-trial simulator
        would — so every attack works under the batch engine; vectorizable
        attacks override it with one tensor expression.
        """
        faulty = list(context.faulty_ids)
        out = np.empty((context.trials, len(faulty), context.dim))
        for s in range(context.trials):
            fabricated = self.fabricate(context.trial_context(s))
            missing = set(faulty) - set(fabricated)
            if missing:
                raise RuntimeError(
                    f"attack produced no gradient for agents {sorted(missing)}"
                )
            for j, fid in enumerate(faulty):
                out[s, j] = np.asarray(fabricated[fid], dtype=float)
        return out

    def fabricate_edges(self, context: DecentralizedAttackContext) -> np.ndarray:
        """Per-edge fabrications for the decentralized engine: ``(S, F, n, d)``.

        Entry ``[s, j, i]`` is what faulty agent ``context.faulty_ids[j]``
        sends to agent ``i`` in trial ``s``; the engine only delivers entries
        where ``context.receivers`` has an edge.  The base implementation
        *broadcasts*: one :meth:`fabricate_batch` fabrication per faulty
        agent, tiled across all receivers — so every existing attack works
        on sparse graphs unchanged.  Equivocating attacks override this to
        send different vectors along different edges.
        """
        broadcast = np.asarray(
            self.fabricate_batch(context.broadcast_context()), dtype=float
        )
        shape = (
            context.trials,
            len(context.faulty_ids),
            context.agents,
            context.dim,
        )
        return np.broadcast_to(broadcast[:, :, None, :], shape)

    def __repr__(self) -> str:
        params = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        inner = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"
