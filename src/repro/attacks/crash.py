"""Crash faults expressed as an attack behaviour.

A *crash* fault is the benign end of the Byzantine spectrum: the agent
follows the protocol faithfully and then silently stops sending.  Under the
synchronous engine crash faults are exactly what step S1's elimination rule
handles; under the asynchronous engine they exercise the missing-value
policy (silence is *not* proof of crash there, so nobody is eliminated).

Registering the behaviour as an attack (``make_attack("crash")``) lets every
sweep that enumerates the attack registry cover the crash regime without a
separate code path.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import AttackContext, ByzantineAttack

__all__ = ["CrashAttack"]


class CrashAttack(ByzantineAttack):
    """Honest until ``crash_at``, then silent forever.

    Before the crash round the compromised agents send their *true*
    gradients (a crashing process is not lying, it is dying); from
    ``crash_at`` on, :meth:`silences` reports them silent and the engines
    collect nothing from them.
    """

    name = "crash"
    may_be_silent = True

    def __init__(self, crash_at: int = 0):
        if crash_at < 0:
            raise ValueError("crash round must be non-negative")
        self.crash_at = int(crash_at)

    def silences(self, agent_id: int, iteration: int) -> bool:
        return iteration >= self.crash_at

    def fabricate(self, context: AttackContext) -> Dict[int, np.ndarray]:
        # Only reachable before the crash round (silent agents are never
        # handed to the attack); a crashing agent is honest until it dies.
        return {
            i: np.asarray(context.true_gradients[i], dtype=float)
            for i in context.faulty_ids
        }
