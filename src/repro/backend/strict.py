"""The ``strict`` test backend: NumPy semantics, stray-``np.``-call alarms.

Routing the tensor programs through :data:`repro.backend.xp` is only worth
anything if they *actually* route everything — a single leftover
``np.sort(...)`` on a hot path would silently pin that path to NumPy and
break any future CuPy/torch backend.  The strict backend turns that silent
drift into a loud test failure:

* Engine inputs enter through ``xp.asarray`` and come back as
  :class:`StrictArray` — an ``ndarray`` subclass that computes exactly
  like its base (ufuncs, methods, slicing all inherited, bit-identical
  floats) but whose ``__array_function__`` raises
  :class:`BackendBypassError`.
* Any *dispatched* NumPy API call (``np.einsum``, ``np.sort``,
  ``np.where``, ``np.take_along_axis``, ...) made directly on such an
  array — i.e. not through the shim — trips the alarm with the offending
  function's name.
* The shim's own ops unwrap their arguments to base ``ndarray`` views,
  call NumPy, and rewrap the result, so code that does go through ``xp``
  runs normally and stays strict for its downstream consumers.

What strictness deliberately does NOT catch:

* Ufunc arithmetic (``a + b``, ``np.isfinite(a)``, ``np.maximum(a, b)``)
  and ndarray methods (``a.sum()``, ``a.copy()``) — every real backend
  implements these natively on its own array type, so using them on hot
  paths is fine and the default subclass-preserving ``__array_ufunc__``
  lets them through.
* ``np.asarray(strict_array)`` — NumPy coercion is not dispatched through
  ``__array_function__``; it silently returns a base-class view.  That is
  exactly the sanctioned ``to_numpy`` boundary behaviour, so the gap is
  acceptable: a stray ``np.asarray`` hands downstream code a plain array
  whose *next* dispatched op would also be plain, but the engines' pinning
  suites run whole algorithms under strictness, so any bypassed region
  that later feeds a shim-routed op is still exercised.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["BackendBypassError", "StrictArray", "build_strict_backend"]


class BackendBypassError(AssertionError):
    """A NumPy API function was called directly on a strict-backend array.

    Raised (as an ``AssertionError`` subclass, so pytest reports it as a
    failure rather than an error) when a hot path bypasses the ``xp`` shim.
    """


class StrictArray(np.ndarray):
    """An ``ndarray`` that refuses dispatched ``np.*`` calls.

    Computes bit-identically to a plain ``ndarray`` — only the
    ``__array_function__`` protocol hook is overridden.  Ufuncs go through
    the inherited default, which preserves the subclass on outputs, so
    strictness is sticky across arithmetic.
    """

    def __array_function__(self, func, types, args, kwargs):
        raise BackendBypassError(
            f"np.{getattr(func, '__name__', func)!s} called directly on a "
            "strict-backend array — route this op through repro.backend.xp"
        )


def _unwrap(value):
    """Recursively replace StrictArray views with base ``ndarray`` views."""
    if isinstance(value, StrictArray):
        return value.view(np.ndarray)
    if isinstance(value, tuple):
        return tuple(_unwrap(v) for v in value)
    if isinstance(value, list):
        return [_unwrap(v) for v in value]
    if isinstance(value, dict):
        return {k: _unwrap(v) for k, v in value.items()}
    return value


def _rewrap(value):
    """Re-enter strictness: view ndarray results as StrictArray."""
    if isinstance(value, np.ndarray):
        return value.view(StrictArray)
    if isinstance(value, tuple):
        return tuple(_rewrap(v) for v in value)
    if isinstance(value, list):
        return [_rewrap(v) for v in value]
    return value


def _strict_op(fn):
    """Wrap a NumPy function so it unwraps strict inputs and rewraps outputs."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return _rewrap(fn(*_unwrap(args), **_unwrap(kwargs)))

    return wrapper


def build_strict_backend(backend_cls, array_ops):
    """Build the strict backend instance (called once by the registry)."""
    backend = backend_cls("strict")
    for op in array_ops:
        setattr(backend, op, _strict_op(getattr(np, op)))
    backend.norm = _strict_op(np.linalg.norm)

    def to_numpy(a):
        # The sanctioned exit: a plain base-class view (zero-copy).
        return np.asarray(a).view(np.ndarray) if isinstance(a, np.ndarray) else np.asarray(a)

    def asarray(a, dtype=None, **kwargs):
        out = np.asarray(_unwrap(a), dtype=dtype, **kwargs)
        return out.view(StrictArray)

    backend.to_numpy = to_numpy
    backend.asarray = asarray
    backend.from_numpy = asarray
    return backend
