"""Pluggable array backend for the tensor programs — the ``xp`` shim.

Every batched engine in this repository is a lockstep tensor program: one
einsum per observation, one sort/cumsum kernel per aggregation, one fused
update per projection.  Those programs used to be hard-wired to NumPy; this
package puts a thin, explicit seam between them and the array library so
the same einsum programs can run on NumPy today and CuPy/torch tomorrow.

The seam is the module-level :data:`xp` proxy::

    from repro.backend import xp

    ordered = xp.sort(padded, axis=2)       # resolved on the active backend
    total = xp.einsum("snm,nmd->snd", r, d)

``xp`` forwards every attribute access to the *active*
:class:`ArrayBackend` — by default the NumPy backend, whose ops **are** the
``numpy`` functions themselves, so routing through the shim changes no
float anywhere and costs one attribute indirection per call.

Contract (DESIGN.md, "Array backend" / invariant 14):

* **Backend choice never perturbs results.**  All backends must produce
  results within 1e-9 of the NumPy backend on the pinned engine suites;
  the NumPy and strict backends are bit-identical by construction.
* **float64 everywhere.**  The engines' dtype rule is double precision;
  a backend whose default dtype differs must still return float64 results
  (``ArrayBackend.float_dtype`` names the expected dtype).
* **RNG stays NumPy.**  Every seeded stream (trial attack streams, network
  pre-sampling, topology generators) is a ``numpy.random.Generator`` on
  every backend, so seeds mean the same thing everywhere; draws cross into
  backend-land through ordinary arithmetic or :meth:`ArrayBackend.asarray`.
* **``to_numpy`` is the boundary.**  Public traces, attack contexts,
  projection sets and schedules are NumPy-facing; engines convert with
  ``xp.to_numpy(...)`` (a zero-copy view on the NumPy backend) before
  crossing, and re-enter with ``xp.asarray(...)``.

Backends are registered by name (:func:`register_backend`) and selected by
the ``REPRO_BACKEND`` environment variable (read once, lazily) or the
:func:`use_backend` context manager (which wins while active).  Built-ins:

* ``numpy`` — the default; ops are the NumPy functions themselves.
* ``strict`` — NumPy semantics on a guarded ``ndarray`` subclass whose
  ``__array_function__`` raises :class:`~repro.backend.strict.BackendBypassError`
  for any dispatched ``np.*`` call that did not come through the shim.
  The backend-contract test suite runs the engines under it to prove the
  hot paths have no stray ``np.`` calls.
* ``cupy`` / ``torch`` — entry-point stubs: registered so tooling can name
  them, raising a clear ``ImportError`` when the library is absent (this
  container ships neither); the CuPy mapping is NumPy-API shaped, the
  torch mapping renames the divergent ops and is marked experimental.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendBypassError",
    "xp",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "use_backend",
]


#: NumPy-named ops every backend must expose.  These are exactly the
#: dispatched / creation calls the hot tensor paths make; element-wise
#: arithmetic goes through operators (ufuncs), which every array type
#: implements natively and the shim deliberately does not wrap.
ARRAY_OPS = (
    # creation / coercion
    "asarray",
    "ascontiguousarray",
    "array",
    "zeros",
    "zeros_like",
    "empty",
    "empty_like",
    "ones",
    "ones_like",
    "full",
    "full_like",
    "arange",
    "eye",
    # structure
    "where",
    "stack",
    "concatenate",
    "broadcast_to",
    "repeat",
    "tile",
    "reshape",
    "moveaxis",
    "expand_dims",
    "atleast_1d",
    "squeeze",
    # selection / ordering
    "sort",
    "argsort",
    "lexsort",
    "partition",
    "argpartition",
    "median",
    "take",
    "take_along_axis",
    "nonzero",
    "flatnonzero",
    "isin",
    "unique",
    "searchsorted",
    # accumulation / reduction
    "cumsum",
    "sum",
    "prod",
    "mean",
    "max",
    "min",
    "argmax",
    "argmin",
    "all",
    "any",
    # element-wise (function-call form; also available as ufuncs)
    "abs",
    "sqrt",
    "sign",
    "maximum",
    "minimum",
    "clip",
    "isfinite",
    "isinf",
    "isnan",
    "diff",
    "linspace",
    "einsum",
)


class ArrayBackend:
    """A named namespace of array operations (NumPy-compatible signatures).

    Instances are built by registered factories and cached; ops are plain
    attributes, so ``backend.sort`` on the NumPy backend *is* ``np.sort``.
    Beyond :data:`ARRAY_OPS`, every backend carries:

    * ``norm`` — ``linalg.norm`` equivalent;
    * ``errstate`` — floating-point error-state context manager;
    * ``to_numpy(a)`` — materialize as a plain ``numpy.ndarray`` (the
      engine↔plugin boundary; zero-copy where possible);
    * ``from_numpy(a)`` / ``asarray(a)`` — enter backend-land;
    * ``default_rng(seed)`` — always a ``numpy.random.Generator`` (the
      repo-wide RNG rule: seeds mean the same thing on every backend);
    * ``float_dtype`` / ``int_dtype`` / ``bool_dtype`` — the dtype rule.
    """

    def __init__(self, name: str):
        self.name = str(name)
        self.float_dtype = np.float64
        self.int_dtype = np.int64
        self.bool_dtype = np.bool_
        self.default_rng = np.random.default_rng
        self.errstate = np.errstate

    def __repr__(self) -> str:
        return f"ArrayBackend({self.name!r})"


# -- built-in backend factories ------------------------------------------------


def _numpy_backend() -> ArrayBackend:
    """The default backend: ops are the NumPy functions themselves."""
    backend = ArrayBackend("numpy")
    for op in ARRAY_OPS:
        setattr(backend, op, getattr(np, op))
    backend.norm = np.linalg.norm
    backend.to_numpy = np.asarray
    backend.from_numpy = np.asarray
    return backend


def _strict_backend() -> ArrayBackend:
    from .strict import build_strict_backend

    return build_strict_backend(ArrayBackend, ARRAY_OPS)


def _cupy_backend() -> ArrayBackend:
    try:
        import cupy as cp  # noqa: F401
    except ImportError as error:
        raise ImportError(
            "repro backend 'cupy' requires the cupy package, which is not "
            "installed in this environment; install cupy matching your CUDA "
            "toolkit (e.g. cupy-cuda12x) or select REPRO_BACKEND=numpy"
        ) from error
    backend = ArrayBackend("cupy")
    for op in ARRAY_OPS:
        fn = getattr(cp, op, None)
        if fn is None:
            fn = _missing_op("cupy", op)
        setattr(backend, op, fn)
    backend.norm = cp.linalg.norm
    backend.errstate = np.errstate  # cupy computes without FP traps
    backend.to_numpy = cp.asnumpy
    backend.from_numpy = cp.asarray
    return backend


def _torch_backend() -> ArrayBackend:
    try:
        import torch
    except ImportError as error:
        raise ImportError(
            "repro backend 'torch' requires the torch package, which is not "
            "installed in this environment; pip install torch or select "
            "REPRO_BACKEND=numpy"
        ) from error
    # Experimental: torch's API diverges from NumPy in places (method
    # names, argument spellings); this mapping covers the ops the tensor
    # programs use and raises clearly for the rest.
    backend = ArrayBackend("torch")
    renames = {
        "asarray": torch.as_tensor,
        "take_along_axis": torch.take_along_dim,
        "concatenate": torch.concatenate,
        "nonzero": lambda a: tuple(torch.nonzero(a, as_tuple=True)),
        "flatnonzero": lambda a: torch.nonzero(torch.reshape(a, (-1,)), as_tuple=True)[0],
    }
    for op in ARRAY_OPS:
        fn = renames.get(op) or getattr(torch, op, None)
        if fn is None:
            fn = _missing_op("torch", op)
        setattr(backend, op, fn)
    backend.norm = torch.linalg.norm
    backend.errstate = np.errstate
    backend.to_numpy = lambda a: (
        a.detach().cpu().numpy() if isinstance(a, torch.Tensor) else np.asarray(a)
    )
    backend.from_numpy = torch.as_tensor
    backend.float_dtype = torch.float64
    return backend


def _missing_op(backend_name: str, op: str) -> Callable:
    def _raise(*args, **kwargs):
        raise NotImplementedError(
            f"backend {backend_name!r} does not provide op {op!r}; "
            "extend the backend mapping in repro.backend"
        )

    return _raise


# -- registry ------------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
#: explicit activation stack (``use_backend``); top wins over the default.
_ACTIVE: List[ArrayBackend] = []
#: lazily resolved REPRO_BACKEND default (``None`` = not yet resolved).
_DEFAULT: Optional[ArrayBackend] = None

#: environment variable naming the default backend (read once, lazily).
BACKEND_ENV_VAR = "REPRO_BACKEND"


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory is called at most once — the instance is cached.  This is
    the entry point for out-of-tree backends (a JAX shim, a sharded
    backend, ...): register before first use and select via
    ``REPRO_BACKEND`` or :func:`use_backend`.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> List[str]:
    """Sorted names of every registered backend (installed or not)."""
    return sorted(_FACTORIES)


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """The cached backend instance for ``name`` (default: the active one)."""
    if name is None:
        return active_backend()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown array backend {name!r}; registered: "
            f"{', '.join(available_backends())}"
        ) from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    return instance


def active_backend() -> ArrayBackend:
    """The backend ``xp`` currently resolves to.

    Precedence: the innermost :func:`use_backend` scope, else the
    ``REPRO_BACKEND`` environment default (resolved once on first use,
    ``numpy`` when unset).
    """
    if _ACTIVE:
        return _ACTIVE[-1]
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = get_backend(os.environ.get(BACKEND_ENV_VAR, "numpy"))
    return _DEFAULT


def _reset_default_backend() -> None:
    """Forget the resolved ``REPRO_BACKEND`` default (test hook)."""
    global _DEFAULT
    _DEFAULT = None


@contextmanager
def use_backend(backend: Union[str, ArrayBackend]) -> Iterator[ArrayBackend]:
    """Scope ``xp`` to ``backend`` for the duration of the ``with`` block.

    Nests: the innermost scope wins; leaving restores the previous one.
    Engines resolve ops per call through :data:`xp`, so a backend switch
    between runs (never mid-run) is safe.
    """
    instance = backend if isinstance(backend, ArrayBackend) else get_backend(backend)
    _ACTIVE.append(instance)
    try:
        yield instance
    finally:
        _ACTIVE.pop()


class _ActiveBackendProxy:
    """Forwards attribute access to the active backend — the ``xp`` object."""

    __slots__ = ()

    def __getattr__(self, item: str):
        return getattr(active_backend(), item)

    def __repr__(self) -> str:
        return f"<xp -> {active_backend()!r}>"


#: the array namespace the tensor programs resolve every dispatched op
#: through; forwards to :func:`active_backend` per access.
xp = _ActiveBackendProxy()


register_backend("numpy", _numpy_backend)
register_backend("strict", _strict_backend)
register_backend("cupy", _cupy_backend)
register_backend("torch", _torch_backend)


# Re-exported for isinstance checks / except clauses without importing the
# submodule (the strict backend itself is only built on first use).
from .strict import BackendBypassError  # noqa: E402
