"""repro — Approximate Byzantine Fault-Tolerance in Distributed Optimization.

A full reproduction of Liu, Gupta & Vaidya (PODC 2021): the (f, ε)-resilience
/ (2f, ε)-redundancy theory, the Theorem-2 exact algorithm, the distributed
gradient-descent method with CGE/CWTM gradient-filters, a synchronous
server-based and peer-to-peer (Byzantine broadcast) system simulator, a
Byzantine attack zoo, and the paper's evaluation workloads.

Quickstart::

    import numpy as np
    from repro import (
        CGEAggregator, GradientReverseAttack, BoxSet, paper_schedule, run_dgd,
    )
    from repro.functions import SquaredDistanceCost

    costs = [SquaredDistanceCost(np.array([float(i), 0.0])) for i in range(5)]
    trace = run_dgd(
        costs, faulty_ids=[4], aggregator=CGEAggregator(f=1),
        attack=GradientReverseAttack(),
        constraint=BoxSet.symmetric(100.0, dim=2),
        schedule=paper_schedule(), initial_estimate=np.zeros(2),
        iterations=300,
    )
    print(trace.final_estimate)
"""

from .aggregators import (
    CGEAggregator,
    CWTMAggregator,
    GradientAggregator,
    MeanAggregator,
    available_aggregators,
    make_aggregator,
)
from .attacks import (
    ByzantineAttack,
    GradientReverseAttack,
    RandomGaussianAttack,
    available_attacks,
    make_attack,
)
from .core import (
    cge_bound,
    cge_bound_v2,
    cwtm_bound,
    evaluate_resilience,
    exact_resilient_argmin,
    hausdorff_distance,
    measure_constants,
    measure_redundancy,
    resilience_is_feasible,
)
from .distsys import (
    PeerToPeerSimulator,
    SynchronousSimulator,
    byzantine_broadcast,
    run_dgd,
)
from .functions import CostFunction
from .optim import BoxSet, HarmonicSchedule, paper_schedule

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CostFunction",
    "GradientAggregator",
    "MeanAggregator",
    "CGEAggregator",
    "CWTMAggregator",
    "make_aggregator",
    "available_aggregators",
    "ByzantineAttack",
    "GradientReverseAttack",
    "RandomGaussianAttack",
    "make_attack",
    "available_attacks",
    "measure_redundancy",
    "evaluate_resilience",
    "resilience_is_feasible",
    "exact_resilient_argmin",
    "hausdorff_distance",
    "measure_constants",
    "cge_bound",
    "cge_bound_v2",
    "cwtm_bound",
    "SynchronousSimulator",
    "run_dgd",
    "PeerToPeerSimulator",
    "byzantine_broadcast",
    "BoxSet",
    "HarmonicSchedule",
    "paper_schedule",
]
