"""The recorder protocol: spans, metrics and structured events.

Every engine and the sweep orchestrator report what they are doing
through one small surface — a :class:`Recorder` — and pay (near) nothing
when nobody is listening:

* **Hierarchical spans** — ``sweep → cell → engine run → round chunk``.
  :meth:`Recorder.span` opens a context manager that emits a
  ``span_open``/``span_close`` event pair with a monotonic duration;
  nested spans record their parent id, so a post-mortem can reconstruct
  the whole execution tree from the flat event stream.

* **Counters, gauges and histograms** — rounds, stalls, retries, masked
  kernel calls, queue depths, per-stage wall time.  Metrics accumulate
  in-process (plain dict updates, no event per increment) and are
  flushed as one ``metrics`` event by :meth:`Recorder.flush_metrics`;
  flushing *resets* the accumulators, so summing ``metrics`` events over
  a stream never double-counts.

* **Structured events** — one JSON object per line in the
  :class:`JsonlSink`, every event stamped with the versioned
  :data:`EVENT_SCHEMA` so readers can reject streams they do not
  understand (the same versioning discipline as the checkpoint
  payloads).

* **An injectable monotonic clock** — ``Recorder(clock=...)`` takes any
  zero-argument float callable.  Tests inject a fake clock and get
  bit-stable event streams; production uses ``time.perf_counter``.

The **zero-overhead contract**: the module-level :data:`NULL_RECORDER`
(a :class:`NullRecorder`) is the default everywhere.  Its ``enabled``
flag is ``False`` and every method is a no-op, so a hot tensor loop
guards its instrumentation with one attribute check per round
(``if recorder.enabled``) and otherwise runs the exact pre-telemetry
code path.  ``BENCH_telemetry.json`` measures that guard and CI gates
it at ≤3% on the engine bench.

The **determinism contract**: a recorder observes; it never touches an
engine's RNG streams, estimates, or traces.  Trajectories are
bit-identical with recording on or off
(``tests/distsys/test_telemetry_determinism.py``), which is what makes
telemetry safe to leave attached to a production sweep.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Dict, IO, List, Optional, Sequence, Union

__all__ = [
    "EVENT_SCHEMA",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "ProgressSink",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "set_current_recorder",
    "use_recorder",
]

#: Versioned schema tag stamped on every emitted event, like the
#: checkpoint payloads' ``repro/checkpoint-cell/v1``.
EVENT_SCHEMA = "repro/telemetry-event/v1"

#: Event keys owned by the recorder itself; ``emit`` fields may not
#: shadow them (they would corrupt the stream's structure).
_RESERVED_KEYS = frozenset(
    {"schema", "type", "t", "span", "parent", "name", "duration", "status"}
)


# -- sinks ---------------------------------------------------------------------


class EventSink:
    """Where emitted events go; one recorder fans out to many sinks."""

    def write(self, event: Dict[str, object]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further writes are undefined."""


class MemorySink(EventSink):
    """Collect events in a list — the test and summarize-in-process sink."""

    def __init__(self):
        self.events: List[Dict[str, object]] = []

    def write(self, event: Dict[str, object]) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """One JSON document per line, flushed per event.

    Accepts a path (opened/owned by the sink) or an open text stream
    (borrowed; ``close`` only flushes it).  Per-event flushing means a
    ``kill -9`` loses at most the line being written — the reader side
    (:func:`repro.telemetry.summarize.read_events`) tolerates a torn
    final line the same way checkpoint reads tolerate torn cells.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            self._stream: IO[str] = open(target, "w")
            self._owned = True
        else:
            self._stream = target
            self._owned = False

    def write(self, event: Dict[str, object]) -> None:
        self._stream.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._owned:
            self._stream.close()
        else:
            try:
                self._stream.flush()
            except ValueError:  # borrowed stream already closed
                pass


class ProgressSink(EventSink):
    """Human-oriented live progress lines for the noteworthy events.

    Renders the cell lifecycle and engine progress (``round_chunk``)
    onto ``stream`` (stderr by default) and ignores the rest of the
    stream — the JSONL sink is the complete record; this one is for
    watching a sweep live from a terminal.
    """

    #: Lifecycle event types worth a terminal line.
    NOTEWORTHY = frozenset(
        {
            "cell_scheduled",
            "cell_started",
            "cell_cached",
            "cell_skipped",
            "cell_retry",
            "cell_timeout",
            "cell_completed",
            "cell_failed",
            "cell_heartbeat",
            "cell_quarantined",
            "round_chunk",
            "checkpoint_corrupt",
            "trial_quarantined",
        }
    )

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream if stream is not None else sys.stderr

    def write(self, event: Dict[str, object]) -> None:
        kind = event.get("type")
        if kind not in self.NOTEWORTHY:
            return
        cell = event.get("cell")
        detail: List[str] = []
        for key in ("attempt", "attempts", "error", "elapsed", "seconds",
                    "iteration", "rounds_per_s", "delay", "key",
                    "trial", "round", "reason"):
            if key in event:
                value = event[key]
                if isinstance(value, float):
                    value = f"{value:.3g}"
                detail.append(f"{key}={value}")
        prefix = f"[{str(kind)[5:] if str(kind).startswith('cell_') else kind}]"
        target = f" {cell}" if cell else ""
        suffix = f" ({', '.join(detail)})" if detail else ""
        try:
            self.stream.write(f"{prefix}{target}{suffix}\n")
            self.stream.flush()
        except (OSError, ValueError):
            # Progress display is best-effort: a closed/broken terminal
            # stream must never take the sweep down with it.
            pass


# -- spans ---------------------------------------------------------------------


class _Span:
    """Context manager emitting a ``span_open``/``span_close`` pair."""

    __slots__ = ("recorder", "name", "fields", "span_id", "opened_at")

    def __init__(self, recorder: "Recorder", name: str, fields: Dict[str, object]):
        self.recorder = recorder
        self.name = name
        self.fields = fields
        self.span_id: Optional[str] = None
        self.opened_at = 0.0

    def __enter__(self) -> "_Span":
        self.opened_at = self.recorder.clock()
        self.span_id = self.recorder._open_span(self.name, self.fields)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.recorder._close_span(
            self.name,
            self.span_id,
            self.recorder.clock() - self.opened_at,
            status="error" if exc_type is not None else "ok",
            error=None if exc is None else f"{exc_type.__name__}: {exc}",
        )
        return False


class _NullSpan:
    """The shared do-nothing span of the :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: The four protocol stages, in loop order — the keys of the per-stage
#: wall-time histograms every instrumented engine populates.
STAGES = ("observe", "fabricate", "aggregate", "project")


def _metric_key(name: str, labels: Dict[str, object]) -> str:
    """Flatten a metric name plus labels into one stable string key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Recorder:
    """Collects spans, metrics and events; fans events out to sinks.

    One recorder is one *stream*: a single process's (or worker's)
    ordered sequence of events plus its metric accumulators.  Sharing a
    recorder across threads is supported for the metric dictionaries
    (guarded updates) but span nesting assumes one logical execution —
    exactly the engines' single-threaded reality.

    ``context`` entries are merged into every emitted event (e.g. the
    orchestrator stamps worker streams with their cell key), and
    ``span_prefix`` namespaces span ids so forwarded worker streams can
    never collide with the supervisor's own spans.
    """

    enabled = True

    def __init__(
        self,
        sinks: Sequence[EventSink] = (),
        clock: Optional[Callable[[], float]] = None,
        context: Optional[Dict[str, object]] = None,
        span_prefix: str = "",
        progress_every: Optional[int] = None,
    ):
        if progress_every is not None and progress_every < 1:
            raise ValueError(
                f"progress_every must be >= 1, got {progress_every!r}"
            )
        self.sinks: List[EventSink] = list(sinks)
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        self.context = dict(context or {})
        self.span_prefix = span_prefix
        self.progress_every = progress_every
        self._span_stack: List[str] = []
        self._next_span = 1
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        #: name -> [count, total, min, max]
        self._histograms: Dict[str, List[float]] = {}
        self._rounds_in_chunk = 0
        self._chunk_seconds = 0.0

    # -- event plumbing ---------------------------------------------------
    def _write(self, event: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.write(event)

    def forward(self, event: Dict[str, object]) -> None:
        """Pass a fully-formed event through to this recorder's sinks.

        Used by the orchestrator's supervisor to merge event streams
        arriving from worker processes — the events keep their own span
        ids (already namespaced by the worker's ``span_prefix``) and
        context.
        """
        self._write(event)

    def emit(self, type_: str, **fields: object) -> None:
        """Emit one structured event at the current span."""
        event: Dict[str, object] = {
            "schema": EVENT_SCHEMA,
            "type": type_,
            "t": self.clock(),
        }
        if self._span_stack:
            event["span"] = self._span_stack[-1]
        if self.context:
            event.update(self.context)
        for key, value in fields.items():
            if key in _RESERVED_KEYS:
                raise ValueError(f"field {key!r} shadows a reserved event key")
            event[key] = value
        self._write(event)

    # -- spans ------------------------------------------------------------
    def span(self, name: str, **fields: object) -> _Span:
        """A context manager recording one hierarchical span."""
        return _Span(self, name, fields)

    def _open_span(self, name: str, fields: Dict[str, object]) -> str:
        span_id = f"{self.span_prefix}{self._next_span}"
        self._next_span += 1
        event: Dict[str, object] = {
            "schema": EVENT_SCHEMA,
            "type": "span_open",
            "t": self.clock(),
            "span": span_id,
            "name": name,
        }
        if self._span_stack:
            event["parent"] = self._span_stack[-1]
        if self.context:
            event.update(self.context)
        event.update(fields)
        self._span_stack.append(span_id)
        self._write(event)
        return span_id

    def _close_span(
        self,
        name: str,
        span_id: Optional[str],
        duration: float,
        status: str,
        error: Optional[str],
    ) -> None:
        if self._span_stack and self._span_stack[-1] == span_id:
            self._span_stack.pop()
        event: Dict[str, object] = {
            "schema": EVENT_SCHEMA,
            "type": "span_close",
            "t": self.clock(),
            "span": span_id,
            "name": name,
            "duration": duration,
            "status": status,
        }
        if self.context:
            event.update(self.context)
        if error is not None:
            event["error"] = error
        self._write(event)

    # -- metrics ----------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to a monotonically-increasing counter."""
        key = _metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a point-in-time gauge (queue depth, cells running, ...)."""
        with self._lock:
            self._gauges[_metric_key(name, labels)] = float(value)

    def observe_value(self, name: str, value: float, **labels: object) -> None:
        """Record one histogram observation (count/total/min/max)."""
        key = _metric_key(name, labels)
        with self._lock:
            stats = self._histograms.get(key)
            if stats is None:
                self._histograms[key] = [1, value, value, value]
            else:
                stats[0] += 1
                stats[1] += value
                if value < stats[2]:
                    stats[2] = value
                if value > stats[3]:
                    stats[3] = value

    def stage_times(
        self,
        observe: float,
        fabricate: float,
        aggregate: float,
        project: float,
        iteration: int,
    ) -> None:
        """The engine hot-path entry: one call per recorded round.

        Updates the four per-stage wall-time histograms plus the round
        counter without emitting any event, and — when ``progress_every``
        is set — emits a ``round_chunk`` progress event every that many
        rounds with the chunk's rounds/s.
        """
        with self._lock:
            for stage, dt in (
                ("observe", observe),
                ("fabricate", fabricate),
                ("aggregate", aggregate),
                ("project", project),
            ):
                key = f"stage_seconds{{stage={stage}}}"
                stats = self._histograms.get(key)
                if stats is None:
                    self._histograms[key] = [1, dt, dt, dt]
                else:
                    stats[0] += 1
                    stats[1] += dt
                    if dt < stats[2]:
                        stats[2] = dt
                    if dt > stats[3]:
                        stats[3] = dt
            self._counters["rounds"] = self._counters.get("rounds", 0) + 1
        if self.progress_every is not None:
            self._rounds_in_chunk += 1
            self._chunk_seconds += observe + fabricate + aggregate + project
            if self._rounds_in_chunk >= self.progress_every:
                rate = (
                    self._rounds_in_chunk / self._chunk_seconds
                    if self._chunk_seconds > 0
                    else float("inf")
                )
                self.emit(
                    "round_chunk",
                    iteration=int(iteration),
                    rounds=self._rounds_in_chunk,
                    rounds_per_s=rate,
                )
                self._rounds_in_chunk = 0
                self._chunk_seconds = 0.0

    def metrics_snapshot(self) -> Dict[str, object]:
        """The current accumulators, without flushing them."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": stats[0],
                        "total": stats[1],
                        "min": stats[2],
                        "max": stats[3],
                    }
                    for name, stats in self._histograms.items()
                },
            }

    def flush_metrics(self) -> None:
        """Emit a ``metrics`` event and reset the accumulators.

        Flushing is delta-style on purpose: every ``metrics`` event in a
        stream holds only what accrued since the previous flush, so
        summarize tooling can *sum* them — across cells, workers and
        chunks — without double counting.
        """
        with self._lock:
            if not (self._counters or self._gauges or self._histograms):
                return
            snapshot = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": stats[0],
                        "total": stats[1],
                        "min": stats[2],
                        "max": stats[3],
                    }
                    for name, stats in self._histograms.items()
                },
            }
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        self.emit("metrics", **snapshot)

    def close(self) -> None:
        """Flush pending metrics and close every owned sink."""
        self.flush_metrics()
        for sink in self.sinks:
            sink.close()


class NullRecorder(Recorder):
    """The default recorder: disabled, and every operation is a no-op.

    Hot loops branch on :attr:`enabled` once per round; everything else
    (spans around whole runs, counters in cold I/O paths) may simply
    call through — each call lands on one of these empty methods.
    """

    enabled = False

    def __init__(self):
        super().__init__(sinks=(), clock=time.perf_counter)

    def emit(self, type_: str, **fields: object) -> None:
        pass

    def forward(self, event: Dict[str, object]) -> None:
        pass

    def span(self, name: str, **fields: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def count(self, name: str, value: float = 1, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe_value(self, name: str, value: float, **labels: object) -> None:
        pass

    def stage_times(
        self,
        observe: float,
        fabricate: float,
        aggregate: float,
        project: float,
        iteration: int,
    ) -> None:
        pass

    def flush_metrics(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide default recorder; engines and the checkpoint layer
#: fall back to it so un-instrumented callers pay only no-op calls.
NULL_RECORDER = NullRecorder()

_current: Recorder = NULL_RECORDER


def current_recorder() -> Recorder:
    """The process-global active recorder (default: :data:`NULL_RECORDER`).

    Worker processes install their pipe-backed recorder here so sweep
    workers, engines and the checkpoint store all report into the same
    stream without threading a recorder through every signature.
    """
    return _current


def set_current_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install the process-global recorder; returns the previous one."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


class use_recorder:
    """Context manager scoping the process-global recorder."""

    def __init__(self, recorder: Optional[Recorder]):
        self.recorder = recorder
        self._previous: Optional[Recorder] = None

    def __enter__(self) -> Recorder:
        self._previous = set_current_recorder(self.recorder)
        return current_recorder()

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_current_recorder(self._previous)
        return False
