"""Post-mortem analysis of a telemetry event stream.

Reads the JSONL stream a :class:`~repro.telemetry.recorder.JsonlSink`
produced (tolerating a torn final line from a killed writer), folds it
into a :class:`TelemetrySummary`, and renders the operator-facing views:

* **stage wall-time breakdown** — the observe/fabricate/aggregate/project
  histograms summed across every ``metrics`` event (metric flushes are
  delta-style, so summing is exact);
* **slowest cells** — every closed ``cell`` span ranked by duration,
  with attempts and status;
* **retry histogram** — how many cells needed 1, 2, ... attempts, plus
  the retry/timeout event counts;
* **event counts** — the stream's composition by event type.

The reader rejects events whose ``schema`` is not the
:data:`~repro.telemetry.recorder.EVENT_SCHEMA` this code understands
(counted, never silently mixed in), mirroring the checkpoint layer's
versioning discipline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, Iterable, List, Tuple, Union

from .recorder import EVENT_SCHEMA, STAGES

__all__ = [
    "CellTiming",
    "TelemetrySummary",
    "read_events",
    "summarize_events",
    "summarize_file",
    "render_summary",
]


@dataclass
class CellTiming:
    """One cell's closed span: how long it ran and how it ended."""

    cell: str
    seconds: float
    status: str = "ok"
    attempts: int = 1


@dataclass
class TelemetrySummary:
    """The folded view of one event stream."""

    events: int = 0
    unreadable_lines: int = 0
    foreign_schema: int = 0
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: summed delta-metrics: counters by name.
    counters: Dict[str, float] = field(default_factory=dict)
    #: merged histograms: name -> {count, total, min, max}.
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: last seen value per gauge name.
    gauges: Dict[str, float] = field(default_factory=dict)
    cells: List[CellTiming] = field(default_factory=list)
    #: attempts -> number of cells that needed that many.
    retry_histogram: Dict[int, int] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    failed_cells: List[str] = field(default_factory=list)

    @property
    def stage_seconds(self) -> Dict[str, Dict[str, float]]:
        """The per-stage wall-time histograms, in protocol-loop order."""
        out: Dict[str, Dict[str, float]] = {}
        for stage in STAGES:
            stats = self.histograms.get(f"stage_seconds{{stage={stage}}}")
            if stats is not None:
                out[stage] = stats
        return out

    def slowest_cells(self, top: int = 10) -> List[CellTiming]:
        """The ``top`` longest-running cells, slowest first."""
        return sorted(self.cells, key=lambda c: -c.seconds)[: max(0, top)]


def read_events(
    source: Union[str, Path, IO[str]]
) -> Tuple[List[Dict[str, object]], int]:
    """Parse a JSONL event stream; returns (events, unreadable lines).

    A line that fails to parse — typically the torn final line of a
    killed writer — is counted and skipped, never fatal: a crashed
    sweep's stream is exactly when a post-mortem matters most.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text().splitlines()
    events: List[Dict[str, object]] = []
    unreadable = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError:
            unreadable += 1
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            unreadable += 1
    return events, unreadable


def _merge_metrics(summary: TelemetrySummary, event: Dict[str, object]) -> None:
    counters = event.get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            summary.counters[name] = summary.counters.get(name, 0) + value
    gauges = event.get("gauges")
    if isinstance(gauges, dict):
        summary.gauges.update(gauges)
    histograms = event.get("histograms")
    if isinstance(histograms, dict):
        for name, stats in histograms.items():
            merged = summary.histograms.get(name)
            if merged is None:
                summary.histograms[name] = dict(stats)
            else:
                merged["count"] += stats["count"]
                merged["total"] += stats["total"]
                merged["min"] = min(merged["min"], stats["min"])
                merged["max"] = max(merged["max"], stats["max"])


def summarize_events(
    events: Iterable[Dict[str, object]], unreadable: int = 0
) -> TelemetrySummary:
    """Fold an event sequence into a :class:`TelemetrySummary`."""
    summary = TelemetrySummary(unreadable_lines=unreadable)
    attempts_by_cell: Dict[str, int] = {}
    #: span id -> cell name, captured at span_open: worker streams carry
    #: the cell in every event's context, but the in-process path passes
    #: it as a span field, which lands on the open event only.
    cell_spans: Dict[str, str] = {}
    for event in events:
        if event.get("schema") != EVENT_SCHEMA:
            summary.foreign_schema += 1
            continue
        summary.events += 1
        kind = str(event.get("type"))
        summary.event_counts[kind] = summary.event_counts.get(kind, 0) + 1
        if kind == "metrics":
            _merge_metrics(summary, event)
        elif kind == "span_open" and event.get("name") == "cell":
            if "cell" in event:
                cell_spans[str(event.get("span"))] = str(event["cell"])
        elif kind == "span_close" and event.get("name") == "cell":
            cell = str(
                event.get(
                    "cell",
                    event.get(
                        "key", cell_spans.get(str(event.get("span")), "?")
                    ),
                )
            )
            summary.cells.append(
                CellTiming(
                    cell=cell,
                    seconds=float(event.get("duration", 0.0)),
                    status=str(event.get("status", "ok")),
                    attempts=int(attempts_by_cell.get(cell, 1)),
                )
            )
        elif kind == "cell_started":
            cell = str(event.get("cell", "?"))
            attempts_by_cell[cell] = max(
                attempts_by_cell.get(cell, 0), int(event.get("attempt", 1))
            )
        elif kind == "cell_retry":
            summary.retries += 1
        elif kind == "cell_timeout":
            summary.timeouts += 1
        elif kind in ("cell_completed", "cell_failed"):
            cell = str(event.get("cell", "?"))
            attempts = int(
                event.get("attempts", attempts_by_cell.get(cell, 1))
            )
            attempts_by_cell[cell] = attempts
            summary.retry_histogram[attempts] = (
                summary.retry_histogram.get(attempts, 0) + 1
            )
            if kind == "cell_failed":
                summary.failed_cells.append(cell)
    return summary


def summarize_file(path: Union[str, Path]) -> TelemetrySummary:
    """Read and fold one JSONL event file."""
    events, unreadable = read_events(path)
    return summarize_events(events, unreadable)


def _fmt_seconds(value: float) -> str:
    return f"{value:.6g}"


def render_summary(summary: TelemetrySummary, top: int = 10) -> str:
    """The operator-facing text report of one event stream."""
    # Deferred import: repro.distsys.engine imports repro.telemetry, and
    # repro.experiments imports repro.distsys — a module-level import
    # here would close that cycle during package initialization.
    from ..experiments.reporting import format_table

    blocks: List[str] = []

    header = (
        f"telemetry summary — {summary.events} events"
        + (
            f", {summary.unreadable_lines} unreadable line(s)"
            if summary.unreadable_lines
            else ""
        )
        + (
            f", {summary.foreign_schema} foreign-schema event(s) ignored"
            if summary.foreign_schema
            else ""
        )
    )
    blocks.append(header)

    stages = summary.stage_seconds
    if stages:
        rows = [
            [
                stage,
                stats["count"],
                _fmt_seconds(stats["total"]),
                _fmt_seconds(stats["total"] / stats["count"]),
                _fmt_seconds(stats["max"]),
            ]
            for stage, stats in stages.items()
        ]
        total = sum(stats["total"] for stats in stages.values())
        rounds = summary.counters.get("rounds")
        title = "Stage wall time (summed across engines)"
        if rounds:
            title += (
                f" — {int(rounds)} rounds,"
                f" {rounds / total:.1f} rounds/s"
                if total > 0
                else f" — {int(rounds)} rounds"
            )
        blocks.append(
            format_table(
                headers=["stage", "calls", "total s", "mean s", "max s"],
                rows=rows,
                title=title,
            )
        )

    if summary.cells:
        rows = [
            [c.cell, _fmt_seconds(c.seconds), c.attempts, c.status]
            for c in summary.slowest_cells(top)
        ]
        blocks.append(
            format_table(
                headers=["cell", "seconds", "attempts", "status"],
                rows=rows,
                title=f"Slowest cells (top {min(top, len(summary.cells))})",
            )
        )

    if summary.retry_histogram:
        rows = [
            [attempts, count]
            for attempts, count in sorted(summary.retry_histogram.items())
        ]
        title = (
            f"Retry histogram — {summary.retries} retries, "
            f"{summary.timeouts} timeouts"
        )
        blocks.append(
            format_table(headers=["attempts", "cells"], rows=rows, title=title)
        )

    if summary.failed_cells:
        blocks.append(
            "Failed cells:\n"
            + "\n".join(f"  - {cell}" for cell in summary.failed_cells)
        )

    interesting = {
        name: value
        for name, value in sorted(summary.counters.items())
        if not name.startswith("stage_seconds")
    }
    if interesting:
        blocks.append(
            format_table(
                headers=["counter", "value"],
                rows=[[n, v] for n, v in interesting.items()],
                title="Counters",
            )
        )

    if summary.event_counts:
        blocks.append(
            format_table(
                headers=["event type", "count"],
                rows=[
                    [kind, count]
                    for kind, count in sorted(summary.event_counts.items())
                ],
                title="Event counts",
            )
        )

    return "\n\n".join(blocks)
