"""Zero-overhead observability: spans, metrics and structured events.

The package behind the ``--telemetry-out``/``--progress`` CLI flags and
the ``telemetry summarize`` subcommand.  See
:mod:`repro.telemetry.recorder` for the recorder protocol and the
zero-overhead / determinism contracts, and
:mod:`repro.telemetry.summarize` for post-mortem analysis of a recorded
stream.
"""

from .recorder import (
    EVENT_SCHEMA,
    NULL_RECORDER,
    EventSink,
    JsonlSink,
    MemorySink,
    NullRecorder,
    ProgressSink,
    Recorder,
    current_recorder,
    set_current_recorder,
    use_recorder,
)
from .summarize import (
    CellTiming,
    TelemetrySummary,
    read_events,
    render_summary,
    summarize_events,
    summarize_file,
)

__all__ = [
    "EVENT_SCHEMA",
    "NULL_RECORDER",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NullRecorder",
    "ProgressSink",
    "Recorder",
    "current_recorder",
    "set_current_recorder",
    "use_recorder",
    "CellTiming",
    "TelemetrySummary",
    "read_events",
    "render_summary",
    "summarize_events",
    "summarize_file",
]
