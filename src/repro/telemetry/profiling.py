"""Shared cProfile harness plumbing for the benchmark profile scripts.

``benchmarks/profile_async.py`` and
``benchmarks/profile_decentralized_delay.py`` run one sweep under
cProfile and print/persist a hotspot table; the timing, formatting and
persistence boilerplate lives here so the scripts stay one-call thin
and future harnesses (new engines, new sweeps) get the same report
shape for free.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from pathlib import Path
from typing import Callable, Tuple, Union

__all__ = ["profile_callable", "hotspot_report", "persist_report"]


def profile_callable(
    fn: Callable[[], object], top: int = 20
) -> Tuple[object, str, float]:
    """Run ``fn`` under cProfile; returns (result, hotspot table, seconds).

    The hotspot table is ``pstats`` output sorted by cumulative time,
    truncated to the ``top`` entries — the shape both profile scripts
    historically printed.
    """
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    seconds = time.perf_counter() - started
    return result, hotspot_report(profiler, top), seconds


def hotspot_report(profiler: cProfile.Profile, top: int = 20) -> str:
    """The top cumulative hotspots of a finished profiler, as text."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def persist_report(report: str, out: Union[str, Path]) -> Path:
    """Write a profile report to ``out`` (creating parent directories)."""
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report + "\n")
    return path
