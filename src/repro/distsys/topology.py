"""Communication topologies for the topology-aware execution core.

The server-based architecture of the source paper is a *complete* network:
every agent talks to the coordinator, which is equivalent to a complete
communication graph.  The companion decentralized works (arXiv:2101.12316,
arXiv:2009.14763) study sparse graphs where each agent only hears its
in-neighborhood.  :class:`CommunicationTopology` captures that structure —
a boolean adjacency matrix plus the per-node neighborhood gather indices
the batched engines need — and a small registry provides the standard
families: complete, ring (with a hop radius), 2-D torus, random regular and
Erdős–Rényi.

Conventions:

* ``adjacency[i, j] is True`` ⇔ agent ``i`` *receives from* agent ``j``;
* the diagonal is always ``False`` — engines add each agent's own message
  through the *closed* neighborhood helpers;
* all built-in families are undirected (symmetric adjacency), but the class
  accepts arbitrary digraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

__all__ = [
    "CommunicationTopology",
    "complete_topology",
    "ring_topology",
    "torus_topology",
    "random_regular_topology",
    "erdos_renyi_topology",
    "make_topology",
    "available_topologies",
    "topology_descriptions",
]


@dataclass(frozen=True)
class CommunicationTopology:
    """A named communication graph over ``n`` agents.

    ``adjacency[i, j]`` means agent ``i`` receives agent ``j``'s messages.
    """

    name: str
    adjacency: np.ndarray

    def __post_init__(self):
        arr = np.asarray(self.adjacency, dtype=bool)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(
                f"adjacency must be square, got shape {arr.shape}"
            )
        if arr.shape[0] < 1:
            raise ValueError("topology needs at least one agent")
        if np.any(np.diag(arr)):
            raise ValueError(
                "adjacency diagonal must be False (self-messages are "
                "implicit through the closed neighborhoods)"
            )
        object.__setattr__(self, "adjacency", arr)

    # -- basic structure --------------------------------------------------
    @property
    def n(self) -> int:
        """Number of agents."""
        return int(self.adjacency.shape[0])

    @property
    def in_degrees(self) -> np.ndarray:
        """Open in-degree of every agent (self excluded), shape ``(n,)``."""
        return self.adjacency.sum(axis=1)

    @property
    def closed_in_degrees(self) -> np.ndarray:
        """Closed in-degree (self included) of every agent, shape ``(n,)``."""
        return self.in_degrees + 1

    @property
    def is_regular(self) -> bool:
        """Whether every agent has the same in-degree."""
        degrees = self.in_degrees
        return bool(np.all(degrees == degrees[0]))

    @property
    def is_complete(self) -> bool:
        """Whether every agent hears every other agent."""
        return bool(np.all(self.in_degrees == self.n - 1))

    def in_neighbors(self, agent: int) -> np.ndarray:
        """Ids whose messages ``agent`` receives (self excluded), ascending."""
        return np.flatnonzero(self.adjacency[agent])

    def closed_in_neighbors(self, agent: int) -> np.ndarray:
        """Ascending in-neighborhood of ``agent`` including itself."""
        row = self.adjacency[agent].copy()
        row[agent] = True
        return np.flatnonzero(row)

    def out_neighbors(self, agent: int) -> np.ndarray:
        """Ids that receive ``agent``'s messages (self excluded), ascending."""
        return np.flatnonzero(self.adjacency[:, agent])

    # -- batched gather structure -----------------------------------------
    # The gather/edge structures are pure functions of the (immutable)
    # adjacency, and the engines consult them per round — the delay-tolerant
    # engines in particular rebuild nothing: all three accessors compute
    # once on first use and cache on the frozen instance.  Cached arrays are
    # marked read-only; callers needing a mutable copy must copy explicitly.

    def neighbor_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Compressed (CSR) closed in-neighborhood storage.

        Returns ``(indptr, indices)``: agent ``i``'s closed
        in-neighborhood, ascending, is
        ``indices[indptr[i] : indptr[i + 1]]``.  O(n + E) memory — the
        scalable companion of the padded :meth:`neighborhoods` gather at
        large ``n``, where the dense ``(n, k)`` padding wastes
        ``k - deg(i)`` slots per row on irregular graphs.  Computed once
        and cached; the returned arrays are read-only.
        """
        cached = self.__dict__.get("_neighbor_csr_cache")
        if cached is None:
            closed = self.adjacency.copy()
            np.fill_diagonal(closed, True)
            # np.nonzero is row-major, so the per-row column runs are
            # already ascending — exactly closed_in_neighbors(i) per row.
            rows, cols = np.nonzero(closed)
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(closed.sum(axis=1), out=indptr[1:])
            indices = cols.astype(np.int64)
            indptr.setflags(write=False)
            indices.setflags(write=False)
            cached = (indptr, indices)
            object.__setattr__(self, "_neighbor_csr_cache", cached)
        return cached

    def degree_groups(self) -> List[Tuple[int, np.ndarray]]:
        """Agents grouped by closed in-degree, ascending degree.

        Returns ``[(degree, agent_ids), ...]`` with ``agent_ids``
        ascending.  The decentralized engines dispatch their
        neighborhood kernels per group, so a mostly-regular graph with a
        few irregular nodes pays the ragged (masked) path only for those
        nodes.  Computed once and cached; the id arrays are read-only.
        """
        cached = self.__dict__.get("_degree_groups_cache")
        if cached is None:
            degrees = self.closed_in_degrees
            values, inverse = np.unique(degrees, return_inverse=True)
            groups: List[Tuple[int, np.ndarray]] = []
            for g, degree in enumerate(values):
                ids = np.flatnonzero(inverse == g)
                ids.setflags(write=False)
                groups.append((int(degree), ids))
            cached = groups
            object.__setattr__(self, "_degree_groups_cache", cached)
        return cached

    def neighborhoods(self) -> Tuple[np.ndarray, np.ndarray]:
        """Padded closed-neighborhood gather indices for the batch engines.

        Returns ``(index, mask)`` of shape ``(n, k)`` with
        ``k = max closed in-degree``: row ``i`` lists agent ``i``'s closed
        in-neighborhood ascending, padded with ``0`` where ``mask`` is
        ``False``.  Gathering a message tensor ``(S, n, d)`` through
        ``index`` yields the ``(S, n, k, d)`` neighborhood stacks consumed
        by the neighborhood-wise gradient filters.  Built from the CSR
        storage in one scatter (no per-agent Python loop).  Computed once
        and cached; the returned arrays are read-only.
        """
        cached = self.__dict__.get("_neighborhoods_cache")
        if cached is None:
            indptr, indices = self.neighbor_csr()
            counts = np.diff(indptr)
            k = int(counts.max())
            index = np.zeros((self.n, k), dtype=int)
            mask = np.zeros((self.n, k), dtype=bool)
            rows = np.repeat(np.arange(self.n), counts)
            slots = np.arange(indices.size) - np.repeat(indptr[:-1], counts)
            index[rows, slots] = indices
            mask[rows, slots] = True
            index.setflags(write=False)
            mask.setflags(write=False)
            cached = (index, mask)
            object.__setattr__(self, "_neighborhoods_cache", cached)
        return cached

    def directed_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The graph's directed (sender → receiver) edges, slot-aligned.

        Returns ``(senders, receivers, slots)`` — three ``(E,)`` int arrays
        enumerating every *real* edge (self-messages excluded) in
        :meth:`neighborhoods` order: receiver-major, ascending sender
        within each receiver's closed neighborhood.  ``slots[e]`` is the
        padded-neighborhood slot edge ``e`` occupies in receiver
        ``receivers[e]``'s row of the ``(n, k)`` gather index, so per-edge
        state (delays, drop masks, view-round queues) scatters straight
        into the neighborhood tensors.  This is the canonical edge
        indexing of the delay-tolerant decentralized engines: a
        :class:`~repro.distsys.faults.NetworkCondition` restricted to
        ``agents=[e]`` conditions exactly edge ``e`` of this enumeration
        (see :meth:`edge_index`).  Computed once and cached; the returned
        arrays are read-only.
        """
        cached = self.__dict__.get("_directed_edges_cache")
        if cached is None:
            index, mask = self.neighborhoods()
            real = mask & (index != np.arange(self.n)[:, None])
            receivers, slots = np.nonzero(real)
            senders = index[receivers, slots]
            for arr in (senders, receivers, slots):
                arr.setflags(write=False)
            cached = (senders, receivers, slots)
            object.__setattr__(self, "_directed_edges_cache", cached)
        return cached

    def edge_index(self, sender: int, receiver: int) -> int:
        """Position of the ``sender → receiver`` edge in :meth:`directed_edges`.

        The handle per-edge :class:`~repro.distsys.faults.NetworkCondition`
        subsets key on — e.g. ``Stragglers({topology.edge_index(2, 3): 4.0})``
        makes only the 2→3 link slow.  Raises for absent edges (including
        self-messages, which are local and never conditioned).  The
        position map is built once, so lookups are O(1).
        """
        positions = self.__dict__.get("_edge_position_cache")
        if positions is None:
            senders, receivers, _ = self.directed_edges()
            positions = {
                (int(s), int(r)): e
                for e, (s, r) in enumerate(zip(senders, receivers))
            }
            object.__setattr__(self, "_edge_position_cache", positions)
        position = positions.get((int(sender), int(receiver)))
        if position is None:
            raise ValueError(
                f"topology {self.name!r} has no edge {sender} -> {receiver}"
            )
        return position

    # -- global structure --------------------------------------------------
    def _reachable(self, adjacency: np.ndarray) -> np.ndarray:
        frontier = np.zeros(self.n, dtype=bool)
        frontier[0] = True
        while True:
            # receivers reachable in one more hop: i with an edge from any
            # already-reached j (adjacency[i, j]).
            expanded = frontier | (adjacency @ frontier)
            if np.array_equal(expanded, frontier):
                return frontier
            frontier = expanded

    def is_connected(self) -> bool:
        """Strong connectivity (for symmetric graphs: plain connectivity)."""
        if self.n == 1:
            return True
        return bool(
            self._reachable(self.adjacency).all()
            and self._reachable(self.adjacency.T).all()
        )

    def connected_components(self) -> List[Tuple[int, ...]]:
        """Connected components of the *undirected skeleton*, as id tuples.

        Components are sorted by smallest member, members ascending — a
        stable enumeration the reporting layer keys per-component metrics
        on.  A connected graph yields one component covering every agent.
        Weak (undirected) connectivity is the right notion here: agents
        bridged in either direction still influence each other's analysis,
        while agents in different weak components evolve fully
        independently.
        """
        undirected = self.adjacency | self.adjacency.T
        unassigned = np.ones(self.n, dtype=bool)
        components: List[Tuple[int, ...]] = []
        while unassigned.any():
            seed = int(np.flatnonzero(unassigned)[0])
            member = np.zeros(self.n, dtype=bool)
            member[seed] = True
            while True:
                expanded = member | (undirected @ member)
                if np.array_equal(expanded, member):
                    break
                member = expanded
            components.append(tuple(np.flatnonzero(member).tolist()))
            unassigned &= ~member
        return components

    def algebraic_connectivity(self) -> float:
        """Second-smallest Laplacian eigenvalue of the undirected skeleton.

        The classic connectivity measure λ₂ (Fiedler value): zero iff the
        graph is disconnected, and growing with how well-knit it is — the
        quantity decentralized convergence rates are usually stated in.
        """
        undirected = (self.adjacency | self.adjacency.T).astype(float)
        laplacian = np.diag(undirected.sum(axis=1)) - undirected
        eigenvalues = np.linalg.eigvalsh(laplacian)
        return float(eigenvalues[1]) if self.n > 1 else 0.0

    def __repr__(self) -> str:
        degrees = self.in_degrees
        return (
            f"CommunicationTopology(name={self.name!r}, n={self.n},"
            f" in_degree=[{int(degrees.min())}..{int(degrees.max())}])"
        )


# -- builders ------------------------------------------------------------------

def complete_topology(n: int) -> CommunicationTopology:
    """Every agent hears every other agent — the server-equivalent graph."""
    if n < 1:
        raise ValueError("topology needs at least one agent")
    adjacency = np.ones((n, n), dtype=bool)
    np.fill_diagonal(adjacency, False)
    return CommunicationTopology("complete", adjacency)


def ring_topology(n: int, hops: int = 1) -> CommunicationTopology:
    """Circulant ring: each agent hears its ``hops`` nearest on each side."""
    if n < 1:
        raise ValueError("topology needs at least one agent")
    if hops < 1:
        raise ValueError("hops must be positive")
    # Offsets beyond the ring diameter add no edges; name the topology by
    # the *effective* hop count so identical graphs never carry two labels.
    effective_hops = min(hops, (n - 1) // 2 + (n - 1) % 2)
    # Circulant: i hears j iff the ring distance |i - j| mod n is within
    # the hop radius (in either direction).
    ids = np.arange(n)
    dist = (ids[None, :] - ids[:, None]) % n
    adjacency = (dist <= effective_hops) | (dist >= n - effective_hops)
    np.fill_diagonal(adjacency, False)
    name = "ring" if effective_hops <= 1 else f"ring{effective_hops}"
    return CommunicationTopology(name, adjacency)


def _near_square_factors(n: int) -> Tuple[int, int]:
    """The factor pair ``(rows, cols)`` of ``n`` with minimal aspect ratio."""
    best = (1, n)
    for rows in range(2, int(np.sqrt(n)) + 1):
        if n % rows == 0:
            best = (rows, n // rows)
    return best


def torus_topology(
    n: int, rows: int = 0, cols: int = 0
) -> CommunicationTopology:
    """2-D torus (wrap-around grid) with 4-neighbor connectivity.

    ``rows``/``cols`` default to the most nearly square factorization of
    ``n``; for prime ``n`` that degenerates to a ``1 x n`` torus (a ring).
    Giving only one of the two derives the other from ``n``.
    """
    if rows or cols:
        if rows < 0 or cols < 0:
            raise ValueError(
                f"torus dimensions must be positive, got rows={rows}, cols={cols}"
            )
        rows = rows or (n // cols if cols else 0)
        cols = cols or (n // rows if rows else 0)
        if rows * cols != n:
            raise ValueError(f"torus {rows}x{cols} does not cover n={n}")
    else:
        rows, cols = _near_square_factors(n)
    adjacency = np.zeros((n, n), dtype=bool)
    ids = np.arange(n)
    r, c = ids // cols, ids % cols
    for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        adjacency[ids, ((r + dr) % rows) * cols + (c + dc) % cols] = True
    np.fill_diagonal(adjacency, False)
    return CommunicationTopology(f"torus{rows}x{cols}", adjacency)


def random_regular_topology(
    n: int, degree: int = 3, seed: int = 0, max_attempts: int = 200
) -> CommunicationTopology:
    """Uniform-ish random ``degree``-regular graph via the pairing model.

    Draws stub matchings until one is simple (no self-loops, no repeated
    edges); requires ``n * degree`` even and ``degree < n``.
    """
    if not 0 < degree < n:
        raise ValueError(f"need 0 < degree < n, got degree={degree}, n={n}")
    if (n * degree) % 2 != 0:
        raise ValueError(
            f"no {degree}-regular graph on {n} nodes (n * degree is odd)"
        )
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n), degree)
    for _ in range(max_attempts):
        shuffled = rng.permutation(stubs)
        left, right = shuffled[0::2], shuffled[1::2]
        if np.any(left == right):
            continue
        # A matching is simple iff no undirected edge repeats.  The
        # accept/reject decision per draw is unchanged from the old
        # incremental check, so the rng stream — and hence the sampled
        # graph for a given seed — is bit-for-bit stable.
        keys = np.minimum(left, right) * n + np.maximum(left, right)
        if np.unique(keys).size != keys.size:
            continue
        adjacency = np.zeros((n, n), dtype=bool)
        adjacency[left, right] = True
        adjacency[right, left] = True
        return CommunicationTopology(f"regular{degree}", adjacency)
    raise RuntimeError(
        f"failed to sample a simple {degree}-regular graph on {n} nodes "
        f"in {max_attempts} attempts"
    )


def erdos_renyi_topology(
    n: int,
    p: float = 0.5,
    seed: int = 0,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> CommunicationTopology:
    """Erdős–Rényi ``G(n, p)`` (undirected); optionally resampled until
    connected.

    The canonical *irregular* family: in-degrees differ across agents, which
    exercises the masked (ragged-neighborhood) aggregation kernels.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    for _ in range(max_attempts):
        # The full (n, n) draw wastes half the variates but keeps the rng
        # stream — and hence the sampled graph per seed — stable.
        upper = rng.random((n, n)) < p
        adjacency = np.triu(upper, k=1)
        adjacency = adjacency | adjacency.T
        topology = CommunicationTopology(f"er{p:g}", adjacency)
        if not require_connected or topology.is_connected():
            return topology
    raise RuntimeError(
        f"failed to sample a connected G({n}, {p}) in {max_attempts} "
        "attempts; lower require_connected or raise p"
    )


# -- registry ------------------------------------------------------------------

#: Registry: name -> (description, accepted parameter names, builder).
_TOPOLOGIES: Dict[
    str, Tuple[str, frozenset, Callable[..., CommunicationTopology]]
] = {
    "complete": (
        "every agent hears every other agent (server-equivalent graph)",
        frozenset(),
        lambda n, seed, **kw: complete_topology(n),
    ),
    "ring": (
        "circulant ring; each agent hears its `hops` nearest per side",
        frozenset({"hops"}),
        lambda n, seed, **kw: ring_topology(n, hops=kw.get("hops", 1)),
    ),
    "torus": (
        "2-D wrap-around grid with 4-neighbor connectivity",
        frozenset({"rows", "cols"}),
        lambda n, seed, **kw: torus_topology(
            n, rows=kw.get("rows", 0), cols=kw.get("cols", 0)
        ),
    ),
    "random_regular": (
        "random simple `degree`-regular graph (pairing model)",
        frozenset({"degree"}),
        lambda n, seed, **kw: random_regular_topology(
            n, degree=kw.get("degree", 3), seed=seed
        ),
    ),
    "erdos_renyi": (
        "Erdős–Rényi G(n, p), resampled until connected; irregular degrees",
        frozenset({"p"}),
        lambda n, seed, **kw: erdos_renyi_topology(
            n, p=kw.get("p", 0.5), seed=seed
        ),
    ),
}


def available_topologies() -> List[str]:
    """Sorted registry names."""
    return sorted(_TOPOLOGIES)


def topology_descriptions() -> Dict[str, str]:
    """One-line description per registered topology family."""
    return {name: entry[0] for name, entry in sorted(_TOPOLOGIES.items())}


def make_topology(
    name: str, n: int, seed: int = 0, **params
) -> CommunicationTopology:
    """Build topology family ``name`` on ``n`` agents.

    Family-specific parameters (``hops``, ``degree``, ``p``, ``rows``,
    ``cols``) pass through as keyword arguments.
    """
    try:
        _, accepted, builder = _TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; known: {', '.join(available_topologies())}"
        ) from None
    unknown = sorted(set(params) - accepted)
    if unknown:
        raise TypeError(
            f"topology {name!r} does not accept parameter(s) {unknown}; "
            f"accepted: {sorted(accepted) or 'none'}"
        )
    return builder(n, seed, **params)
