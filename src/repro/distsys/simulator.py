"""Synchronous simulation of the DGD method of Section 4.1.

The simulator drives the server and the agents through iterations of the
two-step loop (S1 request/reply with elimination of silent agents, S2
filtered projected update), fabricating Byzantine replies through a
:class:`~repro.attacks.base.ByzantineAttack` and recording a full
:class:`~repro.distsys.trace.ExecutionTrace`.

This in-process simulator replaces the paper's MPI deployment; determinism
comes from a single seeded generator shared by the attack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..attacks.base import AttackContext, ByzantineAttack
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from .agents import Agent, ByzantineAgent, HonestAgent
from .messages import GradientReply, GradientRequest, Silence
from .server import RobustServer
from .trace import ExecutionTrace, IterationRecord

__all__ = ["SynchronousSimulator", "run_dgd"]


class SynchronousSimulator:
    """Round-based driver for robust distributed gradient descent."""

    def __init__(
        self,
        agents: Sequence[Agent],
        aggregator: Union[GradientAggregator, str],
        constraint: ConvexSet,
        schedule: StepSchedule,
        f: int,
        initial_estimate: Sequence[float],
        attack: Optional[ByzantineAttack] = None,
        omniscient_attack: Optional[bool] = None,
        seed: int = 0,
    ):
        ids = [a.agent_id for a in agents]
        if len(set(ids)) != len(ids):
            raise ValueError("agent ids must be unique")
        self.agents: Dict[int, Agent] = {a.agent_id: a for a in agents}
        self.active_ids: List[int] = sorted(self.agents)
        byzantine = [a for a in agents if a.is_byzantine]
        if byzantine and attack is None:
            raise ValueError("byzantine agents present but no attack given")
        self.attack = attack
        if omniscient_attack is None:
            omniscient_attack = bool(attack and attack.requires_omniscience)
        if attack and attack.requires_omniscience and not omniscient_attack:
            raise ValueError(
                f"attack {attack.name!r} requires omniscient access"
            )
        self.omniscient_attack = omniscient_attack
        self.rng = np.random.default_rng(seed)
        self.server = RobustServer(
            initial_estimate=np.asarray(initial_estimate, dtype=float),
            aggregator=aggregator,
            constraint=constraint,
            schedule=schedule,
            n=len(agents),
            f=f,
        )
        self.trace = ExecutionTrace()

    # -- one iteration ----------------------------------------------------
    def step(self) -> IterationRecord:
        """Run one full iteration (S1 + S2) and record it."""
        t = self.server.iteration
        estimate_before = self.server.estimate.copy()
        request = GradientRequest(iteration=t, estimate=estimate_before)

        honest_replies: Dict[int, np.ndarray] = {}
        live_byzantine: List[ByzantineAgent] = []
        silent: List[int] = []
        for agent_id in list(self.active_ids):
            agent = self.agents[agent_id]
            if isinstance(agent, ByzantineAgent):
                if agent.is_silent(t):
                    silent.append(agent_id)
                else:
                    live_byzantine.append(agent)
                continue
            reply = agent.handle_request(request)
            if isinstance(reply, Silence):
                silent.append(agent_id)
            else:
                honest_replies[agent_id] = reply.gradient

        eliminated = self.server.eliminate_silent(silent)
        for agent_id in eliminated:
            self.active_ids.remove(agent_id)

        gradients: Dict[int, np.ndarray] = dict(honest_replies)
        if live_byzantine:
            context = AttackContext(
                iteration=t,
                estimate=estimate_before,
                faulty_ids=[a.agent_id for a in live_byzantine],
                true_gradients={
                    a.agent_id: a.true_gradient(estimate_before)
                    for a in live_byzantine
                },
                honest_gradients=(
                    dict(honest_replies) if self.omniscient_attack else None
                ),
                rng=self.rng,
            )
            fabricated = self.attack.fabricate(context)
            missing = set(context.faulty_ids) - set(fabricated)
            if missing:
                raise RuntimeError(
                    f"attack produced no gradient for agents {sorted(missing)}"
                )
            for agent_id in context.faulty_ids:
                gradients[agent_id] = np.asarray(
                    fabricated[agent_id], dtype=float
                )

        aggregate = self.server.apply_update(gradients)
        record = IterationRecord(
            iteration=t,
            estimate=estimate_before,
            gradients=gradients,
            aggregate=aggregate,
            step_size=self.server.schedule(t),
            next_estimate=self.server.estimate.copy(),
            eliminated=eliminated,
        )
        self.trace.append(record)
        return record

    def run(self, iterations: int) -> ExecutionTrace:
        """Run ``iterations`` steps and return the accumulated trace."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        for _ in range(iterations):
            self.step()
        return self.trace

    @property
    def estimate(self) -> np.ndarray:
        """The server's current estimate."""
        return self.server.estimate.copy()


def run_dgd(
    costs: Sequence,
    faulty_ids: Sequence[int],
    aggregator: Union[GradientAggregator, str],
    attack: Optional[ByzantineAttack],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    seed: int = 0,
    omniscient_attack: Optional[bool] = None,
) -> ExecutionTrace:
    """Convenience wrapper: build agents from costs and run the loop.

    ``costs[i]`` is agent ``i``'s local cost; agents listed in ``faulty_ids``
    become Byzantine with that cost as their attack reference.  ``f`` is set
    to ``len(faulty_ids)`` — the simulation's ground truth, which the server
    is told (as in the paper, ``f`` is a known system parameter).
    """
    faulty = set(faulty_ids)
    unknown = faulty - set(range(len(costs)))
    if unknown:
        raise ValueError(f"faulty ids {sorted(unknown)} out of range")
    agents: List[Agent] = []
    for i, cost in enumerate(costs):
        if i in faulty:
            agents.append(ByzantineAgent(i, reference_cost=cost))
        else:
            agents.append(HonestAgent(i, cost))
    simulator = SynchronousSimulator(
        agents=agents,
        aggregator=aggregator,
        constraint=constraint,
        schedule=schedule,
        f=len(faulty),
        initial_estimate=initial_estimate,
        attack=attack,
        omniscient_attack=omniscient_attack,
        seed=seed,
    )
    return simulator.run(iterations)
