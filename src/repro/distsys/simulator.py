"""Synchronous simulation of the DGD method of Section 4.1.

The simulator drives the server and the agents through iterations of the
two-step loop (S1 request/reply with elimination of silent agents, S2
filtered projected update), fabricating Byzantine replies through a
:class:`~repro.attacks.base.ByzantineAttack` and recording a full
:class:`~repro.distsys.trace.ExecutionTrace`.

The loop itself is the shared protocol core of
:class:`~repro.distsys.engine.ProtocolEngine`: this engine is its
server-based configuration — *observe* collects replies and applies step
S1's elimination rule, *fabricate* substitutes the attack's gradients,
*aggregate* applies the server's gradient-filter and *project* performs the
equation-(21) update and records the iteration.

This in-process simulator replaces the paper's MPI deployment; determinism
comes from a single seeded generator shared by the attack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.masked import aggregator_label
from ..attacks.base import AttackContext, ByzantineAttack
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import current_recorder
from .agents import Agent, ByzantineAgent, HonestAgent
from .engine import (
    ProtocolEngine,
    ProtocolRound,
    validate_attack_plan,
    validate_fault_count,
    validate_faulty_ids,
)
from .health import (
    AGGREGATOR_REFUSED,
    DEFAULT_DIVERGENCE_THRESHOLD,
    QuarantineError,
    RunGuard,
    aggregation_round,
)
from .messages import GradientRequest, Silence
from .server import RobustServer
from .trace import ExecutionTrace, IterationRecord

__all__ = ["SynchronousSimulator", "run_dgd"]


class SynchronousSimulator(ProtocolEngine):
    """Round-based driver for robust distributed gradient descent."""

    def __init__(
        self,
        agents: Sequence[Agent],
        aggregator: Union[GradientAggregator, str],
        constraint: ConvexSet,
        schedule: StepSchedule,
        f: int,
        initial_estimate: Sequence[float],
        attack: Optional[ByzantineAttack] = None,
        omniscient_attack: Optional[bool] = None,
        seed: int = 0,
        divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    ):
        ids = [a.agent_id for a in agents]
        if len(set(ids)) != len(ids):
            raise ValueError("agent ids must be unique")
        self.agents: Dict[int, Agent] = {a.agent_id: a for a in agents}
        self.active_ids: List[int] = sorted(self.agents)
        byzantine = [a for a in agents if a.is_byzantine]
        validate_fault_count(f, len(agents), len(byzantine))
        self.attack = attack
        self.omniscient_attack = validate_attack_plan(
            attack, len(byzantine), omniscient_attack
        )
        self.rng = np.random.default_rng(seed)
        self.server = RobustServer(
            initial_estimate=np.asarray(initial_estimate, dtype=float),
            aggregator=aggregator,
            constraint=constraint,
            schedule=schedule,
            n=len(agents),
            f=f,
        )
        self.trace = ExecutionTrace()
        self.guard = RunGuard(divergence_threshold)

    @property
    def iteration(self) -> int:
        """Current iteration index (mirrors the server's counter)."""
        return self.server.iteration

    def _note_quarantine(self, round_index: int, reason: str) -> None:
        """Record a fresh quarantine on the trace and the telemetry stream."""
        self.trace.quarantine = self.guard.summary()
        if self.telemetry.enabled:
            self.telemetry.emit(
                "trial_quarantined",
                round=int(round_index),
                reason=reason,
                engine=type(self).__name__,
            )

    # -- protocol stages --------------------------------------------------
    def observe(self) -> ProtocolRound:
        """S1: request replies, collect honest gradients, eliminate silent."""
        t = self.server.iteration
        estimate_before = self.server.estimate.copy()
        if self.guard.quarantined:
            # Frozen run: no requests, no elimination, no RNG consumption —
            # the round only appends a held record to the trace.
            return ProtocolRound(
                iteration=t,
                estimate=estimate_before,
                gradients={},
                extras={"frozen": True},
            )
        request = GradientRequest(iteration=t, estimate=estimate_before)

        honest_replies: Dict[int, np.ndarray] = {}
        live_byzantine: List[ByzantineAgent] = []
        silent: List[int] = []
        for agent_id in list(self.active_ids):
            agent = self.agents[agent_id]
            if isinstance(agent, ByzantineAgent):
                # Crash-style silence comes from the agent's own cutoff or
                # from the attack behaviour (e.g. the registry's "crash").
                if agent.is_silent(t) or (
                    self.attack is not None
                    and self.attack.silences(agent_id, t)
                ):
                    silent.append(agent_id)
                else:
                    live_byzantine.append(agent)
                continue
            reply = agent.handle_request(request)
            if isinstance(reply, Silence):
                silent.append(agent_id)
            else:
                honest_replies[agent_id] = reply.gradient

        eliminated = self.server.eliminate_silent(silent)
        for agent_id in eliminated:
            self.active_ids.remove(agent_id)
        return ProtocolRound(
            iteration=t,
            estimate=estimate_before,
            gradients=dict(honest_replies),
            eliminated=eliminated,
            extras={
                "honest_replies": honest_replies,
                "live_byzantine": live_byzantine,
            },
        )

    def fabricate(self, round: ProtocolRound) -> None:
        """Substitute the attack's gradients for the live Byzantine agents."""
        if round.extras.get("frozen"):
            return
        live_byzantine: List[ByzantineAgent] = round.extras["live_byzantine"]
        if not live_byzantine:
            return
        honest_replies = round.extras["honest_replies"]
        context = AttackContext(
            iteration=round.iteration,
            estimate=round.estimate,
            faulty_ids=[a.agent_id for a in live_byzantine],
            true_gradients={
                a.agent_id: a.true_gradient(round.estimate)
                for a in live_byzantine
            },
            honest_gradients=(
                dict(honest_replies) if self.omniscient_attack else None
            ),
            rng=self.rng,
        )
        fabricated = self.attack.fabricate(context)
        missing = set(context.faulty_ids) - set(fabricated)
        if missing:
            raise RuntimeError(
                f"attack produced no gradient for agents {sorted(missing)}"
            )
        for agent_id in context.faulty_ids:
            round.gradients[agent_id] = np.asarray(
                fabricated[agent_id], dtype=float
            )

    def aggregate(self, round: ProtocolRound) -> None:
        """S2 (first half): apply the server's gradient-filter.

        A strict filter's typed refusal of non-finite input quarantines
        the run (reason ``aggregator_refused``) instead of crashing it;
        the estimate freezes at its pre-update value.
        """
        if round.extras.get("frozen"):
            return
        try:
            with aggregation_round(
                round.iteration, aggregator_label(self.server.aggregator)
            ):
                round.aggregates = self.server.filter_gradients(round.gradients)
        except QuarantineError:
            self.guard.quarantine(round.iteration, AGGREGATOR_REFUSED)
            self._note_quarantine(round.iteration, AGGREGATOR_REFUSED)
            round.extras["frozen"] = True

    def project(self, round: ProtocolRound) -> IterationRecord:
        """S2 (second half): projected update; record the iteration.

        The pre-projection candidate is screened first: a non-finite or
        diverged candidate quarantines the run and the estimate is held,
        so garbage never reaches the projection.
        """
        frozen = bool(round.extras.get("frozen"))
        if not frozen:
            eta = self.server.schedule(round.iteration)
            candidate = round.estimate - eta * round.aggregates
            reason = self.guard.screen(round.iteration, candidate)
            if reason is None:
                self.server.descend(round.aggregates)
            else:
                self._note_quarantine(round.iteration, reason)
                frozen = True
        if frozen:
            self.server.hold()
        record = IterationRecord(
            iteration=round.iteration,
            estimate=round.estimate,
            gradients=round.gradients,
            aggregate=(
                np.zeros_like(round.estimate) if frozen else round.aggregates
            ),
            step_size=self.server.schedule(round.iteration),
            next_estimate=self.server.estimate.copy(),
            eliminated=round.eliminated,
            quarantined=frozen,
        )
        self.trace.append(record)
        return record

    # -- run --------------------------------------------------------------
    def _run_result(self) -> ExecutionTrace:
        return self.trace

    def run(self, iterations: int) -> ExecutionTrace:
        """Run ``iterations`` steps and return the accumulated trace."""
        return super().run(iterations)

    @property
    def estimate(self) -> np.ndarray:
        """The server's current estimate."""
        return self.server.estimate.copy()


def run_dgd(
    costs: Sequence,
    faulty_ids: Sequence[int],
    aggregator: Union[GradientAggregator, str],
    attack: Optional[ByzantineAttack],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    seed: int = 0,
    omniscient_attack: Optional[bool] = None,
    divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
) -> ExecutionTrace:
    """Convenience wrapper: build agents from costs and run the loop.

    ``costs[i]`` is agent ``i``'s local cost; agents listed in ``faulty_ids``
    become Byzantine with that cost as their attack reference.  ``f`` is set
    to ``len(faulty_ids)`` — the simulation's ground truth, which the server
    is told (as in the paper, ``f`` is a known system parameter).
    """
    faulty = set(validate_faulty_ids(faulty_ids, len(costs)))
    agents: List[Agent] = []
    for i, cost in enumerate(costs):
        if i in faulty:
            agents.append(ByzantineAgent(i, reference_cost=cost))
        else:
            agents.append(HonestAgent(i, cost))
    simulator = SynchronousSimulator(
        agents=agents,
        aggregator=aggregator,
        constraint=constraint,
        schedule=schedule,
        f=len(faulty),
        initial_estimate=initial_estimate,
        attack=attack,
        omniscient_attack=omniscient_attack,
        seed=seed,
        divergence_threshold=divergence_threshold,
    )
    # Convenience runners report to the ambient recorder: a no-op
    # with the default NULL_RECORDER, a live stream under the CLI's
    # --telemetry-out / the orchestrator's worker recorders.
    return simulator.set_recorder(current_recorder()).run(iterations)
