"""Distributed-system substrate: one protocol core, eight execution engines.

:mod:`repro.distsys.engine` owns the observe → fabricate → aggregate →
project protocol loop; the server-based per-trial simulator, the batched
lockstep sweep engine, the peer-to-peer replica simulator, the
decentralized graph engine, the delay-tolerant decentralized engine, its
fused batched sweep engine, the event-driven asynchronous engine and the
batched asynchronous sweep engine are thin configurations of it.
:mod:`repro.distsys.topology` supplies the communication graphs the
decentralized engines run on; :mod:`repro.distsys.faults` supplies the
network conditions and fault timelines the asynchronous and delay-tolerant
engines replay (pre-sampled whole-run via
:func:`~repro.distsys.faults.sample_network_run` — per **uplink** for the
server engines, per **edge** for the graph engine).
"""

from .agents import Agent, ByzantineAgent, HonestAgent, StochasticAgent
from .asynchronous import (
    AsyncIterationRecord,
    AsynchronousSimulator,
    AsynchronousTrace,
    run_asynchronous,
)
from .batch import BatchSimulator, BatchTrace, BatchTrial, run_dgd_batch
from .batch_decentralized_delay import (
    BatchDelayedDecentralizedSimulator,
    BatchDelayedDecentralizedTrace,
    DelayBatchTrial,
    run_decentralized_delayed_batch,
)
from .batch_async import (
    AsyncBatchTrial,
    BatchAsynchronousSimulator,
    BatchAsyncTrace,
    run_asynchronous_batch,
)
from .broadcast import (
    BroadcastAdversary,
    BroadcastStats,
    EquivocatingAdversary,
    SilentAdversary,
    TruthfulAdversary,
    byzantine_broadcast,
    majority_value,
    om_message_count,
)
from .decentralized import (
    DecentralizedSimulator,
    DecentralizedTrace,
    run_decentralized,
)
from .decentralized_delay import (
    DelayedDecentralizedSimulator,
    DelayedDecentralizedTrace,
    run_decentralized_delayed,
)
from .engine import (
    ProtocolEngine,
    ProtocolRound,
    validate_fault_count,
    validate_faulty_ids,
    validate_initial_estimate,
)
from .faults import (
    BurstyDrop,
    FaultEvent,
    FaultSchedule,
    IIDDrop,
    LinkDelay,
    NetworkCondition,
    Stragglers,
    fixed_delay,
    geometric_delay,
    sample_network_run,
    uniform_delay,
)
from .messages import GradientReply, GradientRequest, Silence
from .network import Envelope, MessagePassingDGD, SynchronousNetwork
from .peer_to_peer import PeerToPeerSimulator
from .server import RobustServer
from .simulator import SynchronousSimulator, run_dgd
from .topology import (
    CommunicationTopology,
    available_topologies,
    complete_topology,
    erdos_renyi_topology,
    make_topology,
    random_regular_topology,
    ring_topology,
    topology_descriptions,
    torus_topology,
)
from .trace import ExecutionTrace, IterationRecord

__all__ = [
    "GradientRequest",
    "GradientReply",
    "Silence",
    "Agent",
    "HonestAgent",
    "ByzantineAgent",
    "StochasticAgent",
    "RobustServer",
    "SynchronousSimulator",
    "run_dgd",
    "BatchSimulator",
    "BatchTrace",
    "BatchTrial",
    "run_dgd_batch",
    "DecentralizedSimulator",
    "DecentralizedTrace",
    "run_decentralized",
    "DelayedDecentralizedSimulator",
    "DelayedDecentralizedTrace",
    "run_decentralized_delayed",
    "DelayBatchTrial",
    "BatchDelayedDecentralizedSimulator",
    "BatchDelayedDecentralizedTrace",
    "run_decentralized_delayed_batch",
    "AsynchronousSimulator",
    "AsynchronousTrace",
    "AsyncIterationRecord",
    "run_asynchronous",
    "AsyncBatchTrial",
    "BatchAsynchronousSimulator",
    "BatchAsyncTrace",
    "run_asynchronous_batch",
    "sample_network_run",
    "NetworkCondition",
    "LinkDelay",
    "IIDDrop",
    "BurstyDrop",
    "Stragglers",
    "fixed_delay",
    "uniform_delay",
    "geometric_delay",
    "FaultEvent",
    "FaultSchedule",
    "ProtocolEngine",
    "ProtocolRound",
    "validate_faulty_ids",
    "validate_fault_count",
    "validate_initial_estimate",
    "CommunicationTopology",
    "complete_topology",
    "ring_topology",
    "torus_topology",
    "random_regular_topology",
    "erdos_renyi_topology",
    "make_topology",
    "available_topologies",
    "topology_descriptions",
    "Envelope",
    "SynchronousNetwork",
    "MessagePassingDGD",
    "ExecutionTrace",
    "IterationRecord",
    "byzantine_broadcast",
    "majority_value",
    "om_message_count",
    "BroadcastStats",
    "BroadcastAdversary",
    "EquivocatingAdversary",
    "SilentAdversary",
    "TruthfulAdversary",
    "PeerToPeerSimulator",
]
