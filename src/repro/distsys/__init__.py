"""Distributed-system substrate: synchronous server-based and peer-to-peer."""

from .agents import Agent, ByzantineAgent, HonestAgent, StochasticAgent
from .batch import BatchSimulator, BatchTrace, BatchTrial, run_dgd_batch
from .broadcast import (
    BroadcastAdversary,
    BroadcastStats,
    EquivocatingAdversary,
    SilentAdversary,
    TruthfulAdversary,
    byzantine_broadcast,
    majority_value,
    om_message_count,
)
from .messages import GradientReply, GradientRequest, Silence
from .network import Envelope, MessagePassingDGD, SynchronousNetwork
from .peer_to_peer import PeerToPeerSimulator
from .server import RobustServer
from .simulator import SynchronousSimulator, run_dgd
from .trace import ExecutionTrace, IterationRecord

__all__ = [
    "GradientRequest",
    "GradientReply",
    "Silence",
    "Agent",
    "HonestAgent",
    "ByzantineAgent",
    "StochasticAgent",
    "RobustServer",
    "SynchronousSimulator",
    "run_dgd",
    "BatchSimulator",
    "BatchTrace",
    "BatchTrial",
    "run_dgd_batch",
    "Envelope",
    "SynchronousNetwork",
    "MessagePassingDGD",
    "ExecutionTrace",
    "IterationRecord",
    "byzantine_broadcast",
    "majority_value",
    "om_message_count",
    "BroadcastStats",
    "BroadcastAdversary",
    "EquivocatingAdversary",
    "SilentAdversary",
    "TruthfulAdversary",
    "PeerToPeerSimulator",
]
