"""Fused edge-tensor execution of delay-tolerant decentralized sweeps.

:class:`~repro.distsys.decentralized_delay.DelayedDecentralizedSimulator`
already runs its trials in lockstep, but it fixes (topology, τ, network
conditions, missing policy, fault timeline) per engine instance — a sweep
still builds one engine per (topology, τ, drop, policy) cell and replays
the whole protocol loop per cell.  :class:`BatchDelayedDecentralizedSimulator`
is the `batch_async` treatment for the graph family: every trial of an
entire topology × τ × drop × policy × seed sweep rides one batch axis
``S`` of a single lockstep tensor program.

* **Per-edge queues are padded ``(S, E_max, τ_max + 1)`` tensors** keyed on
  each topology's :meth:`~repro.distsys.topology.CommunicationTopology.directed_edges`
  enumeration (the ``edge_index`` convention): slot ``k`` holds the newest
  view round arriving in ``k`` rounds, ``-1`` = empty.  Trials on smaller
  graphs pad their edge rows; padded columns are born dropped and can
  never enqueue.  Both payload channels stay factored — per-edge view
  rounds gathered against the shared ``(T + 1, S, n, d)`` iterate
  trajectory *and* the matching ``(T, S, n, d)`` gradient history.
* **Network and fault realizations** come from the chunk-invariant
  :func:`~repro.distsys.faults.sample_network_run` /
  :meth:`~repro.distsys.faults.FaultSchedule.sample_run` pre-sampling,
  per-trial streams identical to the per-trial engine's, stacked into
  dense ``(T, S, E_max)`` / ``(T, S, n)`` tensors chunk by chunk.
* **Fabrication is grouped per (attack, faulty set, omniscience,
  topology)** — each trial's generator is consumed exactly as the
  per-trial engine consumes it, and equivocating attacks see their own
  topology's delivery structure.
* **Masked and shrink missing-neighbor policies** ride the
  tolerance-parameterized masked kernels' receiver axis with per-trial
  policy flags; fully-attended trials always take the synchronous graph
  engine's exact kernels sliced to their topology's true ``k`` — the
  bit-for-bit path.  The stale trimmed-mean consensus mix is batched the
  same way.

The engine is pinned to the per-trial
:class:`~repro.distsys.decentralized_delay.DelayedDecentralizedSimulator`
at 1e-9 (degenerate τ=0 / clean-network configs bit-for-bit) across
aggregator × attack × topology × τ × drop × policy × seed — including
stalls, crash/warm-recover and Byzantine-from-round timelines
(``tests/distsys/test_batch_decentralized_delay.py``) — and keeps the
resumable contract of the other batched engines: ``run(T, start_round=…)``
re-pre-samples only the remaining rounds from the persisted per-trial
network streams, and JSON ``state_dict()``/``load_state()`` round trips
resume bit-identically (``tests/distsys/test_resumable_engines.py``).
Every computation is per-receiver-row, so a trial's trajectory is
bit-identical whether it runs solo, inside one sweep cell, or fused into
the whole sweep — the composition-independence contract the orchestrated
sweep relies on.
"""

from __future__ import annotations

import copy
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.masked import (
    aggregator_label,
    degree_grouped_kernel_for,
    masked_kernel_for,
    masked_min_attendance_for_tolerance,
    masked_partial_kernel_for,
    masked_trimmed_mean_batch,
)
from ..aggregators.registry import make_aggregator
from ..aggregators.trimmed_mean import trimmed_mean_batch
from ..attacks.base import ByzantineAttack, DecentralizedAttackContext
from ..backend import xp
from ..functions.base import CostFunction
from ..functions.batched import CostStack, stack_costs
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import Recorder, current_recorder
from .asynchronous import MISSING_POLICIES
from .batch import _config_key, group_indices
from .decentralized import DecentralizedTrace
from .engine import (
    ProtocolEngine,
    ProtocolRound,
    validate_attack_plan,
    validate_faulty_ids,
    validate_initial_estimate,
)
from .faults import (
    FaultSchedule,
    NetworkCondition,
    network_streams,
    sample_network_run,
)
from .health import (
    AGGREGATOR_REFUSED,
    DEFAULT_DIVERGENCE_THRESHOLD,
    TrialGuard,
    aggregation_round,
    nonfinite_rows,
)
from .topology import CommunicationTopology

__all__ = [
    "DelayBatchTrial",
    "BatchDelayedDecentralizedTrace",
    "BatchDelayedDecentralizedSimulator",
    "run_decentralized_delayed_batch",
]


@dataclass
class DelayBatchTrial:
    """One delay-tolerant decentralized trial of a fused sweep.

    Mirrors the :class:`~repro.distsys.decentralized_delay.DelayedDecentralizedSimulator`
    constructor per trial: each trial carries its own communication
    topology, staleness bound, per-edge network conditions, fault
    timeline, attack, filter and missing-neighbor policy — the engine
    groups equal configurations so a sweep varying only seeds still runs
    one kernel per stage.  ``aggregator`` may be a registry name, built as
    ``make_aggregator(name, n, len(faulty set))``.
    """

    aggregator: Union[GradientAggregator, str]
    topology: CommunicationTopology = None
    attack: Optional[ByzantineAttack] = None
    faulty_ids: Tuple[int, ...] = ()
    conditions: Tuple[NetworkCondition, ...] = ()
    fault_schedule: Optional[FaultSchedule] = None
    staleness_bound: int = 0
    missing_policy: str = "masked"
    seed: int = 0
    schedule: Optional[StepSchedule] = None
    initial_estimate: Optional[np.ndarray] = None
    omniscient_attack: Optional[bool] = None
    label: Optional[str] = None


@dataclass
class BatchDelayedDecentralizedTrace(DecentralizedTrace):
    """Decentralized trace plus per-trial gossip-under-delay diagnostics.

    The fused analogue of
    :class:`~repro.distsys.decentralized_delay.DelayedDecentralizedTrace`:
    trials may live on different topologies, so ``edges`` is a per-trial
    ``(S,)`` edge count instead of a scalar.
    """

    stalled: np.ndarray = field(default=None)          # (T, S, n) bool
    usable_edge_counts: np.ndarray = field(default=None)   # (T, S)
    staleness_sums: np.ndarray = field(default=None)       # (T, S)
    edges: np.ndarray = field(default=None)                # (S,)

    def stalled_fraction(self) -> np.ndarray:
        """Per-trial per-round fraction of agents holding, ``(S, T)``."""
        return self.stalled.mean(axis=2).T

    def stalled_agent_rounds(self) -> np.ndarray:
        """Total (agent, round) stalls per trial, ``(S,)``."""
        return self.stalled.sum(axis=(0, 2))

    def missing_fraction(self) -> np.ndarray:
        """Per-trial per-round fraction of edges with no usable message.

        Shape ``(S, T)``; an edgeless trial (single-agent topology)
        reports 0.
        """
        edges = self.edges.astype(float)[:, None]          # (S, 1)
        with np.errstate(invalid="ignore", divide="ignore"):
            fraction = (edges - self.usable_edge_counts.T) / edges
        return np.where(edges > 0, fraction, 0.0)

    def staleness_profile(self) -> np.ndarray:
        """Per-trial per-round mean staleness of the usable edges, ``(S, T)``.

        Rounds with no usable edge contribute ``nan`` (reduce with
        ``np.nanmean``), matching the per-trial trace.
        """
        counts = self.usable_edge_counts.T.astype(float)
        with np.errstate(invalid="ignore"):
            return np.where(
                counts > 0, self.staleness_sums.T / counts, np.nan
            )


class BatchDelayedDecentralizedSimulator(ProtocolEngine):
    """Run ``S`` delay-tolerant decentralized trials in lockstep."""

    def __init__(
        self,
        costs: Union[Sequence[CostFunction], CostStack],
        trials: Sequence[DelayBatchTrial],
        constraint: ConvexSet,
        schedule: StepSchedule,
        initial_estimate: Sequence[float],
        mixing: bool = True,
        allow_disconnected: bool = False,
        recorder: Optional[Recorder] = None,
        divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    ):
        if not trials:
            raise ValueError("need at least one trial")
        self.set_recorder(recorder)
        self.mixing = bool(mixing)
        self.stack: CostStack = (
            costs if isinstance(costs, CostStack) else stack_costs(costs)
        )
        self.n = self.stack.n
        self.d = self.stack.dim
        self.trials: List[DelayBatchTrial] = list(trials)
        self.constraint = constraint

        default_initial = validate_initial_estimate(initial_estimate, self.d)
        s = len(self.trials)

        # -- per-trial normalized state (trial objects stay read-only) ----
        starts = []
        self.rngs: List[np.random.Generator] = []
        self._schedules: List[StepSchedule] = []
        self._omniscient: List[bool] = []
        self._aggregators: List[GradientAggregator] = []
        self._fault_schedules: List[FaultSchedule] = []
        self._faulty: List[Tuple[int, ...]] = []
        self._tau = np.zeros(s, dtype=int)
        self._shrink = np.zeros(s, dtype=bool)
        #: first compromise round per (trial, agent); int64 — the
        #: never-compromised sentinel overflows a 32-bit default int.
        self._since = np.full(
            (s, self.n), np.iinfo(np.int64).max, dtype=np.int64
        )

        for index, trial in enumerate(self.trials):
            if trial.topology is None:
                raise ValueError("every DelayBatchTrial needs a topology")
            if trial.topology.n != self.n:
                raise ValueError(
                    f"trial {index} topology covers {trial.topology.n} "
                    f"agents but {self.n} costs given"
                )
            fault_schedule = (
                trial.fault_schedule or FaultSchedule()
            ).validate(self.n)
            self._fault_schedules.append(fault_schedule)
            base_faulty = validate_faulty_ids(trial.faulty_ids, self.n)
            since_map = fault_schedule.compromised_since()
            faulty = tuple(sorted(set(base_faulty) | set(since_map)))
            if len(faulty) >= self.n:
                raise ValueError("at least one agent must be honest")
            self._faulty.append(faulty)
            for agent, start_round in since_map.items():
                self._since[index, agent] = start_round
            for agent in base_faulty:
                self._since[index, agent] = 0  # from-the-start wins
            # This engine represents silence, so crash-capable attacks are
            # legal (full_attendance_engine=None), like the per-trial one.
            self._omniscient.append(
                validate_attack_plan(
                    trial.attack,
                    len(faulty),
                    trial.omniscient_attack,
                    full_attendance_engine=None,
                )
            )
            if trial.staleness_bound < 0:
                raise ValueError("staleness bound must be non-negative")
            self._tau[index] = int(trial.staleness_bound)
            if trial.missing_policy not in MISSING_POLICIES:
                raise ValueError(
                    f"unknown missing-neighbor policy "
                    f"{trial.missing_policy!r}; "
                    f"known: {', '.join(MISSING_POLICIES)}"
                )
            self._shrink[index] = trial.missing_policy == "shrink"
            if isinstance(trial.aggregator, str):
                aggregator = make_aggregator(
                    trial.aggregator, self.n, len(faulty)
                )
            else:
                aggregator = trial.aggregator
            self._aggregators.append(aggregator)
            start = (
                default_initial
                if trial.initial_estimate is None
                else validate_initial_estimate(trial.initial_estimate, self.d)
            )
            starts.append(start)
            self.rngs.append(np.random.default_rng(trial.seed))
            self._schedules.append(trial.schedule or schedule)

        #: per-trial Byzantine count — the declared consensus/outvote
        #: tolerance (crashes are availability faults, not adversarial).
        self._fault_counts = np.array(
            [len(f) for f in self._faulty], dtype=int
        )

        # -- topology groups and padded gather/edge structure -------------
        self._build_topology_structure(allow_disconnected)

        # Every agent starts from the trial's initial estimate: (S, n, d).
        tiled = np.repeat(np.stack(starts)[:, None, :], self.n, axis=1)
        self.estimates = self._project_all(tiled)
        self.iteration = 0
        self.guard = TrialGuard(s, divergence_threshold)

        self._attack_groups = self._group_attacks()
        self._partial_groups = self._group_aggregators()
        self._partial_merged = self._merge_partial_groups()
        self._mixing_groups = self._group_mixing() if self.mixing else []
        self._schedule_groups = [
            (self._schedules[rep], idx)
            for rep, idx in group_indices(
                s, lambda index: _config_key(self._schedules[index])
            )
        ]

        # The padded per-edge queue: slot k holds the newest view (send
        # round) arriving in k rounds; -1 = empty.  Queue state is
        # horizon-independent, so it lives here and persists across
        # chunked runs (and through state_dict/load_state).
        self._tau_max = int(self._tau.max())
        self._pending = np.full(
            (s, self._edge_max, self._tau_max + 1), -1, dtype=int
        )
        self._freshest = np.full((s, self._edge_max), -1, dtype=int)

        #: Pre-sampled horizon: rounds ``[0, _horizon)`` have network and
        #: fault realizations materialized; grows chunk by chunk (resume).
        self._horizon = 0
        #: Engine-owned deep copies of each trial's conditions — per-run
        #: chain state must persist across chunks *per trial*.
        self._run_conditions: Optional[List[Tuple[NetworkCondition, ...]]] = None
        self._net_rngs: Optional[List[List[np.random.Generator]]] = None

    # -- construction helpers ---------------------------------------------
    def _build_topology_structure(self, allow_disconnected: bool) -> None:
        """Group trials by topology; build padded per-trial gather tensors."""
        s = len(self.trials)
        self._topo_groups = []
        self._topo_of = np.empty(s, dtype=int)
        for rep, idx in group_indices(
            s, lambda index: self.trials[index].topology.adjacency.tobytes()
        ):
            topology = self.trials[rep].topology
            if not topology.is_connected():
                message = (
                    f"topology {topology.name!r} is disconnected: honest "
                    "agents in different components can never agree, so the "
                    "global consensus_gap() and convergence radius are "
                    "meaningless"
                )
                if not allow_disconnected:
                    raise ValueError(
                        message + "; pass allow_disconnected=True to run "
                        "anyway and analyse components separately"
                    )
                warnings.warn(message, RuntimeWarning, stacklevel=3)
            index, mask = topology.neighborhoods()
            senders, receivers, slots = topology.directed_edges()
            self._topo_of[idx] = len(self._topo_groups)
            self._topo_groups.append(
                {
                    "topology": topology,
                    "idx": idx,
                    "k": int(index.shape[1]),
                    "neighbor_index": index,
                    "neighbor_mask": mask,
                    "uniform": topology.is_regular,
                    "senders": senders,
                    "receivers": receivers,
                    "slots": slots,
                    "edges": int(senders.size),
                    "self_slots": np.array(
                        [
                            int(np.flatnonzero(index[i] == i)[0])
                            for i in range(self.n)
                        ]
                    ),
                }
            )

        self._k_max = max(g["k"] for g in self._topo_groups)
        self._edge_max = max(g["edges"] for g in self._topo_groups)
        self._edge_count = np.array(
            [g["edges"] for g in self._topo_groups], dtype=int
        )[self._topo_of]

        # Padded per-trial gather structure.  Pad indices are 0 (their
        # slots are never valid) and padded edge columns are born dropped.
        self._neighbor_index = np.zeros((s, self.n, self._k_max), dtype=int)
        self._neighbor_mask = np.zeros((s, self.n, self._k_max), dtype=bool)
        self._self_slots = np.zeros((s, self.n), dtype=int)
        self._edge_senders = np.zeros((s, self._edge_max), dtype=int)
        for g, group in enumerate(self._topo_groups):
            idx, k, e = group["idx"], group["k"], group["edges"]
            self._neighbor_index[idx, :, :k] = group["neighbor_index"]
            self._neighbor_mask[idx, :, :k] = group["neighbor_mask"]
            self._self_slots[idx] = group["self_slots"]
            self._edge_senders[idx, :e] = group["senders"]
        self._expected_counts = self._neighbor_mask.sum(axis=2)  # (S, n)

        # Flat (trial, edge) scatter coordinates over the *real* edges of
        # every trial: views[ft_trial, ft_receiver, ft_slot] takes edge
        # ft_edge's delivery state — the per-round edge scatter in one
        # fancy assignment.
        ft_trial, ft_edge, ft_receiver, ft_slot = [], [], [], []
        for group in self._topo_groups:
            idx, e = group["idx"], group["edges"]
            ft_trial.append(np.repeat(idx, e))
            ft_edge.append(np.tile(np.arange(e), idx.size))
            ft_receiver.append(np.tile(group["receivers"], idx.size))
            ft_slot.append(np.tile(group["slots"], idx.size))
        self._ft_trial = np.concatenate(ft_trial)
        self._ft_edge = np.concatenate(ft_edge)
        self._ft_receiver = np.concatenate(ft_receiver)
        self._ft_slot = np.concatenate(ft_slot)

    def _group_attacks(self):
        """(attack, faulty, omniscience, topology) fabrication groups.

        Topology joins the key because the per-edge scatter indices and the
        delivery-structure ``receivers`` mask the attack observes are graph
        properties; each trial still gets exactly one
        :meth:`~repro.attacks.base.ByzantineAttack.fabricate_edges` call
        per round from its own generator — the per-trial stream
        consumption.
        """
        groups = []
        for rep, idx in group_indices(
            len(self.trials),
            lambda index: (
                _config_key(self.trials[index].attack),
                self._faulty[index],
                self._omniscient[index],
                self.trials[index].topology.adjacency.tobytes(),
            ),
        ):
            trial = self.trials[rep]
            if trial.attack is None or not self._faulty[rep]:
                continue
            group = self._topo_groups[self._topo_of[rep]]
            faulty = np.array(self._faulty[rep])
            honest = np.array(
                [i for i in range(self.n) if i not in set(self._faulty[rep])]
            )
            # Scatter indices rewriting gathered neighborhoods with
            # per-edge fabrications: slot slots[m] of receiver
            # receivers[m]'s row carries faulty column columns[m].
            hit = group["neighbor_mask"] & np.isin(
                group["neighbor_index"], faulty
            )
            rows, slots = np.nonzero(hit)
            column_of = {int(fid): c for c, fid in enumerate(faulty)}
            columns = np.array(
                [
                    column_of[int(group["neighbor_index"][r, sl])]
                    for r, sl in zip(rows, slots)
                ],
                dtype=int,
            )
            # Closed out-neighborhood delivery mask per faulty agent (F, n).
            receivers = group["topology"].adjacency[:, faulty].T.copy()
            receivers[np.arange(faulty.size), faulty] = True
            groups.append(
                (
                    trial.attack,
                    faulty,
                    honest,
                    self._omniscient[rep],
                    idx,
                    (rows, slots, columns),
                    receivers,
                )
            )
        return groups

    def _group_aggregators(self):
        """(aggregator, topology) groups with exact + partial kernels.

        The exact kernel (folded ``aggregate_batch`` on regular graphs,
        degree-grouped dense dispatch — masked kernel as the fallback —
        on irregular ones) serves fully-attended trials —
        sliced to the topology's true ``k``, the bit-for-bit path of the
        per-trial engine.  Partial rounds always run the
        tolerance-parameterized masked kernel; filters without one are
        rejected at construction, naming the offender.
        """
        groups = []
        for rep, idx in group_indices(
            len(self.trials),
            lambda index: (
                _config_key(self._aggregators[index]),
                self.trials[index].topology.adjacency.tobytes(),
            ),
        ):
            aggregator = self._aggregators[rep]
            group = self._topo_groups[self._topo_of[rep]]
            kernel = None
            grouped = None
            if not group["uniform"]:
                kernel = masked_kernel_for(aggregator)
                if kernel is None:
                    raise ValueError(
                        f"aggregator {aggregator.name!r} has no masked "
                        "neighborhood kernel; irregular topologies support "
                        "mean, cwtm, median, cge and cge_mean"
                    )
                grouped = degree_grouped_kernel_for(
                    aggregator, group["neighbor_mask"]
                )
                try:
                    # Probe the path _aggregate_exact will actually run.
                    if grouped is not None:
                        grouped(np.zeros((1, self.n, group["k"], self.d)))
                    else:
                        kernel(
                            np.zeros((1, self.n, group["k"], self.d)),
                            group["neighbor_mask"],
                        )
                except ValueError as error:
                    raise ValueError(
                        f"aggregator {aggregator.name!r} cannot aggregate "
                        f"the neighborhoods of topology "
                        f"{group['topology'].name!r}: {error}"
                    ) from error
            else:
                try:
                    aggregator.aggregate_batch(
                        np.zeros((1, group["k"], self.d))
                    )
                except ValueError as error:
                    raise ValueError(
                        f"aggregator {aggregator.name!r} cannot aggregate "
                        f"the size-{group['k']} closed neighborhoods of "
                        f"topology {group['topology'].name!r}: {error}"
                    ) from error
            partial = masked_partial_kernel_for(aggregator)
            if partial is None:
                raise ValueError(
                    f"aggregator {aggregator_label(aggregator)} has no "
                    "masked neighborhood kernel; the delay-tolerant "
                    "decentralized engine supports mean, cwtm, median, "
                    "cge and cge_mean"
                )
            declared = int(getattr(aggregator, "f", 0))
            groups.append(
                (
                    aggregator,
                    kernel,
                    grouped,
                    partial,
                    declared,
                    idx,
                    self._topo_groups[self._topo_of[rep]],
                )
            )
        return groups

    def _merge_partial_groups(self):
        """Partial-path groups keyed by aggregator config alone.

        The tolerance-parameterized masked kernels sort invalid slots past
        every valid order statistic and index order statistics through the
        per-row attendance counts, so all-invalid padding columns beyond a
        topology's true ``k`` never reach a kept slot — trials over
        different topologies can share one padded ``k_max``-wide kernel
        call per round without moving a bit.  That collapses the partial
        path from one call per (aggregator, topology) group to one per
        aggregator config.
        """
        merged: Dict[object, Tuple] = {}
        for aggregator, _, _, partial, declared, idx, _ in self._partial_groups:
            key = _config_key(aggregator)
            entry = merged.setdefault(key, (aggregator, partial, declared, []))
            entry[3].append(idx)
        return [
            (aggregator, partial, declared, np.sort(np.concatenate(chunks)))
            for aggregator, partial, declared, chunks in merged.values()
        ]

    def _group_mixing(self):
        """(consensus trim, topology) mixing groups, degree-validated."""
        groups = []
        for rep, idx in group_indices(
            len(self.trials),
            lambda index: (
                len(self._faulty[index]),
                self.trials[index].topology.adjacency.tobytes(),
            ),
        ):
            group = self._topo_groups[self._topo_of[rep]]
            trim = len(self._faulty[rep])
            # Fail at construction, not mid-run: every mixing trim level
            # must leave at least one iterate per closed neighborhood.
            smallest = int(group["topology"].closed_in_degrees.min())
            if smallest - 2 * trim < 1:
                raise ValueError(
                    f"closed in-degree {smallest} cannot support "
                    f"consensus trimming at f={trim}"
                )
            groups.append((trim, idx, group))
        return groups

    # -- quarantine bookkeeping -------------------------------------------
    def _note_quarantined(
        self, trials: Sequence[int], round_index: int, reason: str
    ) -> None:
        """Emit one telemetry event per freshly frozen trial."""
        if not trials or not self.telemetry.enabled:
            return
        for t in trials:
            self.telemetry.emit(
                "trial_quarantined",
                trial=int(t),
                round=int(round_index),
                reason=reason,
                engine=type(self).__name__,
            )

    # -- helpers ----------------------------------------------------------
    def _project_all(self, estimates: np.ndarray) -> np.ndarray:
        s, n, d = estimates.shape
        # Constraint sets are plain-NumPy plugin code: cross the backend
        # boundary both ways around the projection.
        flat = self.constraint.project_batch(
            xp.to_numpy(estimates).reshape(s * n, d)
        )
        return xp.asarray(flat).reshape(s, n, d)

    # -- whole-run pre-sampling (chunked) ---------------------------------
    def _extend_horizon(self, t_total: int) -> None:
        """Pre-sample network and fault realizations out to ``t_total``.

        The first call plays the per-trial engine's whole-run pre-sample;
        later calls extend it chunk by chunk with continuous ``start`` and
        the persisted per-trial network generators, so by the conditions'
        chunk-invariance contract every chunking of a run — including a
        checkpoint/resume split — reproduces the uninterrupted realization
        bit for bit.
        """
        if t_total <= self._horizon:
            return
        s = len(self.trials)
        start = self._horizon

        if self._run_conditions is None:
            self._run_conditions = [
                copy.deepcopy(tuple(trial.conditions))
                for trial in self.trials
            ]
            self._net_rngs = [
                network_streams(trial.seed, len(conditions))
                for trial, conditions in zip(
                    self.trials, self._run_conditions
                )
            ]
            for index, (conditions, net_rngs) in enumerate(
                zip(self._run_conditions, self._net_rngs)
            ):
                for condition, net_rng in zip(conditions, net_rngs):
                    condition.begin_run(int(self._edge_count[index]), net_rng)
            self._net_delays = np.zeros((0, s, self._edge_max), dtype=int)
            self._net_dropped = np.ones((0, s, self._edge_max), dtype=bool)
            self._active = np.zeros((0, s, self.n), dtype=bool)
            self._silenced = np.zeros((0, s, self.n), dtype=bool)
            self._trajectory = np.empty((1, s, self.n, self.d))
            self._trajectory[0] = self.estimates
            self._grad_history = np.empty((0, s, self.n, self.d))
            self._stalled = np.zeros((0, s, self.n), dtype=bool)
            self._usable_edge_counts = np.zeros((0, s), dtype=int)
            self._staleness_sums = np.zeros((0, s))

        chunk = t_total - start
        # Padded edge columns are born dropped with delay 0: they can
        # never enqueue, matching the per-trial engines' exact edge count.
        delays = np.zeros((t_total, s, self._edge_max), dtype=int)
        dropped = np.ones((t_total, s, self._edge_max), dtype=bool)
        active = np.zeros((t_total, s, self.n), dtype=bool)
        delays[:start] = self._net_delays[:start]
        dropped[:start] = self._net_dropped[:start]
        active[:start] = self._active[:start]
        for index, trial in enumerate(self.trials):
            edges = int(self._edge_count[index])
            chunk_delays, chunk_dropped = sample_network_run(
                self._run_conditions[index],
                self._net_rngs[index],
                edges,
                chunk,
                start=start,
            )
            delays[start:, index, :edges] = chunk_delays
            dropped[start:, index, :edges] = chunk_dropped
            active[start:, index, :] = self._fault_schedules[
                index
            ].sample_run(None, self.n, chunk, start=start)
        self._net_delays = delays
        self._net_dropped = dropped
        self._active = active

        # Attack-scheduled silence (crash-style faults) for the new
        # rounds: a compromised agent that silences dispatches on no
        # out-edge, exactly like the per-trial engine's dispatch check.
        silenced = np.zeros((t_total, s, self.n), dtype=bool)
        silenced[:start] = self._silenced[:start]
        for index, trial in enumerate(self.trials):
            if trial.attack is None or not trial.attack.may_be_silent:
                continue
            for agent in np.flatnonzero(
                self._since[index] < np.iinfo(np.int64).max
            ):
                first = max(int(self._since[index, agent]), start)
                for t in range(first, t_total):
                    if trial.attack.silences(int(agent), t):
                        silenced[t, index, agent] = True
        self._silenced = silenced

        # Step sizes are deterministic in the round index: rebuild fully.
        self._etas = np.empty((t_total, s))
        for sched, idx in self._schedule_groups:
            self._etas[:, idx] = np.array(
                [sched(t) for t in range(t_total)]
            )[:, None]

        trajectory = np.empty((t_total + 1, s, self.n, self.d))
        trajectory[: start + 1] = self._trajectory[: start + 1]
        self._trajectory = trajectory
        grad_history = np.empty((t_total, s, self.n, self.d))
        grad_history[:start] = self._grad_history[:start]
        self._grad_history = grad_history
        for name, shape, dtype in (
            ("_stalled", (t_total, s, self.n), bool),
            ("_usable_edge_counts", (t_total, s), int),
            ("_staleness_sums", (t_total, s), float),
        ):
            grown = np.zeros(shape, dtype=dtype)
            grown[:start] = getattr(self, name)[:start]
            setattr(self, name, grown)
        self._horizon = t_total

    # -- protocol stages --------------------------------------------------
    def observe(self) -> ProtocolRound:
        """Dispatch on every live edge, deliver, and gather the views."""
        if self.iteration >= self._horizon:
            raise RuntimeError(
                "drive BatchDelayedDecentralizedSimulator through run(); "
                "stand-alone step() has no pre-sampled horizon"
            )
        t = self.iteration
        s = len(self.trials)

        # Quarantined trials are masked out of the einsum — their held
        # iterates are never differentiated again — and dispatch nothing.
        if self.guard.any_quarantined:
            gradients = xp.zeros((s, self.n, self.d))
            act = self.guard.active
            gradients[act] = self.stack.gradients_each(self.estimates[act])
        else:
            gradients = self.stack.gradients_each(self.estimates)  # (S, n, d)
        self._grad_history[t] = gradients

        # Dispatch: live senders put this round's message on each out-edge
        # whose sampled delay keeps it usable; the send round t is newer
        # than every pending view, so overwrite wins.
        sends = (
            self._active[t]
            & ~self._silenced[t]
            & self.guard.active[:, None]
        )  # (S, n)
        trial_rows = np.arange(s)[:, None]
        sent_e = (
            sends[trial_rows, self._edge_senders]
            & ~self._net_dropped[t]
        )  # (S, E_max); padded columns are born dropped
        delay_e = self._net_delays[t]
        enqueue = sent_e & (delay_e <= self._tau[:, None])
        trial_ix, edge_ix = np.nonzero(enqueue)
        self._pending[trial_ix, edge_ix, delay_e[trial_ix, edge_ix]] = t

        # Deliver slot 0 and shift the queue one round closer.
        self._freshest = np.maximum(self._freshest, self._pending[:, :, 0])
        self._pending[:, :, :-1] = self._pending[:, :, 1:]
        self._pending[:, :, -1] = -1

        usable_e = (self._freshest >= 0) & (
            t - self._freshest <= self._tau[:, None]
        )  # (S, E_max); padded columns never delivered, so never usable

        # Per-slot view rounds: own message always fresh; real edges carry
        # their last usable delivery; padding and dead edges stay -1.
        views = np.full((s, self.n, self._k_max), -1, dtype=int)
        np.put_along_axis(views, self._self_slots[:, :, None], t, axis=2)
        views[self._ft_trial, self._ft_receiver, self._ft_slot] = np.where(
            usable_e[self._ft_trial, self._ft_edge],
            self._freshest[self._ft_trial, self._ft_edge],
            -1,
        )
        valid = views >= 0

        # Gather both payload channels against the histories: one fancy
        # gather each, no per-message Python objects.
        safe_views = np.maximum(views, 0)
        trials_ix = np.arange(s)[:, None, None]
        grad_views = self._grad_history[
            safe_views, trials_ix, self._neighbor_index
        ]
        est_views = self._trajectory[
            safe_views, trials_ix, self._neighbor_index
        ]

        return ProtocolRound(
            iteration=t,
            gradients=gradients,
            extras={
                "valid": valid,
                "views": views,
                "grad_views": grad_views,
                "est_views": est_views,
                "usable_edges": usable_e,
                "crashed": ~self._active[t],                  # (S, n)
            },
        )

    def fabricate(self, round: ProtocolRound) -> None:
        """Rewrite usable slots of currently-compromised senders.

        The attack context and stream consumption match the per-trial
        engine round for round; fabrications only land on valid slots
        whose sender's compromise has started.
        """
        t = round.iteration
        gradients = round.gradients
        neighborhoods = round.extras["grad_views"]
        valid = round.extras["valid"]
        live = self._since <= t  # (S, n)
        for (
            attack,
            faulty,
            honest,
            omniscient,
            idx,
            scatter,
            receivers,
        ) in self._attack_groups:
            # Frozen trials fabricate nothing and consume no stream.
            active = self.guard.live(idx)
            if not active.size:
                continue
            # Attacks are plain-NumPy plugin code: context observables
            # cross the backend boundary as base arrays.
            context = DecentralizedAttackContext(
                iteration=t,
                reference_estimates=xp.to_numpy(
                    self.estimates[np.ix_(active, honest[:1])][:, 0]
                ),
                agent_estimates=xp.to_numpy(self.estimates[active]),
                faulty_ids=faulty.tolist(),
                true_gradients=xp.to_numpy(
                    gradients[np.ix_(active, faulty)]
                ),
                honest_gradients=(
                    xp.to_numpy(gradients[np.ix_(active, honest)])
                    if omniscient
                    else None
                ),
                honest_ids=honest.tolist(),
                receivers=receivers,
                rngs=[self.rngs[i] for i in active],
            )
            fabricated = np.asarray(
                attack.fabricate_edges(context), dtype=float
            )
            expected = (active.size, faulty.size, self.n, self.d)
            if fabricated.shape != expected:
                raise RuntimeError(
                    f"attack {attack.name!r} returned shape "
                    f"{fabricated.shape}, expected {expected}"
                )
            rows, slots, columns = scatter
            keep = (
                valid[active][:, rows, slots]
                & live[active][:, faulty[columns]]
            )
            current = neighborhoods[
                active[:, None], rows[None, :], slots[None, :]
            ]
            neighborhoods[active[:, None], rows[None, :], slots[None, :]] = (
                np.where(keep[:, :, None], fabricated[:, columns, rows], current)
            )
        round.views = neighborhoods

    def aggregate(self, round: ProtocolRound) -> None:
        """Filter + mix through the missing-neighbor policies; mark stalls.

        The fully-attended / partial split is decided **per trial**, never
        batch-globally, and every kernel input is sliced to the trial's
        topology's true ``k`` — so each trial's trajectory is bit-identical
        whether it runs solo, per sweep cell, or fused into the whole
        sweep.
        """
        s = len(self.trials)
        valid = round.extras["valid"]                   # (S, n, k_max)
        est_views = round.extras["est_views"]
        crashed = round.extras["crashed"]               # (S, n)

        self._screen_strict_views(round.views, valid, round.iteration)

        full_trials = (
            (valid == self._neighbor_mask).all(axis=(1, 2))
            & ~crashed.any(axis=1)
        )  # (S,)
        if full_trials.all():
            # Every trial fully attended: the bit-for-bit degenerate path.
            stalled = np.zeros((s, self.n), dtype=bool)
            round.aggregates = self._aggregate_exact(
                round.views, np.arange(s), round.iteration
            )
            if self.mixing:
                round.extras["mix"] = self._mix(
                    est_views, np.arange(s), None, None, full_only=True
                )
            round.extras["stalled_agents"] = stalled
            return

        partial_trials = np.flatnonzero(~full_trials)
        counts = valid.sum(axis=2)                      # (S, n)
        missing = self._expected_counts - counts
        shrink = self._shrink                           # (S,) per trial

        # Consensus/outvote tolerance per (trial, agent): the trial's
        # Byzantine count, shrunk with the neighborhood's shortfall under
        # the shrink policy (missing ≈ the faulty ones staying silent).
        declared = np.broadcast_to(self._fault_counts[:, None], (s, self.n))
        trim = np.where(
            shrink[:, None], np.maximum(0, declared - missing), declared
        )

        # Fully-attended trials never stall (the construction-time degree
        # checks guarantee their floors); only partial trials can.
        stalled = np.zeros((s, self.n), dtype=bool)
        stalled[partial_trials] |= crashed[partial_trials]
        stalled[partial_trials] |= (counts < trim + 1)[partial_trials]
        if self.mixing:
            stalled[partial_trials] |= (counts - 2 * trim < 1)[partial_trials]

        # Per-group filter tolerance and its kernel floor.  Only partial
        # trials ever read their tolerance row (the exact path has none),
        # so the computation restricts to them.
        tolerance = np.zeros((s, self.n), dtype=int)
        for aggregator, _, declared_f, idx in self._partial_merged:
            sub = idx[~full_trials[idx]]
            if not sub.size:
                continue
            tol = np.where(
                shrink[sub][:, None],
                np.maximum(0, declared_f - missing[sub]),
                declared_f,
            ).astype(int)
            tolerance[sub] = tol
            floor = masked_min_attendance_for_tolerance(aggregator, tol)
            stalled[sub] |= counts[sub] < floor

        # Stalled agents hold; give them a self-only mask at zero
        # tolerance so the batched kernels stay defined, then discard.
        mask = valid & ~stalled[:, :, None]
        stall_trials, stall_agents = np.nonzero(stalled)
        mask[
            stall_trials,
            stall_agents,
            self._self_slots[stall_trials, stall_agents],
        ] = True
        tolerance[stalled] = 0
        trim = np.where(stalled, 0, trim)

        updates = xp.empty((s, self.n, self.d))
        full_idx = np.flatnonzero(full_trials)
        if full_idx.size:
            # Fully-attended trials take the per-(aggregator, topology)
            # exact kernels, sliced to each topology's true k.
            updates[full_idx] = self._aggregate_exact(
                round.views, full_idx, round.iteration
            )
        for aggregator, partial_kernel, _, idx in self._partial_merged:
            sub = idx[~full_trials[idx]]
            if sub.size:
                # One padded k_max-wide call per aggregator config covers
                # every topology's partial trials (padding invariance).
                with aggregation_round(
                    round.iteration, aggregator_label(aggregator)
                ):
                    updates[sub] = partial_kernel(
                        round.views[sub].reshape(
                            1, sub.size * self.n, self._k_max, self.d
                        ),
                        mask[sub].reshape(sub.size * self.n, self._k_max),
                        tolerance[sub].reshape(sub.size * self.n),
                    )[0].reshape(sub.size, self.n, self.d)
        round.aggregates = updates

        if self.mixing:
            round.extras["mix"] = self._mix(
                est_views,
                np.flatnonzero(full_trials),
                partial_trials,
                (mask, trim),
                full_only=False,
            )
        round.extras["stalled_agents"] = stalled

    def _screen_strict_views(
        self, views: np.ndarray, valid: np.ndarray, round_index: int
    ) -> None:
        """Quarantine trials whose strict filter faces non-finite views.

        The pre-check mirrors the strict kernels' own front-door
        validation (reason ``aggregator_refused``), and the refused
        trials' views are zeroed so no batched kernel ever raises —
        their aggregates are discarded by the guard's hold anyway.
        """
        for aggregator, _, _, idx in self._partial_merged:
            if not aggregator.quarantines_on_nonfinite:
                continue
            live = self.guard.live(idx)
            if not live.size:
                continue
            bad = (nonfinite_rows(views[live]) & valid[live]).any(
                axis=(1, 2)
            )
            if bad.any():
                fresh = self.guard.quarantine(
                    live[bad], round_index, AGGREGATOR_REFUSED
                )
                self._note_quarantined(fresh, round_index, AGGREGATOR_REFUSED)
                views[live[bad]] = 0.0

    def _aggregate_exact(
        self, views: np.ndarray, subset: np.ndarray, round_index: int
    ) -> np.ndarray:
        """Exact-kernel aggregation of the fully-attended ``subset``."""
        updates = xp.empty((subset.size, self.n, self.d))
        in_subset = np.zeros(len(self.trials), dtype=bool)
        in_subset[subset] = True
        position = np.cumsum(in_subset) - 1
        for aggregator, kernel, grouped, _, _, idx, group in self._partial_groups:
            members = idx[in_subset[idx]]
            if not members.size:
                continue
            k = group["k"]
            group_views = views[members][:, :, :k]
            with aggregation_round(
                round_index, aggregator_label(aggregator)
            ):
                if kernel is None:
                    folded = group_views.reshape(
                        members.size * self.n, k, self.d
                    )
                    updates[position[members]] = aggregator.aggregate_batch(
                        folded
                    ).reshape(members.size, self.n, self.d)
                elif grouped is not None:
                    updates[position[members]] = grouped(group_views)
                else:
                    updates[position[members]] = kernel(
                        group_views, group["neighbor_mask"]
                    )
        return updates

    def _mix(
        self,
        est_views: np.ndarray,
        exact_trials: np.ndarray,
        partial_trials: Optional[np.ndarray],
        partial_state: Optional[Tuple[np.ndarray, np.ndarray]],
        full_only: bool,
    ) -> np.ndarray:
        """Stale trimmed-mean consensus mix, exact + masked-partial paths."""
        mixed = xp.empty((len(self.trials), self.n, self.d))
        in_exact = np.zeros(len(self.trials), dtype=bool)
        in_exact[exact_trials] = True
        for trim_count, gidx, group in self._mixing_groups:
            members = gidx[in_exact[gidx]]
            if not members.size:
                continue
            k = group["k"]
            group_views = est_views[members][:, :, :k]
            if group["uniform"]:
                folded = group_views.reshape(
                    members.size * self.n, k, self.d
                )
                mixed[members] = trimmed_mean_batch(
                    folded, trim_count
                ).reshape(members.size, self.n, self.d)
            else:
                # Degree-bucketed dense dispatch, matching the synchronous
                # engine's _mix_neighborhoods so every exact mixing path
                # agrees bit-for-bit across the engine family.
                for degree, ids in group["topology"].degree_groups():
                    dense = group_views[:, ids, :degree, :].reshape(
                        members.size * ids.size, degree, self.d
                    )
                    mixed[np.ix_(members, ids)] = trimmed_mean_batch(
                        dense, trim_count
                    ).reshape(members.size, ids.size, self.d)
        if not full_only and partial_trials is not None and partial_trials.size:
            mask, trim = partial_state
            sub = partial_trials
            # One padded k_max-wide call mixes every topology's partial
            # trials: the masked trimmed mean indexes order statistics by
            # attendance count, so the all-invalid padding never lands.
            mixed[sub] = masked_trimmed_mean_batch(
                est_views[sub].reshape(
                    1, sub.size * self.n, self._k_max, self.d
                ),
                mask[sub].reshape(sub.size * self.n, self._k_max),
                trim[sub].reshape(sub.size * self.n),
            )[0].reshape(sub.size, self.n, self.d)
        return mixed

    def project(self, round: ProtocolRound) -> np.ndarray:
        """Projected update on the live agents; stalled agents hold.

        The *effective* candidates (stalled agents already holding) are
        screened per trial before the projection: a non-finite or
        diverged iterate quarantines only that trial, which the guard
        then holds bit-exactly at its last healthy iterate batch.
        """
        t = round.iteration
        etas = self._etas[t]
        base = round.extras["mix"] if self.mixing else self.estimates
        candidates = base - etas[:, None, None] * round.aggregates
        stalled = round.extras["stalled_agents"]
        previous = self.estimates
        effective = xp.where(stalled[:, :, None], previous, candidates)
        before = set(self.guard.records)
        held = self.guard.screen(t, previous, effective)
        for trial in sorted(self.guard.records.keys() - before):
            self._note_quarantined(
                [trial], t, str(self.guard.records[trial]["reason"])
            )
        projected = self._project_all(held)
        self.estimates = self.guard.hold(
            previous, xp.where(stalled[:, :, None], previous, projected)
        )
        self.iteration = t + 1

        usable_e = round.extras["usable_edges"]
        self._trajectory[t + 1] = self.estimates
        self._stalled[t] = stalled
        self._usable_edge_counts[t] = usable_e.sum(axis=1)
        self._staleness_sums[t] = np.where(
            usable_e, t - self._freshest, 0
        ).sum(axis=1)
        return self.estimates

    # -- run --------------------------------------------------------------
    def _run_result(self) -> BatchDelayedDecentralizedTrace:
        honest_ids = [
            tuple(i for i in range(self.n) if i not in set(faulty))
            for faulty in self._faulty
        ]
        labels = [
            trial.label
            or f"{trial.topology.name}/{aggregator.name}"
            f"/{trial.attack.name if trial.attack else 'honest'}"
            for trial, aggregator in zip(self.trials, self._aggregators)
        ]
        return BatchDelayedDecentralizedTrace(
            estimates=self._trajectory,
            step_sizes=self._etas,
            honest_ids=honest_ids,
            labels=labels,
            stalled=self._stalled,
            usable_edge_counts=self._usable_edge_counts,
            staleness_sums=self._staleness_sums,
            edges=self._edge_count.copy(),
            quarantined=self.guard.summary(),
        )

    def run(
        self, iterations: int, start_round: Optional[int] = None
    ) -> BatchDelayedDecentralizedTrace:
        """Run to round ``iterations`` and return the lazy ``0..T`` trace.

        ``iterations`` is the *absolute* horizon ``T``.  A fresh engine
        (``start_round`` omitted) pre-samples and runs all ``T`` rounds.
        A resumed engine (after :meth:`load_state`, or carrying on after
        an earlier ``run``) passes the round it stopped at as
        ``start_round``; the horizon extension re-pre-samples only
        ``[start_round, T)`` with the persisted per-trial network
        generators, which the chunk-invariance contract of
        :meth:`~repro.distsys.faults.NetworkCondition.sample_run` makes
        bit-identical to the uninterrupted whole-run pre-sample.
        """
        start = 0 if start_round is None else int(start_round)
        if start != self.iteration:
            raise ValueError(
                f"start_round={start} but the engine is at iteration "
                f"{self.iteration}; resume exactly where the engine "
                "stopped (pass start_round=engine.iteration)"
            )
        if iterations <= start:
            raise ValueError(
                f"iterations is the absolute horizon T and must exceed "
                f"start_round; got T={iterations}, start_round={start}"
            )
        self._extend_horizon(int(iterations))
        with self.telemetry.span(
            "engine_run",
            engine=type(self).__name__,
            start_round=start,
            horizon=int(iterations),
            trials=len(self.trials),
        ):
            for _ in range(int(iterations) - start):
                self.step()
        return self._run_result()

    def _record_round_metrics(
        self, recorder: Recorder, round: ProtocolRound
    ) -> None:
        """Per-round delayed-gossip counters (recording on only)."""
        usable_e = round.extras["usable_edges"]
        recorder.count("usable_edges", int(usable_e.sum()))
        stalled = round.extras.get("stalled_agents")
        if stalled is not None:
            recorder.count("stalled_agents", int(stalled.sum()))
        recorder.gauge(
            "queue_depth", int((self._pending >= 0).sum())
        )

    # -- checkpoint support -----------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-able snapshot at a chunk boundary of a longer run.

        The engine pre-samples each trial's network stream through round
        ``_horizon``, so a snapshot is only stream-consistent where
        ``iteration == _horizon`` — exactly at the end of a :meth:`run`
        chunk.  Captures the iterate batch, both generator families, the
        per-run condition state, the in-flight per-edge queues and the
        recorded prefixes of *both* payload channels (iterate trajectory
        and gradient history, which stale views gather against);
        :meth:`load_state` on a freshly constructed engine with the same
        trials continues bit-identically.
        """
        if self._run_conditions is None:
            raise RuntimeError(
                "state_dict needs a begun run: call run() first"
            )
        k = int(self.iteration)
        if k != self._horizon:
            raise RuntimeError(
                f"state_dict snapshots chunk boundaries only: the engine "
                f"is at round {k} with a pre-sampled horizon of "
                f"{self._horizon}, and the network stream cannot be "
                "rewound — checkpoint exactly at the end of a run() chunk"
            )
        return {
            "schema": "repro/batch-decentralized-delay-state/v1",
            "iteration": k,
            "estimates": self.estimates.tolist(),
            "rng_states": [rng.bit_generator.state for rng in self.rngs],
            "net_rng_states": [
                [rng.bit_generator.state for rng in streams]
                for streams in self._net_rngs
            ],
            "condition_states": [
                [condition.state_dict() for condition in conditions]
                for conditions in self._run_conditions
            ],
            "pending": self._pending.tolist(),
            "freshest": self._freshest.tolist(),
            "quarantine": self.guard.state_dict(),
            "trajectory": self._trajectory[: k + 1].tolist(),
            "grad_history": self._grad_history[:k].tolist(),
            "stalled": self._stalled[:k].tolist(),
            "usable_edge_counts": self._usable_edge_counts[:k].tolist(),
            "staleness_sums": self._staleness_sums[:k].tolist(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto a fresh engine."""
        schema = state.get("schema")
        if schema != "repro/batch-decentralized-delay-state/v1":
            raise ValueError(f"unrecognized engine-state schema: {schema!r}")
        if self.iteration != 0 or self._horizon != 0:
            raise RuntimeError(
                "load_state needs a freshly constructed engine"
            )
        s = len(self.trials)
        for name in ("rng_states", "net_rng_states", "condition_states"):
            if len(state[name]) != s:
                raise ValueError(
                    f"state holds {len(state[name])} {name} entries but "
                    f"the engine has {s} trials"
                )
        k = int(state["iteration"])
        self._run_conditions = [
            copy.deepcopy(tuple(trial.conditions)) for trial in self.trials
        ]
        self._net_rngs = [
            network_streams(trial.seed, len(conditions))
            for trial, conditions in zip(self.trials, self._run_conditions)
        ]
        for index, (
            conditions,
            net_rngs,
            condition_states,
            stream_states,
        ) in enumerate(
            zip(
                self._run_conditions,
                self._net_rngs,
                state["condition_states"],
                state["net_rng_states"],
            )
        ):
            if len(condition_states) != len(conditions):
                raise ValueError(
                    f"state holds {len(condition_states)} condition states "
                    f"for a trial with {len(conditions)} conditions"
                )
            if len(stream_states) != len(conditions):
                raise ValueError(
                    f"state holds {len(stream_states)} network-stream "
                    f"states for a trial with {len(conditions)} conditions"
                )
            for condition, net_rng in zip(conditions, net_rngs):
                condition.begin_run(int(self._edge_count[index]), net_rng)
            for condition, condition_state in zip(
                conditions, condition_states
            ):
                condition.load_state(condition_state)
            for rng, rng_state in zip(net_rngs, stream_states):
                rng.bit_generator.state = rng_state
        for rng, rng_state in zip(self.rngs, state["rng_states"]):
            rng.bit_generator.state = rng_state

        self.iteration = k
        self._horizon = k
        self.estimates = xp.asarray(
            np.asarray(state["estimates"], dtype=float)
        )
        self._pending = np.asarray(state["pending"], dtype=int)
        self._freshest = np.asarray(state["freshest"], dtype=int)
        # Absent in pre-quarantine snapshots: every trial stays active.
        quarantine = state.get("quarantine")
        if quarantine is not None:
            self.guard.load_state(quarantine)
        # Rounds before k are already consumed: their realization is never
        # re-read, so the prefix tensors stay placeholder-filled (padded
        # edge columns dropped, like a fresh pre-sample).
        self._net_delays = np.zeros((k, s, self._edge_max), dtype=int)
        self._net_dropped = np.ones((k, s, self._edge_max), dtype=bool)
        self._active = np.zeros((k, s, self.n), dtype=bool)
        self._silenced = np.zeros((k, s, self.n), dtype=bool)
        self._trajectory = np.asarray(state["trajectory"], dtype=float)
        self._grad_history = np.asarray(state["grad_history"], dtype=float)
        self._stalled = np.asarray(state["stalled"], dtype=bool)
        self._usable_edge_counts = np.asarray(
            state["usable_edge_counts"], dtype=int
        )
        self._staleness_sums = np.asarray(
            state["staleness_sums"], dtype=float
        )
        self._etas = np.zeros((k, s))


def run_decentralized_delayed_batch(
    costs: Union[Sequence[CostFunction], CostStack],
    trials: Sequence[DelayBatchTrial],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    mixing: bool = True,
    allow_disconnected: bool = False,
    divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
) -> BatchDelayedDecentralizedTrace:
    """Convenience wrapper mirroring :func:`~repro.distsys.batch.run_dgd_batch`."""
    simulator = BatchDelayedDecentralizedSimulator(
        costs=costs,
        trials=trials,
        constraint=constraint,
        schedule=schedule,
        initial_estimate=initial_estimate,
        mixing=mixing,
        allow_disconnected=allow_disconnected,
        divergence_threshold=divergence_threshold,
    )
    # Convenience runners report to the ambient recorder: a no-op
    # with the default NULL_RECORDER, a live stream under the CLI's
    # --telemetry-out / the orchestrator's worker recorders.
    return simulator.set_recorder(current_recorder()).run(iterations)
