"""Composable network conditions and fault-schedule timelines.

The synchronous engines assume the paper's lock-step round: every message
sent in round ``t`` is delivered in round ``t``.  This module describes the
ways a real deployment breaks that assumption, as data the asynchronous
engine (:mod:`repro.distsys.asynchronous`) can replay deterministically:

* :class:`NetworkCondition` — one aspect of link behaviour (a per-link
  delay distribution, an i.i.d. or bursty drop process, a straggler set
  with slowdown factors).  Conditions *compose*: the engine applies them in
  sequence to the round's per-agent delay vector and drop mask, so "uplink
  delays uniform on {0,1,2}, plus 10% i.i.d. loss, plus agent 3 running 4x
  slow" is just a list of three conditions.
* :class:`FaultSchedule` — a timeline of *agent* faults: crash-at-round,
  crash-and-recover, and Byzantine-from-round events.  Crash and Byzantine
  faults therefore compose in one run (an agent can crash, recover, and
  later be compromised).

Everything is deterministic given the engine's seed: conditions draw from a
dedicated network generator (separate from the attack's stream, so adding a
condition never perturbs an attack's fabrications), and they sample for all
``n`` agents every round regardless of crash state, keeping the stream's
consumption independent of the fault timeline.

**Whole-run pre-sampling.**  The engines do not call
:meth:`NetworkCondition.condition_round` round by round; they pre-sample a
whole run's delay/drop tensors up front through
:meth:`NetworkCondition.sample_run` (and :func:`sample_network_run`, which
composes a pipeline).  A condition samples its entire ``(rounds, n)`` block
in one vectorized draw, so the per-round per-link Python RNG calls of the
event loop disappear and the batched engine can pre-sample every trial of a
sweep.

**Chunk invariance.**  Every built-in condition's own :meth:`sample_run`
is *chunk-invariant*: splitting a run into multi-round chunks (continuous
``start``, same generator) reproduces the uncut whole-run realization bit
for bit.  The samplers consume the underlying bit stream one variate at a
time (``random``/``integers``/``geometric`` — capped geometric included),
and the stateful Gilbert–Elliott chain draws its randomness
round-interleaved and persists its burst state on the instance, so an
engine extending its horizon chunk by chunk sees exactly the realization a
whole-run pre-sample would have produced.
``tests/distsys/test_faults.py`` holds the property tests.

**Per-condition streams.**  Chunk invariance is a *per-generator*
property: a pipeline of two or more stochastic conditions sharing one
generator is consumed condition-major within each sampled chunk, so the
interleaving — and hence the realization — would depend on where the chunk
boundaries fall.  The engines therefore give every pipeline position its
own independent generator (:func:`network_streams`: position ``i`` draws
from ``default_rng((seed, _NET_TAG, i))``), which makes the composed
pipeline chunk-invariant too: each condition's stream advances with its
own draws only, wherever the chunks are cut.  :func:`sample_network_run`
accepts either one shared generator (legacy single-chunk callers) or one
generator per condition.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

__all__ = [
    "DelaySampler",
    "fixed_delay",
    "uniform_delay",
    "geometric_delay",
    "NetworkCondition",
    "LinkDelay",
    "IIDDrop",
    "BurstyDrop",
    "Stragglers",
    "RECOVERY_MODES",
    "FaultEvent",
    "FaultSchedule",
    "network_streams",
    "sample_network_run",
]

#: Network-stream tag: the engines seed pipeline position ``i``'s network
#: generator as ``default_rng((seed, _NET_TAG, i))`` (see
#: :func:`network_streams`), so a batched trial replays the per-trial
#: realization bit for bit and chunked pre-sampling is bit-identical to
#: the uninterrupted whole-run pre-sample.
_NET_TAG = 0x6E6574


# -- delay distributions -------------------------------------------------------

#: Samples ``size`` non-negative integer round delays from a generator.
DelaySampler = Callable[[np.random.Generator, int], np.ndarray]


def fixed_delay(rounds: int) -> DelaySampler:
    """Every message takes exactly ``rounds`` extra rounds to arrive."""
    if not rounds >= 0:
        raise ValueError(
            f"fixed_delay rounds must be non-negative, got rounds={rounds!r}"
        )

    def sample(rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, int(rounds), dtype=int)

    return sample


def uniform_delay(low: int, high: int) -> DelaySampler:
    """Delays drawn uniformly from the integers ``low..high`` inclusive."""
    if not 0 <= low <= high:
        raise ValueError(
            f"uniform_delay needs 0 <= low <= high, got low={low!r}, "
            f"high={high!r}"
        )

    def sample(rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.integers(int(low), int(high) + 1, size=size)

    return sample


def geometric_delay(p: float, cap: int = 64) -> DelaySampler:
    """Geometric delays (number of failures before success), capped.

    ``p`` is the per-round delivery probability; the cap keeps a single
    unlucky draw from stalling a bounded-staleness run forever.
    """
    if not 0 < p <= 1:
        raise ValueError(
            f"geometric_delay delivery probability p must be in (0, 1], "
            f"got p={p!r}"
        )
    if not cap >= 0:
        raise ValueError(
            f"geometric_delay cap must be non-negative, got cap={cap!r}"
        )

    def sample(rng: np.random.Generator, size: int) -> np.ndarray:
        return np.minimum(rng.geometric(p, size=size) - 1, int(cap))

    return sample


# -- composable link conditions ------------------------------------------------

class NetworkCondition(abc.ABC):
    """One composable aspect of per-link behaviour.

    The asynchronous engine calls :meth:`begin_run` once, then
    :meth:`condition_round` every round with the per-agent ``delays``
    (int ``(n,)`` array of extra rounds before the server sees each
    agent's round-``t`` message) and ``dropped`` (bool ``(n,)`` mask);
    conditions refine both arrays in place, in registration order.
    """

    def begin_run(self, n: int, rng: np.random.Generator) -> None:
        """Reset any per-run state (burst chains, ...); default: none."""

    @abc.abstractmethod
    def condition_round(
        self,
        iteration: int,
        delays: np.ndarray,
        dropped: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Refine this round's per-agent delays and drop mask in place."""

    def sample_run(
        self,
        rng: np.random.Generator,
        n: int,
        rounds: int,
        delays: np.ndarray,
        dropped: np.ndarray,
        start: int = 0,
    ) -> None:
        """Refine a whole run's ``(rounds, n)`` delay/drop tensors in place.

        The pre-sampling fast path: subclasses draw their entire block in
        one vectorized call instead of ``rounds`` per-round calls.  ``start``
        is the absolute round index of row 0, so chunked extension (an
        engine stepping past its pre-sampled horizon) stays consistent with
        round-indexed behaviour.  The default falls back to the per-round
        hook, which keeps third-party conditions working unchanged —
        and makes a one-round chunk consume the stream exactly like the
        historical per-round path.
        """
        for k in range(rounds):
            self.condition_round(start + k, delays[k], dropped[k], rng)

    # -- resume support ----------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of the per-run state a resume must restore.

        The built-in conditions are stateless across rounds except the
        Gilbert–Elliott chain; the default returns an empty dict.  Engines
        checkpointing mid-run persist this next to their generator states
        and hand it back through :meth:`load_state` after
        :meth:`begin_run` on the restored instance.
        """
        return {}

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (after :meth:`begin_run`)."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but got state keys "
                f"{sorted(state)}"
            )

    def __repr__(self) -> str:
        params = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        inner = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"


def _agent_mask(agents: Optional[Iterable[int]], n: int) -> np.ndarray:
    """Boolean selector for a condition's agent subset (default: all)."""
    if agents is None:
        return np.ones(n, dtype=bool)
    mask = np.zeros(n, dtype=bool)
    ids = [int(i) for i in agents]
    bad = sorted(i for i in ids if not 0 <= i < n)
    if bad:
        raise ValueError(f"condition names agents {bad} outside range(n={n})")
    mask[ids] = True
    return mask


class LinkDelay(NetworkCondition):
    """Adds sampled delivery delays to the links of ``agents`` (default all)."""

    def __init__(
        self, sampler: DelaySampler, agents: Optional[Sequence[int]] = None
    ):
        self.sampler = sampler
        self.agents = None if agents is None else tuple(int(i) for i in agents)
        self._mask: Optional[np.ndarray] = None

    def begin_run(self, n: int, rng: np.random.Generator) -> None:
        self._mask = _agent_mask(self.agents, n)

    def condition_round(self, iteration, delays, dropped, rng) -> None:
        extra = np.asarray(self.sampler(rng, delays.shape[0]), dtype=int)
        if extra.shape != delays.shape or (extra < 0).any():
            raise ValueError(
                "delay sampler must return non-negative integers, one per agent"
            )
        delays += np.where(self._mask, extra, 0)

    def sample_run(self, rng, n, rounds, delays, dropped, start=0) -> None:
        # One flat draw of the whole block consumes the stream exactly like
        # ``rounds`` sequential per-round draws of size ``n``.
        extra = np.asarray(self.sampler(rng, rounds * n), dtype=int)
        if extra.shape != (rounds * n,) or (extra < 0).any():
            raise ValueError(
                "delay sampler must return non-negative integers, one per link"
            )
        delays += np.where(self._mask[None, :], extra.reshape(rounds, n), 0)


class IIDDrop(NetworkCondition):
    """Each message on the selected links is lost i.i.d. with ``rate``."""

    def __init__(self, rate: float, agents: Optional[Sequence[int]] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"IIDDrop rate must be in [0, 1], got rate={rate!r}"
            )
        self.rate = float(rate)
        self.agents = None if agents is None else tuple(int(i) for i in agents)
        self._mask: Optional[np.ndarray] = None

    def begin_run(self, n: int, rng: np.random.Generator) -> None:
        self._mask = _agent_mask(self.agents, n)

    def condition_round(self, iteration, delays, dropped, rng) -> None:
        draws = rng.random(dropped.shape[0]) < self.rate
        dropped |= draws & self._mask

    def sample_run(self, rng, n, rounds, delays, dropped, start=0) -> None:
        draws = rng.random((rounds, n)) < self.rate
        dropped |= draws & self._mask[None, :]


class BurstyDrop(NetworkCondition):
    """Gilbert–Elliott bursty loss: a two-state good/bad chain per link.

    Each selected link flips from *good* to *bad* with probability
    ``enter`` per round and back with probability ``exit``; messages sent
    while the link is bad are lost with probability ``rate_in_burst``
    (default: all of them).  This models correlated outages — the regime
    where i.i.d. loss is a bad approximation.
    """

    def __init__(
        self,
        enter: float,
        exit: float,
        rate_in_burst: float = 1.0,
        agents: Optional[Sequence[int]] = None,
    ):
        for name, p in (("enter", enter), ("exit", exit),
                        ("rate_in_burst", rate_in_burst)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"BurstyDrop {name} must be a probability in [0, 1], "
                    f"got {name}={p!r}"
                )
        self.enter = float(enter)
        self.exit = float(exit)
        self.rate_in_burst = float(rate_in_burst)
        self.agents = None if agents is None else tuple(int(i) for i in agents)
        self._mask: Optional[np.ndarray] = None
        self._in_burst: Optional[np.ndarray] = None

    def begin_run(self, n: int, rng: np.random.Generator) -> None:
        self._mask = _agent_mask(self.agents, n)
        self._in_burst = np.zeros(n, dtype=bool)  # every link starts good

    def condition_round(self, iteration, delays, dropped, rng) -> None:
        n = dropped.shape[0]
        flips = rng.random(n)
        entering = ~self._in_burst & (flips < self.enter)
        leaving = self._in_burst & (flips < self.exit)
        self._in_burst = (self._in_burst | entering) & ~leaving
        losses = rng.random(n) < self.rate_in_burst
        dropped |= self._in_burst & losses & self._mask

    def sample_run(self, rng, n, rounds, delays, dropped, start=0) -> None:
        # All randomness up front, drawn round-interleaved: row ``k`` of the
        # ``(rounds, 2, n)`` block is flips(n) then losses(n) — exactly the
        # per-round hook's consumption order, so *any* chunking of a run
        # (including the historical one-round chunks) reproduces the same
        # stream.  (A flips-block-then-losses-block layout would make the
        # realization depend on the chunk size — the pre-sampling drift bug.)
        # The Markov chain itself is a cheap boolean scan over rounds,
        # vectorized across the n links; the chain state persists on the
        # instance so chunked extension continues the same bursts.
        draws = rng.random((rounds, 2, n))
        losses = draws[:, 1, :] < self.rate_in_burst
        in_burst = self._in_burst
        for k in range(rounds):
            entering = ~in_burst & (draws[k, 0] < self.enter)
            leaving = in_burst & (draws[k, 0] < self.exit)
            in_burst = (in_burst | entering) & ~leaving
            dropped[k] |= in_burst & losses[k] & self._mask
        self._in_burst = in_burst

    def state_dict(self) -> Dict[str, object]:
        if self._in_burst is None:
            raise RuntimeError("begin_run must run before state_dict")
        return {"in_burst": self._in_burst.astype(bool).tolist()}

    def load_state(self, state: Dict[str, object]) -> None:
        self._in_burst = np.asarray(state["in_burst"], dtype=bool)


class Stragglers(NetworkCondition):
    """A straggler set: agents whose round-trips run ``slowdown``-times slow.

    A slowdown of ``k`` stretches the agent's effective message latency to
    ``ceil(k * (delay + 1)) - 1`` rounds — so a straggler is slow even on a
    zero-delay network (compute time dominates), and a slowdown of 1 is a
    no-op.  Apply *after* the delay conditions it should scale.
    """

    def __init__(self, slowdown: Dict[int, float]):
        if not slowdown:
            raise ValueError("Stragglers slowdown set is empty")
        for agent, factor in slowdown.items():
            # ``not >=`` (rather than ``<``) also rejects NaN factors,
            # which would otherwise turn every delay into garbage.
            if not (math.isfinite(factor) and factor >= 1.0):
                raise ValueError(
                    f"Stragglers slowdown for agent {agent} must be a "
                    f"finite factor >= 1, got slowdown[{agent}]={factor!r}"
                )
        self.slowdown = {int(a): float(s) for a, s in slowdown.items()}
        self._factors: Optional[np.ndarray] = None

    def begin_run(self, n: int, rng: np.random.Generator) -> None:
        _agent_mask(self.slowdown, n)  # range-check the ids
        self._factors = np.ones(n)
        for agent, factor in self.slowdown.items():
            self._factors[agent] = factor

    def condition_round(self, iteration, delays, dropped, rng) -> None:
        stretched = np.ceil(self._factors * (delays + 1.0)) - 1.0
        delays[:] = stretched.astype(int)

    def sample_run(self, rng, n, rounds, delays, dropped, start=0) -> None:
        stretched = np.ceil(self._factors[None, :] * (delays + 1.0)) - 1.0
        delays[:] = stretched.astype(int)


# -- fault-schedule timelines --------------------------------------------------

#: Crash-recovery models: ``"reset"`` rejoins from the current broadcast
#: estimate; ``"warm"`` restores the agent's last pre-crash local state.
RECOVERY_MODES = ("reset", "warm")


@dataclass(frozen=True)
class FaultEvent:
    """One agent-fault on the timeline.

    ``kind`` is ``"crash"`` (the agent stops sending from round ``start``,
    resuming at ``end`` if set) or ``"byzantine"`` (the agent is compromised
    from round ``start`` onward — compromise does not end).

    ``recovery`` (crash events with a recovery round only) picks the
    restart model: ``"reset"`` — the recovering agent re-fetches the
    current broadcast estimate before its first post-recovery dispatch;
    ``"warm"`` — the agent restarts from its persisted pre-crash local
    state, so its recovery-round dispatch is evaluated at the *last
    broadcast it saw before crashing* (round ``start - 1``; the initial
    estimate for a round-0 crash) and only re-synchronizes with the
    broadcast from the following round.
    """

    kind: str
    agent: int
    start: int
    end: Optional[int] = None
    recovery: str = "reset"

    def __post_init__(self):
        if self.kind not in ("crash", "byzantine"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.agent < 0:
            raise ValueError("agent id must be non-negative")
        if self.start < 0:
            raise ValueError("fault rounds must be non-negative")
        if self.kind == "byzantine" and self.end is not None:
            raise ValueError("byzantine compromise does not end")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"recovery round {self.end} must follow crash round {self.start}"
            )
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {self.recovery!r}; "
                f"known: {', '.join(RECOVERY_MODES)}"
            )
        if self.recovery == "warm" and (
            self.kind != "crash" or self.end is None
        ):
            raise ValueError(
                "warm recovery needs a crash event with a recovery round"
            )


class FaultSchedule:
    """An immutable timeline of crash and Byzantine-from-round events.

    Built fluently — each method returns a *new* schedule, so a base
    timeline can be shared across sweep cells::

        schedule = (FaultSchedule()
                    .crash(3, at=10, recover_at=25)
                    .byzantine(0, from_round=40))
    """

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: Tuple[FaultEvent, ...] = tuple(events)

    def crash(
        self,
        agent: int,
        at: int,
        recover_at: Optional[int] = None,
        recovery: str = "reset",
    ) -> "FaultSchedule":
        """Agent ``agent`` sends nothing during ``[at, recover_at)``.

        ``recovery`` picks the restart model when ``recover_at`` is set:
        ``"reset"`` (historical behaviour) rejoins from the current
        broadcast estimate; ``"warm"`` restores the agent's last pre-crash
        local state, so its recovery-round message is evaluated at the
        stale iterate it held when it went down (see :class:`FaultEvent`).
        """
        event = FaultEvent("crash", int(agent), int(at),
                           None if recover_at is None else int(recover_at),
                           recovery=str(recovery))
        return FaultSchedule(self.events + (event,))

    def byzantine(self, agent: int, from_round: int = 0) -> "FaultSchedule":
        """Agent ``agent`` is compromised from ``from_round`` onward."""
        event = FaultEvent("byzantine", int(agent), int(from_round))
        return FaultSchedule(self.events + (event,))

    def validate(self, n: int) -> "FaultSchedule":
        """Range-check every event against a system of ``n`` agents."""
        bad = sorted({e.agent for e in self.events if not 0 <= e.agent < n})
        if bad:
            raise ValueError(f"fault schedule names agents {bad} outside range(n={n})")
        compromised = [e.agent for e in self.events if e.kind == "byzantine"]
        duplicates = sorted({a for a in compromised if compromised.count(a) > 1})
        if duplicates:
            raise ValueError(
                f"agents {duplicates} have multiple byzantine events; "
                "compromise is permanent, declare it once"
            )
        return self

    # -- queries the engine makes every round -----------------------------
    def crashed_mask(self, iteration: int, n: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of agents crashed (not sending) at ``t``."""
        mask = np.zeros(n, dtype=bool)
        for event in self.events:
            if event.kind != "crash":
                continue
            if event.start <= iteration and (
                event.end is None or iteration < event.end
            ):
                mask[event.agent] = True
        return mask

    def sample_run(
        self,
        rng: Optional[np.random.Generator],
        n: int,
        rounds: int,
        start: int = 0,
    ) -> np.ndarray:
        """Dense ``(rounds, n)`` *active* mask (True = the agent sends).

        The whole-run counterpart of per-round :meth:`crashed_mask` calls:
        row ``k`` covers absolute round ``start + k``.  The timeline is
        deterministic, so ``rng`` is unused — the parameter keeps the
        pre-sampling signature uniform with :class:`NetworkCondition`.
        """
        active = np.ones((rounds, n), dtype=bool)
        for event in self.events:
            if event.kind != "crash":
                continue
            lo = max(event.start - start, 0)
            hi = rounds if event.end is None else min(event.end - start, rounds)
            if lo < hi:
                active[lo:hi, event.agent] = False
        return active

    def warm_restart_views(self) -> Dict[Tuple[int, int], int]:
        """Warm-recovery dispatch views: ``(agent, recovery round) -> view``.

        For every crash event with ``recovery="warm"``, the recovering
        agent's dispatch at its recovery round is evaluated at the last
        broadcast it saw before crashing — round ``start - 1`` (clamped to
        the initial estimate for a round-0 crash).  Overlapping warm
        windows sharing a recovery round keep the *stalest* view (the
        earliest crash wins: that is when the local state was persisted).
        Engines consult this map at dispatch time; a round where the agent
        is still crashed (an overlapping window) simply never dispatches.
        """
        views: Dict[Tuple[int, int], int] = {}
        for event in self.events:
            if event.kind != "crash" or event.recovery != "warm":
                continue
            assert event.end is not None  # enforced by FaultEvent
            key = (event.agent, event.end)
            view = max(event.start - 1, 0)
            views[key] = min(views.get(key, view), view)
        return views

    def compromised_since(self) -> Dict[int, int]:
        """Earliest compromise round per Byzantine agent."""
        since: Dict[int, int] = {}
        for event in self.events:
            if event.kind == "byzantine":
                since[event.agent] = min(
                    since.get(event.agent, math.inf), event.start
                )
        return {agent: int(start) for agent, start in since.items()}

    def fault_agents(self) -> Tuple[int, ...]:
        """Every agent the timeline faults (crash or compromise), sorted."""
        return tuple(sorted({e.agent for e in self.events}))

    def __repr__(self) -> str:
        return f"FaultSchedule(events={list(self.events)!r})"


def network_streams(seed: int, count: int) -> List[np.random.Generator]:
    """One independent network generator per pipeline position.

    Position ``i`` draws from ``default_rng((seed, _NET_TAG, i))``.  Every
    engine derives its condition streams through this helper, so the
    batched engines replay the per-trial engines bit for bit — and because
    each condition owns its stream, the composed pipeline inherits the
    per-condition chunk-invariance contract: pre-sampling ``[0, T)`` in
    any chunking (including a checkpoint/resume split) yields the same
    realization as one whole-run draw.
    """
    return [
        np.random.default_rng((int(seed), _NET_TAG, index))
        for index in range(count)
    ]


def sample_network_run(
    conditions: Sequence[NetworkCondition],
    rng: Union[np.random.Generator, Sequence[np.random.Generator]],
    n: int,
    rounds: int,
    start: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pre-sample a condition pipeline's whole-run delay/drop tensors.

    Applies every condition's :meth:`NetworkCondition.sample_run` in
    registration order to fresh ``(rounds, n)`` accumulators and returns
    ``(delays, dropped)``.  Callers own the conditions' lifecycle: call
    :meth:`NetworkCondition.begin_run` once per run *before* the first
    chunk, and keep ``start``/``rng`` continuous across chunks.

    ``rng`` is either one generator per condition (the engines' form,
    normally built by :func:`network_streams` — chunk-invariant for any
    pipeline) or a single shared generator (consumed condition-major
    within the chunk; chunk-invariant only while at most one condition
    draws from it).
    """
    if isinstance(rng, np.random.Generator):
        rngs: Sequence[np.random.Generator] = [rng] * len(conditions)
    else:
        rngs = list(rng)
        if len(rngs) != len(conditions):
            raise ValueError(
                f"sample_network_run got {len(rngs)} generators for "
                f"{len(conditions)} conditions; pass one per condition "
                "(see network_streams) or a single shared generator"
            )
    delays = np.zeros((rounds, n), dtype=int)
    dropped = np.zeros((rounds, n), dtype=bool)
    for condition, stream in zip(conditions, rngs):
        condition.sample_run(stream, n, rounds, delays, dropped, start=start)
    return delays, dropped
