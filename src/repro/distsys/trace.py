"""Execution traces of distributed optimization runs.

Figures 2–5 of the paper plot per-iteration series (loss, distance to x_H,
accuracy); :class:`ExecutionTrace` records everything needed to regenerate
them and to assert convergence properties in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["IterationRecord", "ExecutionTrace"]


@dataclass
class IterationRecord:
    """Everything observed during one DGD iteration."""

    iteration: int
    estimate: np.ndarray          # x_t (before the update)
    gradients: Dict[int, np.ndarray]  # received, keyed by agent id
    aggregate: np.ndarray         # GradFilter output
    step_size: float
    next_estimate: np.ndarray     # x_{t+1} (after projection)
    eliminated: List[int] = field(default_factory=list)
    #: True on every round at or after the run's quarantine: the estimate
    #: is held, the aggregate is a zero placeholder.
    quarantined: bool = False


@dataclass
class ExecutionTrace:
    """Full history of a simulated execution."""

    records: List[IterationRecord] = field(default_factory=list)
    #: ``{"round": int, "reason": str}`` when the run was quarantined —
    #: the reason is one of :data:`repro.health.QUARANTINE_REASONS`.
    quarantine: Optional[Dict[str, object]] = None

    def append(self, record: IterationRecord) -> None:
        """Add the record of one completed iteration."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def final_estimate(self) -> np.ndarray:
        """The last computed iterate ``x_T``."""
        if not self.records:
            raise ValueError("trace is empty")
        return self.records[-1].next_estimate

    def estimates(self, include_final: bool = True) -> np.ndarray:
        """Row-stacked iterates ``x_0, x_1, ..., x_T``."""
        if not self.records:
            raise ValueError("trace is empty")
        points = [r.estimate for r in self.records]
        if include_final:
            points.append(self.records[-1].next_estimate)
        return np.vstack(points)

    def estimate_at(self, t: int) -> np.ndarray:
        """Iterate ``x_t`` for ``0 <= t <= len(trace)``."""
        if t < 0 or t > len(self.records):
            raise IndexError(f"iteration {t} outside trace of {len(self)} steps")
        if t == len(self.records):
            return self.final_estimate
        return self.records[t].estimate

    def distances_to(self, target: Sequence[float]) -> np.ndarray:
        """Series ``||x_t - target||`` — the paper's *distance* curves."""
        tgt = np.asarray(target, dtype=float)
        return np.linalg.norm(self.estimates() - tgt, axis=1)

    def losses(self, loss: Callable[[np.ndarray], float]) -> np.ndarray:
        """Series ``loss(x_t)`` — the paper's *loss* curves."""
        return np.array([loss(x) for x in self.estimates()])

    def aggregate_norms(self) -> np.ndarray:
        """Norm of the filtered aggregate per iteration."""
        return np.array([float(np.linalg.norm(r.aggregate)) for r in self.records])

    def eliminated_agents(self) -> List[int]:
        """All agent ids eliminated for silence during the run."""
        out: List[int] = []
        for record in self.records:
            out.extend(record.eliminated)
        return out

    # -- serialization -----------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-friendly dict capturing the full trace.

        Round-trips through :meth:`from_payload`; used by the experiment
        harness to archive runs next to the benchmark renderings.
        """
        payload = {
            "records": [
                {
                    "iteration": r.iteration,
                    "estimate": r.estimate.tolist(),
                    "gradients": {
                        str(k): v.tolist() for k, v in r.gradients.items()
                    },
                    "aggregate": r.aggregate.tolist(),
                    "step_size": r.step_size,
                    "next_estimate": r.next_estimate.tolist(),
                    "eliminated": list(r.eliminated),
                    "quarantined": bool(r.quarantined),
                }
                for r in self.records
            ]
        }
        if self.quarantine is not None:
            payload["quarantine"] = dict(self.quarantine)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ExecutionTrace":
        """Rebuild a trace from :meth:`to_payload` output."""
        trace = cls()
        for item in payload["records"]:
            trace.append(
                IterationRecord(
                    iteration=int(item["iteration"]),
                    estimate=np.asarray(item["estimate"], dtype=float),
                    gradients={
                        int(k): np.asarray(v, dtype=float)
                        for k, v in item["gradients"].items()
                    },
                    aggregate=np.asarray(item["aggregate"], dtype=float),
                    step_size=float(item["step_size"]),
                    next_estimate=np.asarray(item["next_estimate"], dtype=float),
                    eliminated=list(item["eliminated"]),
                    # Absent in pre-quarantine archives: default healthy.
                    quarantined=bool(item.get("quarantined", False)),
                )
            )
        quarantine = payload.get("quarantine")
        if quarantine is not None:
            trace.quarantine = {
                "round": int(quarantine["round"]),
                "reason": str(quarantine["reason"]),
            }
        return trace

    def convergence_iteration(
        self, target: Sequence[float], radius: float
    ) -> Optional[int]:
        """First iteration after which the iterate stays within ``radius``.

        Returns ``None`` if the trace never settles inside the ball around
        ``target``.
        """
        dists = self.distances_to(target)
        inside = dists <= radius
        for t in range(len(inside)):
            if inside[t:].all():
                return t
        return None
