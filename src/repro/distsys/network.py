"""Message-level synchronous network substrate.

:mod:`repro.distsys.simulator` drives agents by direct method calls — fast
and convenient.  This module provides the *explicit* alternative a systems
reader expects: processes exchange messages through per-round mailboxes
managed by a :class:`SynchronousNetwork`, with delivery happening only at
round boundaries (the lock-step synchronous model of Section 1.4).

:class:`MessagePassingDGD` re-implements the server-based DGD loop on top
of this substrate; ``tests/distsys/test_network.py`` proves it produces
*bit-identical* traces to :class:`~repro.distsys.simulator.SynchronousSimulator`,
so the direct simulator can be trusted as an optimization of the
message-passing semantics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..attacks.base import AttackContext, ByzantineAttack
from ..functions.base import CostFunction
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from .engine import (
    validate_attack_plan,
    validate_fault_count,
    validate_faulty_ids,
    validate_initial_estimate,
)
from .messages import GradientReply, GradientRequest
from .server import RobustServer
from .trace import ExecutionTrace, IterationRecord

__all__ = ["Envelope", "SynchronousNetwork", "MessagePassingDGD"]

#: Reserved address of the server process.
SERVER_ADDRESS = -1


@dataclass(frozen=True)
class Envelope:
    """A routed message: payload plus source/destination addresses."""

    sender: int
    recipient: int
    payload: object


class SynchronousNetwork:
    """Per-round mailboxes with delivery at round boundaries.

    Messages sent during round ``r`` become visible to recipients only when
    :meth:`deliver_round` is called — enforcing the synchronous lock-step
    the paper's algorithms assume.  The network also keeps a running
    message count (useful for complexity accounting).
    """

    def __init__(self) -> None:
        self._outbox: List[Envelope] = []
        self._inboxes: Dict[int, List[Envelope]] = defaultdict(list)
        self.messages_sent = 0
        self.round = 0

    def send(self, sender: int, recipient: int, payload: object) -> None:
        """Queue a message for delivery at the next round boundary."""
        self._outbox.append(Envelope(sender, recipient, payload))
        self.messages_sent += 1

    def broadcast(
        self, sender: int, recipients: Sequence[int], payload: object
    ) -> None:
        """Queue the same payload to every recipient."""
        for recipient in recipients:
            self.send(sender, recipient, payload)

    def deliver_round(self) -> None:
        """Move every queued message into its recipient's inbox."""
        for envelope in self._outbox:
            self._inboxes[envelope.recipient].append(envelope)
        self._outbox.clear()
        self.round += 1

    def receive(self, recipient: int) -> List[Envelope]:
        """Drain and return the recipient's inbox (delivery order)."""
        inbox = self._inboxes[recipient]
        self._inboxes[recipient] = []
        return inbox


class MessagePassingDGD:
    """The Section-4.1 loop implemented over explicit messages.

    Each iteration is two network rounds:

    1. the server broadcasts a :class:`GradientRequest` (step S1's ask),
    2. agents reply with :class:`GradientReply` (Byzantine replies are
       fabricated through the attack, silent agents send nothing and are
       eliminated), after which the server applies step S2.
    """

    def __init__(
        self,
        costs: Sequence[CostFunction],
        faulty_ids: Sequence[int],
        aggregator: Union[GradientAggregator, str],
        constraint: ConvexSet,
        schedule: StepSchedule,
        initial_estimate: Sequence[float],
        attack: Optional[ByzantineAttack] = None,
        silent_after: Optional[Dict[int, int]] = None,
        seed: int = 0,
        f: Optional[int] = None,
    ):
        self.costs = list(costs)
        self.n_initial = len(self.costs)
        self.faulty = frozenset(validate_faulty_ids(faulty_ids, self.n_initial))
        # Omniscience is read off the attack at reply time (as before);
        # the shared faulty-without-attack check still applies.
        validate_attack_plan(attack, len(self.faulty))
        self.attack = attack
        self.silent_after = dict(silent_after or {})
        # The same shared checks the engines run: the declared tolerance
        # (defaulting to the ground-truth fault count, as in run_dgd) must
        # cover the actual faulty set, and the start must be a finite
        # vector of the problem's dimension.
        declared_f = len(self.faulty) if f is None else f
        validate_fault_count(declared_f, self.n_initial, len(self.faulty))
        start = validate_initial_estimate(
            initial_estimate, dim=self.costs[0].dim if self.costs else None
        )
        self.network = SynchronousNetwork()
        self.rng = np.random.default_rng(seed)
        self.server = RobustServer(
            initial_estimate=start,
            aggregator=aggregator,
            constraint=constraint,
            schedule=schedule,
            n=self.n_initial,
            f=declared_f,
        )
        self.active: List[int] = list(range(self.n_initial))
        self.trace = ExecutionTrace()

    # -- agent-side handlers ------------------------------------------------
    def _honest_reply(self, agent_id: int, request: GradientRequest) -> None:
        gradient = self.costs[agent_id].gradient(request.estimate)
        self.network.send(
            agent_id,
            SERVER_ADDRESS,
            GradientReply(
                iteration=request.iteration,
                sender=agent_id,
                gradient=gradient,
            ),
        )

    def _byzantine_replies(
        self, live_faulty: List[int], request: GradientRequest,
        honest_grads: Dict[int, np.ndarray],
    ) -> None:
        context = AttackContext(
            iteration=request.iteration,
            estimate=request.estimate,
            faulty_ids=sorted(live_faulty),
            true_gradients={
                i: self.costs[i].gradient(request.estimate)
                for i in live_faulty
            },
            honest_gradients=(
                honest_grads if self.attack.requires_omniscience else None
            ),
            rng=self.rng,
        )
        fabricated = self.attack.fabricate(context)
        for agent_id in sorted(live_faulty):
            self.network.send(
                agent_id,
                SERVER_ADDRESS,
                GradientReply(
                    iteration=request.iteration,
                    sender=agent_id,
                    gradient=np.asarray(fabricated[agent_id], dtype=float),
                ),
            )

    # -- one full iteration (two network rounds) ----------------------------
    def step(self) -> IterationRecord:
        """Run one DGD iteration through the network."""
        t = self.server.iteration
        estimate = self.server.estimate.copy()
        request = GradientRequest(iteration=t, estimate=estimate)

        # Round 1: server -> agents.
        self.network.broadcast(SERVER_ADDRESS, self.active, request)
        self.network.deliver_round()

        # Agents process their inboxes; replies are queued for round 2.
        honest_grads: Dict[int, np.ndarray] = {}
        live_faulty: List[int] = []
        silent: List[int] = []
        for agent_id in self.active:
            envelopes = self.network.receive(agent_id)
            assert len(envelopes) == 1, "synchronous round delivers one request"
            req = envelopes[0].payload
            cutoff = self.silent_after.get(agent_id)
            if (cutoff is not None and t >= cutoff) or (
                agent_id in self.faulty
                and self.attack is not None
                and self.attack.silences(agent_id, t)
            ):
                silent.append(agent_id)
                continue
            if agent_id in self.faulty:
                live_faulty.append(agent_id)
            else:
                self._honest_reply(agent_id, req)
                honest_grads[agent_id] = self.costs[agent_id].gradient(
                    req.estimate
                )
        if live_faulty:
            self._byzantine_replies(live_faulty, request, honest_grads)
        self.network.deliver_round()

        # Round 2 aftermath: server collects replies, eliminates the silent.
        replies = self.network.receive(SERVER_ADDRESS)
        gradients = {
            env.payload.sender: env.payload.gradient for env in replies
        }
        eliminated = self.server.eliminate_silent(silent)
        for agent_id in eliminated:
            self.active.remove(agent_id)
        aggregate = self.server.apply_update(gradients)
        record = IterationRecord(
            iteration=t,
            estimate=estimate,
            gradients=gradients,
            aggregate=aggregate,
            step_size=self.server.schedule(t),
            next_estimate=self.server.estimate.copy(),
            eliminated=eliminated,
        )
        self.trace.append(record)
        return record

    def run(self, iterations: int) -> ExecutionTrace:
        """Run ``iterations`` full iterations; returns the trace."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        for _ in range(iterations):
            self.step()
        return self.trace

    @property
    def estimate(self) -> np.ndarray:
        """Current server estimate."""
        return self.server.estimate.copy()
