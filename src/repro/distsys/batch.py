"""Batched lockstep execution of DGD sweeps — the tensor sweep engine.

Every figure, table and ablation of the paper is a *sweep*: the same
distributed system executed under many (seed, attack, gradient-filter)
combinations.  :class:`~repro.distsys.simulator.SynchronousSimulator` runs
one trial at a time through a per-agent Python loop; :class:`BatchSimulator`
runs ``S`` independent trials in lockstep as one tensor program:

* agent gradients for all trials come from one stacked-coefficient einsum
  (:func:`repro.functions.batched.stack_costs`), shape ``(S, n, d)``;
* Byzantine fabrications are vectorized across the batch through
  :meth:`~repro.attacks.base.ByzantineAttack.fabricate_batch`;
* aggregation runs per *filter group* through
  :meth:`~repro.aggregators.base.GradientAggregator.aggregate_batch`;
* the projected update applies to all trials at once via
  :meth:`~repro.optim.projections.ConvexSet.project_batch`.

Tracing is lazy: only the iterate trajectory ``(T+1, S, d)`` is kept by
default; per-iteration gradient snapshots — the O(T·n·d) copy churn of the
per-trial trace — are opt-in via ``record_gradients=True``.

Semantics deliberately mirror the per-trial simulator so it remains the
reference oracle: each trial owns a generator seeded like the per-trial run,
attacks observe exactly the per-trial observables, and the batch/reference
equivalence is asserted (to 1e-9) by ``tests/distsys/test_batch_equivalence``.
Crash-style silence and the step-S1 elimination rule are not modelled here —
trials needing them must use the per-trial simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..backend import xp
from ..aggregators.masked import aggregator_label
from ..attacks.base import BatchAttackContext, ByzantineAttack
from ..functions.base import CostFunction
from ..functions.batched import CostStack, stack_costs
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import Recorder, current_recorder
from .engine import (
    ProtocolEngine,
    ProtocolRound,
    validate_attack_plan,
    validate_faulty_ids,
    validate_initial_estimate,
)
from .health import (
    AGGREGATOR_REFUSED,
    DEFAULT_DIVERGENCE_THRESHOLD,
    TrialGuard,
    aggregation_round,
    nonfinite_rows,
)

__all__ = [
    "BatchTrial",
    "BatchTrace",
    "BatchSimulator",
    "run_dgd_batch",
    "normalize_trace_rounds",
    "select_trace_rounds",
]


def normalize_trace_rounds(trace_rounds):
    """Validate a ``trace_rounds=`` plan: ``None``, a stride, or a sequence.

    ``None`` keeps every round (the historical full trace).  An int ``k``
    keeps rounds ``{0, k, 2k, ...}`` plus the final round; a sequence keeps
    exactly those rounds (0 and the final round are always added).  Shared
    by every engine with a windowed-trace mode.
    """
    if trace_rounds is None:
        return None
    if isinstance(trace_rounds, (int, np.integer)):
        stride = int(trace_rounds)
        if stride < 1:
            raise ValueError(
                f"trace_rounds stride must be a positive int, got {stride}"
            )
        return stride
    rounds = sorted({int(r) for r in trace_rounds})
    if rounds and rounds[0] < 0:
        raise ValueError(f"trace_rounds must be non-negative, got {rounds[0]}")
    return tuple(rounds)


def select_trace_rounds(stored: np.ndarray, rounds) -> np.ndarray:
    """Positions of ``rounds`` inside a trace's ``stored`` round axis.

    ``stored`` is the ascending array of absolute rounds a trace actually
    holds; ``rounds`` is a ``rounds=`` selector (int or sequence).  Raises
    when a requested round was not recorded — a windowed trace cannot
    recompute what it never stored.
    """
    want = np.atleast_1d(np.asarray(rounds, dtype=int))
    pos = np.searchsorted(stored, want)
    missing = (pos >= stored.size) | (stored[np.minimum(pos, stored.size - 1)] != want)
    if missing.any():
        absent = want[missing].tolist()
        raise ValueError(
            f"rounds {absent} are not stored in this trace "
            f"(stored rounds: {stored.tolist() if stored.size <= 20 else '...'})"
        )
    return pos


def _value_key(value) -> object:
    """A hashable, lossless key for one constructor parameter value."""
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple)):
        return (type(value).__name__,) + tuple(_value_key(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _value_key(v)) for k, v in value.items()))
    if value is None or isinstance(value, (bool, int, float, complex, str, bytes)):
        return value
    if hasattr(value, "__dict__"):
        return _config_key(value)
    return id(value)  # opaque value: never merge across instances


def group_indices(count: int, key_fn) -> List[Tuple[int, np.ndarray]]:
    """Group ``range(count)`` by a key; returns (representative, indices).

    Shared by every batched engine: trials with identical filter/attack/
    schedule configurations run through one kernel invocation per group.
    """
    groups: Dict[object, List[int]] = {}
    for index in range(count):
        groups.setdefault(key_fn(index), []).append(index)
    return [(members[0], np.array(members)) for members in groups.values()]


def _config_key(obj) -> object:
    """Exact-configuration key for grouping equal filters/attacks/schedules.

    Built from the object's type and full-precision attribute values —
    ``repr`` is *not* usable here: numpy summarizes large arrays with
    ``...`` and schedules format floats with ``%g``, either of which would
    silently merge distinct configurations into one group.
    """
    if obj is None:
        return None
    return (type(obj),) + tuple(
        (name, _value_key(value)) for name, value in sorted(vars(obj).items())
    )


@dataclass
class BatchTrial:
    """One trial of a batched sweep.

    ``schedule`` and ``initial_estimate`` override the simulator-wide
    defaults when set, so a single batch can sweep step-size schedules or
    restart points alongside attacks and filters.
    """

    aggregator: GradientAggregator
    attack: Optional[ByzantineAttack] = None
    faulty_ids: Tuple[int, ...] = ()
    seed: int = 0
    schedule: Optional[StepSchedule] = None
    initial_estimate: Optional[np.ndarray] = None
    omniscient_attack: Optional[bool] = None
    label: Optional[str] = None


@dataclass
class BatchTrace:
    """Lazy trace of a batched execution.

    ``estimates`` stacks the iterate trajectory ``x_0 .. x_T`` of every
    trial; ``gradients`` holds the received ``(n, d)`` stacks per iteration
    only when the simulator ran with ``record_gradients=True``.
    """

    estimates: np.ndarray                      # (K, S, d); K = T+1 when full
    step_sizes: np.ndarray                     # (T, S)
    labels: List[str] = field(default_factory=list)
    gradients: Optional[np.ndarray] = None     # (K-1, S, n, d), opt-in
    #: quarantine records ``{"trial", "round", "reason"}`` of frozen trials
    #: (reasons from :data:`repro.health.QUARANTINE_REASONS`); a frozen
    #: trial's trajectory is held at its last healthy iterate.
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    #: absolute round index of each stored slot under a windowed run
    #: (``trace_rounds=``); ``None`` means every round ``0..T`` is stored.
    rounds: Optional[np.ndarray] = None

    @property
    def iterations(self) -> int:
        """Number of completed iterations ``T``."""
        if self.rounds is not None:
            return int(self.rounds[-1])
        return self.estimates.shape[0] - 1

    @property
    def trials(self) -> int:
        """Batch width ``S``."""
        return self.estimates.shape[1]

    @property
    def stored_rounds(self) -> np.ndarray:
        """Absolute rounds the trace holds (``0..T`` for a full trace)."""
        if self.rounds is not None:
            return np.asarray(self.rounds)
        return np.arange(self.estimates.shape[0])

    @property
    def final_estimates(self) -> np.ndarray:
        """Last iterate of every trial, shape ``(S, d)``."""
        return self.estimates[-1].copy()

    def trial_estimates(self, s: int) -> np.ndarray:
        """Stored trajectory of trial ``s``, shape ``(K, d)``."""
        return self.estimates[:, s, :].copy()

    def _slots(self, rounds) -> np.ndarray:
        if rounds is None:
            return np.arange(self.estimates.shape[0])
        return select_trace_rounds(self.stored_rounds, rounds)

    def distances_to(self, target: Sequence[float], rounds=None) -> np.ndarray:
        """Per-trial distance series ``||x_t - target||``, shape ``(S, K)``.

        ``rounds=`` restricts the computation to a subset of the stored
        rounds (and is required knowledge for windowed traces — asking for
        an unstored round raises instead of silently interpolating).
        """
        tgt = np.asarray(target, dtype=float)
        est = (
            self.estimates
            if rounds is None
            else self.estimates[self._slots(rounds)]
        )
        return np.linalg.norm(est - tgt, axis=2).T

    def losses(
        self, loss_batch: Callable[[np.ndarray], np.ndarray], rounds=None
    ) -> np.ndarray:
        """Per-trial loss series over the selected rounds, shape ``(S, K)``.

        ``loss_batch`` maps a ``(P, d)`` stack of points to ``(P,)`` losses
        (e.g. the honest aggregate loss evaluated through a
        :class:`~repro.functions.batched.CostStack`).
        """
        selected = (
            self.estimates
            if rounds is None
            else self.estimates[self._slots(rounds)]
        )
        k, s, d = selected.shape
        flat = selected.reshape(k * s, d)
        values = np.asarray(loss_batch(flat), dtype=float)
        return values.reshape(k, s).T


class BatchSimulator(ProtocolEngine):
    """Run ``S`` independent DGD trials of one system in lockstep."""

    def __init__(
        self,
        costs: Union[Sequence[CostFunction], CostStack],
        trials: Sequence[BatchTrial],
        constraint: ConvexSet,
        schedule: StepSchedule,
        initial_estimate: Sequence[float],
        record_gradients: bool = False,
        recorder: Optional[Recorder] = None,
        divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
        trace_rounds=None,
    ):
        if not trials:
            raise ValueError("need at least one trial")
        self.set_recorder(recorder)
        self.stack: CostStack = (
            costs if isinstance(costs, CostStack) else stack_costs(costs)
        )
        self.n = self.stack.n
        self.d = self.stack.dim
        self.trials: List[BatchTrial] = list(trials)
        self.constraint = constraint
        self.record_gradients = bool(record_gradients)

        default_initial = validate_initial_estimate(initial_estimate, self.d)

        # Per-trial normalized state lives here — the caller's BatchTrial
        # objects are treated as read-only inputs.
        starts = []
        self.rngs: List[np.random.Generator] = []
        self._schedules: List[StepSchedule] = []
        self._faulty: List[Tuple[int, ...]] = []
        self._omniscient: List[bool] = []
        for trial in self.trials:
            faulty = validate_faulty_ids(trial.faulty_ids, self.n)
            omniscient = validate_attack_plan(
                trial.attack,
                len(faulty),
                trial.omniscient_attack,
                full_attendance_engine="batch engine",
            )
            self._faulty.append(faulty)
            self._omniscient.append(bool(omniscient))
            start = (
                default_initial
                if trial.initial_estimate is None
                else validate_initial_estimate(trial.initial_estimate, self.d)
            )
            starts.append(start)
            self.rngs.append(np.random.default_rng(trial.seed))
            self._schedules.append(trial.schedule or schedule)

        self.estimates = xp.asarray(
            self.constraint.project_batch(np.stack(starts))
        )
        self.iteration = 0
        self.guard = TrialGuard(len(self.trials), divergence_threshold)
        # Recording state persists across chunked ``run`` calls so a
        # checkpointed engine resumes mid-trajectory (see ``run``).
        # ``trace_rounds`` switches to the windowed mode: only the planned
        # rounds are stored (plus 0 and the horizon), so a large-n run
        # never materializes the full iterate history.
        self._trace_plan = normalize_trace_rounds(trace_rounds)
        self._kept: Optional[np.ndarray] = None  # stored rounds, windowed
        self._slot: Dict[int, int] = {}          # round -> trajectory slot
        self._trajectory: Optional[np.ndarray] = None
        self._step_sizes: Optional[np.ndarray] = None
        self._snapshots: Optional[np.ndarray] = None
        self._cursor = 0
        self._attack_groups = self._group_attacks()
        self._aggregator_groups = self._group_by_key(
            lambda index: _config_key(self.trials[index].aggregator)
        )
        self._schedule_groups = [
            (self._schedules[rep], idx)
            for rep, idx in self._group_by_key(
                lambda index: _config_key(self._schedules[index])
            )
        ]

    # -- grouping ---------------------------------------------------------
    def _group_by_key(self, key_fn) -> List[Tuple[int, np.ndarray]]:
        """Group trial indices by a key; returns (representative, indices)."""
        return group_indices(len(self.trials), key_fn)

    def _group_attacks(self):
        groups = []
        for rep, idx in self._group_by_key(
            lambda index: (
                _config_key(self.trials[index].attack),
                self._faulty[index],
                self._omniscient[index],
            )
        ):
            trial = self.trials[rep]
            if trial.attack is None or not self._faulty[rep]:
                continue
            faulty = np.array(self._faulty[rep])
            honest = np.array(
                [i for i in range(self.n) if i not in set(self._faulty[rep])]
            )
            groups.append(
                (trial.attack, faulty, honest, self._omniscient[rep], idx)
            )
        return groups

    # -- quarantine bookkeeping -------------------------------------------
    def _note_quarantined(
        self, trials: Sequence[int], round_index: int, reason: str
    ) -> None:
        """Emit one telemetry event per freshly frozen trial."""
        if not trials or not self.telemetry.enabled:
            return
        for t in trials:
            self.telemetry.emit(
                "trial_quarantined",
                trial=int(t),
                round=int(round_index),
                reason=reason,
                engine=type(self).__name__,
            )

    # -- protocol stages --------------------------------------------------
    def observe(self) -> ProtocolRound:
        """One einsum: all agents' gradients at every trial's estimate.

        Quarantined trials are masked out of the einsum — their rows stay
        zero placeholders that no later stage reads.
        """
        if self.guard.any_quarantined:
            gradients = xp.zeros((len(self.trials), self.n, self.d))
            live = self.guard.active
            gradients[live] = self.stack.gradients(self.estimates[live])
        else:
            gradients = self.stack.gradients(self.estimates)  # (S, n, d)
        return ProtocolRound(iteration=self.iteration, gradients=gradients)

    def fabricate(self, round: ProtocolRound) -> None:
        """Vectorized fabrication, one call per attack group.

        Each group's index set is intersected with the guard's active
        mask, so frozen trials neither consume their attack stream nor
        receive fabrications.
        """
        received = round.gradients
        for attack, faulty, honest, omniscient, idx in self._attack_groups:
            live = self.guard.live(idx)
            if live.size == 0:
                continue
            # Attacks are plain-NumPy plugin code: observables cross the
            # backend boundary as base arrays and fabrications re-enter
            # through the received stack's setitem.
            context = BatchAttackContext(
                iteration=round.iteration,
                estimates=xp.to_numpy(self.estimates[live]),
                faulty_ids=faulty.tolist(),
                true_gradients=xp.to_numpy(received[np.ix_(live, faulty)]),
                honest_gradients=(
                    xp.to_numpy(received[np.ix_(live, honest)])
                    if omniscient
                    else None
                ),
                honest_ids=honest.tolist(),
                rngs=[self.rngs[i] for i in live],
            )
            fabricated = np.asarray(attack.fabricate_batch(context), dtype=float)
            expected = (live.size, faulty.size, self.d)
            if fabricated.shape != expected:
                raise RuntimeError(
                    f"attack {attack.name!r} returned shape {fabricated.shape},"
                    f" expected {expected}"
                )
            received[np.ix_(live, faulty)] = fabricated

    def aggregate(self, round: ProtocolRound) -> None:
        """One ``aggregate_batch`` kernel per filter group.

        Trials whose strict filter (``quarantines_on_nonfinite``) faces a
        non-finite row are quarantined *before* the kernel call — reason
        ``aggregator_refused``, frozen at the pre-update estimate — so the
        rest of the group still aggregates in one invocation.
        """
        aggregates = xp.zeros((len(self.trials), self.d))
        t = round.iteration
        for rep, idx in self._aggregator_groups:
            aggregator = self.trials[rep].aggregator
            live = self.guard.live(idx)
            if live.size == 0:
                continue
            if aggregator.quarantines_on_nonfinite:
                refused = nonfinite_rows(round.gradients[live]).any(axis=1)
                if refused.any():
                    fresh = self.guard.quarantine(
                        live[refused], t, AGGREGATOR_REFUSED
                    )
                    self._note_quarantined(fresh, t, AGGREGATOR_REFUSED)
                    live = live[~refused]
                    if live.size == 0:
                        continue
            with aggregation_round(t, aggregator_label(aggregator)):
                aggregates[live] = aggregator.aggregate_batch(
                    round.gradients[live]
                )
        round.aggregates = aggregates

    def project(self, round: ProtocolRound) -> np.ndarray:
        """Batched projected update across every trial at once.

        Pre-projection candidates are screened: trials with non-finite or
        diverged candidates freeze at their pre-update estimate (reasons
        ``nonfinite_iterate`` / ``diverged``), and every frozen trial's
        estimate is re-held after the projection so survivors — and the
        frozen trajectories themselves — are bit-identical to a run
        without the frozen trials.
        """
        etas = np.empty(len(self.trials))
        for sched, idx in self._schedule_groups:
            etas[idx] = sched(round.iteration)
        candidates = self.estimates - etas[:, None] * round.aggregates
        previous = self.estimates
        before = set(self.guard.records)
        held = self.guard.screen(round.iteration, previous, candidates)
        for t in sorted(self.guard.records.keys() - before):
            self._note_quarantined(
                [t], round.iteration, str(self.guard.records[t]["reason"])
            )
        # The constraint set is plain-NumPy plugin code — same boundary
        # convention as attacks: exit via to_numpy, re-enter via asarray.
        projected = xp.asarray(
            self.constraint.project_batch(xp.to_numpy(held))
        )
        self.estimates = self.guard.hold(previous, projected)
        self.iteration += 1
        self._last_received = round.gradients
        self._last_etas = etas
        return self.estimates

    # -- run recording ----------------------------------------------------
    def _planned_rounds(self, horizon: int) -> np.ndarray:
        """Rounds the windowed trace keeps for ``horizon``: plan ∪ already
        kept ∪ {0, horizon}, ascending."""
        plan = self._trace_plan
        if isinstance(plan, int):
            kept = set(range(0, horizon + 1, plan))
        else:
            kept = {r for r in plan if r <= horizon}
        kept.add(0)
        kept.add(int(horizon))
        if self._kept is not None:
            kept.update(int(r) for r in self._kept)
        return np.array(sorted(kept), dtype=int)

    def _extend_recording(self, horizon: int) -> None:
        """Grow the persistent recording arrays to cover ``horizon`` rounds.

        First call allocates; later calls (a resumed engine extending its
        horizon) reallocate and copy the recorded prefix, so the final
        trace spans the whole ``0..T`` trajectory regardless of how many
        chunks produced it.  Under a ``trace_rounds`` plan only the kept
        rounds get trajectory slots — extending never drops an
        already-kept round, so resumed windowed traces stay consistent.
        """
        s, d = self.estimates.shape
        if self._trace_plan is not None:
            kept = self._planned_rounds(horizon)
            slots = kept.size
            trajectory = np.empty((slots, s, d))
            snapshots = (
                np.empty((slots - 1, s, self.n, d))
                if self.record_gradients
                else None
            )
            step_sizes = np.empty((horizon, s))
            if self._trajectory is None:
                trajectory[0] = xp.to_numpy(self.estimates)
            else:
                recorded = self._trajectory.shape[0]
                trajectory[:recorded] = self._trajectory
                step_sizes[: self._step_sizes.shape[0]] = self._step_sizes
                if snapshots is not None and self._snapshots is not None:
                    snapshots[: self._snapshots.shape[0]] = self._snapshots
            self._kept = kept
            self._slot = {int(r): i for i, r in enumerate(kept)}
            self._trajectory = trajectory
            self._step_sizes = step_sizes
            self._snapshots = snapshots
            return
        if self._trajectory is None:
            self._trajectory = np.empty((horizon + 1, s, d))
            self._trajectory[0] = xp.to_numpy(self.estimates)
            self._step_sizes = np.empty((horizon, s))
            self._snapshots = (
                np.empty((horizon, s, self.n, d))
                if self.record_gradients
                else None
            )
            return
        recorded = self._trajectory.shape[0] - 1
        if horizon <= recorded:
            return
        trajectory = np.empty((horizon + 1, s, d))
        trajectory[: recorded + 1] = self._trajectory
        self._trajectory = trajectory
        step_sizes = np.empty((horizon, s))
        step_sizes[:recorded] = self._step_sizes
        self._step_sizes = step_sizes
        if self._snapshots is not None:
            snapshots = np.empty((horizon, s, self.n, d))
            snapshots[:recorded] = self._snapshots
            self._snapshots = snapshots

    def _record_step(self, estimates: np.ndarray) -> None:
        if self._trace_plan is not None:
            t = self.iteration  # round just completed (project incremented)
            self._step_sizes[t - 1] = self._last_etas
            slot = self._slot.get(t)
            if slot is not None:
                self._trajectory[slot] = xp.to_numpy(estimates)
                if self._snapshots is not None:
                    self._snapshots[slot - 1] = xp.to_numpy(self._last_received)
                self._cursor = slot
            return
        k = self._cursor
        self._trajectory[k + 1] = xp.to_numpy(estimates)
        self._step_sizes[k] = self._last_etas
        if self._snapshots is not None:
            self._snapshots[k] = xp.to_numpy(self._last_received)
        self._cursor = k + 1

    def _run_result(self) -> BatchTrace:
        labels = [
            trial.label
            or f"{trial.aggregator.name}/{trial.attack.name if trial.attack else 'honest'}"
            for trial in self.trials
        ]
        return BatchTrace(
            estimates=self._trajectory,
            step_sizes=self._step_sizes,
            labels=labels,
            gradients=self._snapshots,
            quarantined=self.guard.summary(),
            rounds=None if self._kept is None else self._kept.copy(),
        )

    def run(
        self, iterations: int, start_round: Optional[int] = None
    ) -> BatchTrace:
        """Run to round ``iterations`` and return the lazy ``0..T`` trace.

        ``iterations`` is the *absolute* horizon ``T``.  A fresh engine
        (``start_round`` omitted) runs all ``T`` rounds — the historical
        behaviour.  A resumed engine (after :meth:`load_state`, or simply
        carrying on after an earlier ``run``) passes the round it stopped
        at as ``start_round`` and executes only the remaining
        ``T - start_round`` rounds; the returned trace still spans the
        whole trajectory and is bit-identical to an uninterrupted run —
        each trial's attack stream is consumed round by round, so chunking
        never perturbs it.
        """
        start = 0 if start_round is None else int(start_round)
        if start != self.iteration:
            raise ValueError(
                f"start_round={start} but the engine is at iteration "
                f"{self.iteration}; resume exactly where the engine "
                "stopped (pass start_round=engine.iteration)"
            )
        if iterations <= start:
            raise ValueError(
                f"iterations is the absolute horizon T and must exceed "
                f"start_round; got T={iterations}, start_round={start}"
            )
        self._extend_recording(int(iterations))
        with self.telemetry.span(
            "engine_run",
            engine=type(self).__name__,
            start_round=start,
            horizon=int(iterations),
            trials=len(self.trials),
        ):
            for _ in range(int(iterations) - start):
                self._record_step(self.step())
        return self._run_result()

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-able mid-trajectory snapshot (round ``k`` of a longer run).

        Captures everything :meth:`load_state` needs to continue a run
        bit-identically on a freshly constructed engine with the same
        trials: the iterate batch, every trial's attack-stream generator
        state, and the recorded ``0..k`` trajectory prefix (so the resumed
        engine's final trace still spans the whole run).
        """
        k = int(self.iteration)
        kept_prefix: Optional[np.ndarray] = None
        if self._trajectory is None:
            trajectory = xp.to_numpy(self.estimates)[None, :, :]
            step_sizes = np.empty((0, len(self.trials)))
        elif self._kept is not None:
            # Windowed trace: the stored slots whose round is already
            # reached form a prefix of the kept-rounds plan.
            kept_prefix = self._kept[self._kept <= k]
            trajectory = self._trajectory[: kept_prefix.size]
            step_sizes = self._step_sizes[:k]
        else:
            trajectory = self._trajectory[: k + 1]
            step_sizes = self._step_sizes[:k]
        state: Dict[str, object] = {
            "schema": "repro/batch-sim-state/v1",
            "iteration": k,
            "estimates": xp.to_numpy(self.estimates).tolist(),
            "rng_states": [rng.bit_generator.state for rng in self.rngs],
            "trajectory": trajectory.tolist(),
            "step_sizes": step_sizes.tolist(),
            "quarantine": self.guard.state_dict(),
        }
        if kept_prefix is not None:
            state["trace_rounds_kept"] = [int(r) for r in kept_prefix]
        if self._snapshots is not None:
            stored = (
                k if kept_prefix is None else max(kept_prefix.size - 1, 0)
            )
            state["snapshots"] = self._snapshots[:stored].tolist()
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto a fresh engine.

        The engine must have been constructed with the same trials and
        problem; continuing with ``run(T, start_round=k)`` reproduces the
        uninterrupted run bit for bit.
        """
        schema = state.get("schema")
        if schema != "repro/batch-sim-state/v1":
            raise ValueError(f"unrecognized engine-state schema: {schema!r}")
        if self.iteration != 0:
            raise RuntimeError(
                "load_state needs a freshly constructed engine"
            )
        rng_states = state["rng_states"]
        if len(rng_states) != len(self.rngs):
            raise ValueError(
                f"state holds {len(rng_states)} trial generators but the "
                f"engine has {len(self.rngs)} trials"
            )
        k = int(state["iteration"])
        kept = state.get("trace_rounds_kept")
        if (kept is not None) != (self._trace_plan is not None):
            raise ValueError(
                "trace_rounds mismatch: the snapshot and the fresh engine "
                "must agree on whether the trace is windowed"
            )
        self.iteration = k
        self.estimates = xp.asarray(np.asarray(state["estimates"], dtype=float))
        for rng, rng_state in zip(self.rngs, rng_states):
            rng.bit_generator.state = rng_state
        self._trajectory = np.asarray(state["trajectory"], dtype=float)
        self._step_sizes = np.asarray(state["step_sizes"], dtype=float)
        if self.record_gradients:
            self._snapshots = np.asarray(state["snapshots"], dtype=float)
        if kept is not None:
            self._kept = np.asarray(kept, dtype=int)
            self._slot = {int(r): i for i, r in enumerate(self._kept)}
        # Absent in pre-quarantine snapshots: every trial stays active.
        quarantine = state.get("quarantine")
        if quarantine is not None:
            self.guard.load_state(quarantine)
        self._cursor = self._trajectory.shape[0] - 1


def run_dgd_batch(
    costs: Union[Sequence[CostFunction], CostStack],
    trials: Sequence[BatchTrial],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    record_gradients: bool = False,
    divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    trace_rounds=None,
) -> BatchTrace:
    """Convenience wrapper mirroring :func:`repro.distsys.simulator.run_dgd`.

    Aggregators referenced by registry name can be resolved by the caller via
    :func:`repro.aggregators.registry.make_aggregator`; trials here carry
    instances so a whole sweep shares kernels per filter group.
    """
    simulator = BatchSimulator(
        costs=costs,
        trials=trials,
        constraint=constraint,
        schedule=schedule,
        initial_estimate=initial_estimate,
        record_gradients=record_gradients,
        divergence_threshold=divergence_threshold,
        trace_rounds=trace_rounds,
    )
    # Convenience runners report to the ambient recorder: a no-op
    # with the default NULL_RECORDER, a live stream under the CLI's
    # --telemetry-out / the orchestrator's worker recorders.
    return simulator.set_recorder(current_recorder()).run(iterations)
