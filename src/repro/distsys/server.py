"""The trusted server of the server-based architecture (Figure 1).

The server owns the estimate ``x_t``, applies the gradient-filter to the
received gradients (step S2) and performs the projected update of equation
(21).  It also implements the synchronous elimination rule of step S1: an
agent that stays silent is removed, and ``n``/``f`` are updated — when the
filter was registered by name, it is rebuilt for the reduced system.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.registry import make_aggregator
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from .engine import validate_initial_estimate

__all__ = ["RobustServer"]


class RobustServer:
    """Server state machine for robust distributed gradient descent."""

    def __init__(
        self,
        initial_estimate: np.ndarray,
        aggregator: Union[GradientAggregator, str],
        constraint: ConvexSet,
        schedule: StepSchedule,
        n: int,
        f: int,
    ):
        est = validate_initial_estimate(initial_estimate)
        if not 0 <= f < n:
            raise ValueError(f"need 0 <= f < n, got n={n}, f={f}")
        self.estimate = constraint.project(est)
        self.constraint = constraint
        self.schedule = schedule
        self.n = int(n)
        self.f = int(f)
        self._aggregator_name: Optional[str] = None
        if isinstance(aggregator, str):
            self._aggregator_name = aggregator
            self.aggregator: GradientAggregator = make_aggregator(
                aggregator, self.n, self.f
            )
        else:
            self.aggregator = aggregator
        self.iteration = 0

    def eliminate_silent(self, silent_ids: Iterable[int]) -> List[int]:
        """Apply step S1's elimination rule; returns the removed ids.

        Silent agents are necessarily faulty in a synchronous system, so
        both ``n`` and ``f`` decrease; a name-registered filter is rebuilt
        for the smaller system.
        """
        removed = sorted(set(silent_ids))
        if not removed:
            return []
        self.n -= len(removed)
        self.f = max(0, self.f - len(removed))
        if self.n <= 0:
            raise RuntimeError("all agents eliminated")
        if self._aggregator_name is not None:
            self.aggregator = make_aggregator(
                self._aggregator_name, self.n, self.f
            )
        return removed

    def filter_gradients(self, gradients: Dict[int, np.ndarray]) -> np.ndarray:
        """The aggregation half of step S2: filter the received gradients."""
        if len(gradients) != self.n:
            raise ValueError(
                f"received {len(gradients)} gradients for a system of {self.n}"
            )
        stack = np.vstack([gradients[i] for i in sorted(gradients)])
        return self.aggregator.aggregate(stack)

    def descend(self, aggregate: np.ndarray) -> None:
        """The update half of step S2: the projected step of equation (21)."""
        eta = self.schedule(self.iteration)
        candidate = self.estimate - eta * aggregate
        self.estimate = self.constraint.project(candidate)
        self.iteration += 1

    def hold(self) -> None:
        """Advance the round counter without moving the estimate.

        The quarantined-round twin of :meth:`descend`: a frozen run keeps
        counting rounds (so traces stay rectangular across a sweep) while
        its estimate stays bit-identical to the last healthy iterate.
        """
        self.iteration += 1

    def apply_update(self, gradients: Dict[int, np.ndarray]) -> np.ndarray:
        """Step S2: filter the received gradients and move the estimate.

        Returns the filtered aggregate (useful for tracing); the new
        estimate is available as :attr:`estimate`.
        """
        aggregate = self.filter_gradients(gradients)
        self.descend(aggregate)
        return aggregate
