"""Engine-facing surface of the run-health / fault-containment layer.

The implementation lives in :mod:`repro.health`, a dependency leaf that
the aggregator front-doors can import without cycling through this
package's ``__init__``.  Engine code — and anything post-morteming a
quarantined sweep — should import from here: the quarantine reason
taxonomy, the typed :class:`~repro.health.QuarantineError`, the batched
:class:`~repro.health.TrialGuard`, and the per-trial
:func:`~repro.health.classify_candidate` screen are one module observed
from two package paths.

See ``DESIGN.md`` invariant 13 for the containment contract: a batched
engine's quarantine decisions (trial, round, reason) and the held
trajectories of frozen trials are pinned at 1e-9 to the per-trial
reference engines, and frozen trials never perturb surviving trials
bit-wise.
"""

from __future__ import annotations

from ..health import (
    AGGREGATOR_REFUSED,
    DEFAULT_DIVERGENCE_THRESHOLD,
    DIVERGED,
    NONFINITE_ITERATE,
    OVERFLOW_LIMIT,
    QUARANTINE_REASONS,
    QuarantineError,
    RunGuard,
    TrialGuard,
    aggregation_round,
    all_moderate,
    classify_candidate,
    current_round_context,
    hostile_rows,
    nonfinite_rows,
    overflow_safe_norms,
    refusal,
    validate_divergence_threshold,
)

__all__ = [
    "AGGREGATOR_REFUSED",
    "DIVERGED",
    "NONFINITE_ITERATE",
    "QUARANTINE_REASONS",
    "DEFAULT_DIVERGENCE_THRESHOLD",
    "OVERFLOW_LIMIT",
    "QuarantineError",
    "RunGuard",
    "TrialGuard",
    "refusal",
    "aggregation_round",
    "current_round_context",
    "classify_candidate",
    "all_moderate",
    "hostile_rows",
    "nonfinite_rows",
    "overflow_safe_norms",
    "validate_divergence_threshold",
]
