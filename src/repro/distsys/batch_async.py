"""Batched lockstep execution of asynchronous sweeps — staleness × drop × seed
as one tensor program.

:class:`~repro.distsys.asynchronous.AsynchronousSimulator` replays one
(τ, network, fault-schedule, attack, aggregator, seed) cell at a time
through an event loop; estimating the paper's approximate-resilience radii
under asynchrony needs *many* seeds per cell, and a sweep of ``S`` cells
costs ``S`` full event loops.  :class:`BatchAsynchronousSimulator` runs the
``S`` trials in lockstep as one ``(S, n, d)`` tensor program — the
asynchronous mirror of :class:`~repro.distsys.batch.BatchSimulator`:

* every trial's whole-run network realization (delays, drops, straggler
  stretches, crash windows) is pre-sampled into dense ``(T, S, n)`` tensors
  through the :func:`~repro.distsys.faults.sample_network_run` fast path —
  per-trial streams identical to the per-trial engine's, so the batch
  pins to the reference trajectory by trajectory;
* per-trial in-flight message queues are padded ``(S, n, τ_max + 1)``
  view-round tensors (see DESIGN.md): slot ``k`` holds the newest send
  round whose message arrives in ``k`` rounds.  A message's *payload* is
  the iterate it was evaluated at, so the conceptual
  ``(S, n, τ_max + 1, d)`` payload queue is stored factored — the view
  index plus the shared ``(T + 1, S, d)`` trajectory — and delivery is one
  shift + maximum per round, with no per-message Python objects;
* stale-iterate gradients come from one
  :func:`~repro.functions.batched.gather_view_points` gather and one
  :meth:`~repro.functions.batched.CostStack.gradients_each` einsum per
  round, over all trials at once;
* fabrications are vectorized per attack group through
  :meth:`~repro.attacks.base.ByzantineAttack.fabricate_batch`, sub-grouped
  by the round's attendance pattern so each trial's generator is consumed
  exactly as the per-trial engine consumes it;
* partial attendance runs through the declared missing-value policies as
  batched kernels: ``"masked"`` via
  :func:`~repro.aggregators.masked.aggregate_batch_masked` (per-trial
  validity masks, declared ``f`` kept), ``"shrink"`` via per-(attendance,
  tolerance) groups of rebuilt filters with the step-S1 ``n``/``f``
  bookkeeping (``expected_n`` = the round's attendance, so the rebuilt
  CGE/CWTM instances validate their shrunk stacks loudly).

Semantics deliberately mirror the per-trial engine so it remains the
reference oracle; ``tests/distsys/test_batch_async.py`` pins the batch to
the per-trial trajectories at 1e-9 across aggregator × attack × τ × drop ×
seed, including stalls, crash-and-recover schedules and
Byzantine-from-round timelines.  Drive the engine through :meth:`run`
(stand-alone :meth:`step` has no pre-sampled horizon); a run checkpoints at
any chunk boundary through ``state_dict``/``load_state`` and resumes with
``run(T, start_round=k)``, re-pre-sampling only the remaining rounds — the
conditions' chunk-invariance contract makes the resumed realization
bit-identical to the uninterrupted one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.masked import (
    aggregate_batch_masked,
    aggregator_label,
    masked_kernel_for,
    masked_min_attendance,
)
from ..aggregators.registry import make_aggregator
from ..attacks.base import BatchAttackContext, ByzantineAttack
from ..backend import xp
from ..functions.base import CostFunction
from ..functions.batched import CostStack, gather_view_points, stack_costs
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import Recorder, current_recorder
from .asynchronous import MISSING_POLICIES
from .batch import _config_key, group_indices
from .engine import (
    ProtocolEngine,
    ProtocolRound,
    validate_attack_plan,
    validate_fault_count,
    validate_faulty_ids,
    validate_initial_estimate,
)
from .faults import (
    _NET_TAG,
    FaultSchedule,
    NetworkCondition,
    network_streams,
    sample_network_run,
)
from .health import (
    AGGREGATOR_REFUSED,
    DEFAULT_DIVERGENCE_THRESHOLD,
    TrialGuard,
    aggregation_round,
    nonfinite_rows,
)

__all__ = [
    "AsyncBatchTrial",
    "BatchAsyncTrace",
    "BatchAsynchronousSimulator",
    "run_asynchronous_batch",
]


@dataclass
class AsyncBatchTrial:
    """One asynchronous trial of a batched sweep.

    Mirrors the :class:`~repro.distsys.asynchronous.AsynchronousSimulator`
    constructor: each trial carries its own staleness bound, network
    conditions, fault timeline, attack, filter and missing-value policy —
    the engine groups equal configurations so a sweep varying only seeds
    still runs one kernel per stage.  ``aggregator`` should be a registry
    *name* whenever the ``"shrink"`` policy may be exercised (the policy
    rebuilds the filter per attendance); ``f`` defaults to the ground
    truth — the number of distinct agents the trial ever faults.
    """

    aggregator: Union[GradientAggregator, str]
    attack: Optional[ByzantineAttack] = None
    faulty_ids: Tuple[int, ...] = ()
    conditions: Tuple[NetworkCondition, ...] = ()
    fault_schedule: Optional[FaultSchedule] = None
    staleness_bound: int = 0
    missing_policy: str = "shrink"
    f: Optional[int] = None
    seed: int = 0
    schedule: Optional[StepSchedule] = None
    initial_estimate: Optional[np.ndarray] = None
    omniscient_attack: Optional[bool] = None
    label: Optional[str] = None


@dataclass
class BatchAsyncTrace:
    """Lazy trace of a batched asynchronous execution.

    Keeps the iterate trajectory plus the per-round asynchrony diagnostics
    as dense ``(T, S)`` tensors — the batched counterparts of the per-trial
    :class:`~repro.distsys.asynchronous.AsynchronousTrace` analytics.
    """

    estimates: np.ndarray                    # (T + 1, S, d)
    step_sizes: np.ndarray                   # (T, S)
    stalled: np.ndarray                      # (T, S) bool
    missing_counts: np.ndarray               # (T, S) agents with no usable msg
    usable_counts: np.ndarray                # (T, S) usable messages
    staleness_sums: np.ndarray               # (T, S) sum of usable staleness
    n: int
    labels: List[str] = field(default_factory=list)
    #: quarantine records ``{"trial", "round", "reason"}`` of frozen trials
    #: (reasons from :data:`repro.health.QUARANTINE_REASONS`); a frozen
    #: trial's trajectory is held at its last healthy iterate.
    quarantined: List[Dict[str, object]] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of completed rounds ``T``."""
        return self.estimates.shape[0] - 1

    @property
    def trials(self) -> int:
        """Batch width ``S``."""
        return self.estimates.shape[1]

    @property
    def final_estimates(self) -> np.ndarray:
        """Last iterate of every trial, shape ``(S, d)``."""
        return self.estimates[-1].copy()

    def trial_estimates(self, s: int) -> np.ndarray:
        """Trajectory ``x_0 .. x_T`` of trial ``s``, shape ``(T + 1, d)``."""
        return self.estimates[:, s, :].copy()

    def distances_to(
        self, target: Sequence[float], rounds: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Per-trial distance series ``||x_t - target||``, shape ``(S, K)``.

        ``rounds`` selects a subset of rounds (default: all ``T + 1``), so
        a large-``T`` sweep can compute just the diagnostics it plots
        without materializing the full ``(S, T + 1)`` distance matrix.
        """
        tgt = np.asarray(target, dtype=float)
        selected = (
            self.estimates
            if rounds is None
            else self.estimates[np.asarray(rounds, dtype=int)]
        )
        return np.linalg.norm(selected - tgt, axis=2).T

    def missing_fraction(self) -> np.ndarray:
        """Per-trial per-round fraction of agents with no usable message.

        Shape ``(S, T)`` — row ``s`` matches the per-trial trace's
        :meth:`~repro.distsys.asynchronous.AsynchronousTrace.missing_fraction`.
        """
        return self.missing_counts.T / float(self.n)

    def staleness_profile(self) -> np.ndarray:
        """Per-trial per-round mean staleness of the usable messages.

        Shape ``(S, T)``; rounds with no usable message contribute ``nan``
        (reduce with ``np.nanmean``), matching the per-trial trace.
        """
        counts = self.usable_counts.T
        with np.errstate(invalid="ignore"):
            return np.where(
                counts > 0, self.staleness_sums.T / counts, np.nan
            )

    def stalled_rounds(self) -> np.ndarray:
        """Rounds per trial where the estimate held, shape ``(S,)``."""
        return self.stalled.sum(axis=0)


class BatchAsynchronousSimulator(ProtocolEngine):
    """Run ``S`` asynchronous trials of one system in lockstep."""

    def __init__(
        self,
        costs: Union[Sequence[CostFunction], CostStack],
        trials: Sequence[AsyncBatchTrial],
        constraint: ConvexSet,
        schedule: StepSchedule,
        initial_estimate: Sequence[float],
        recorder: Optional[Recorder] = None,
        divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    ):
        if not trials:
            raise ValueError("need at least one trial")
        self.set_recorder(recorder)
        self.stack: CostStack = (
            costs if isinstance(costs, CostStack) else stack_costs(costs)
        )
        self.n = self.stack.n
        self.d = self.stack.dim
        self.trials: List[AsyncBatchTrial] = list(trials)
        self.constraint = constraint

        default_initial = validate_initial_estimate(initial_estimate, self.d)
        s = len(self.trials)

        # Per-trial normalized state — the caller's AsyncBatchTrial objects
        # are treated as read-only inputs.
        starts = []
        self.rngs: List[np.random.Generator] = []
        self._schedules: List[StepSchedule] = []
        self._omniscient: List[bool] = []
        self._aggregators: List[GradientAggregator] = []
        self._aggregator_names: List[Optional[str]] = []
        self._masked_min = np.zeros(s, dtype=int)
        self._fs = np.zeros(s, dtype=int)
        self._tau = np.zeros(s, dtype=int)
        self._shrink = np.zeros(s, dtype=bool)
        #: first compromise round per (trial, agent); int64 explicitly —
        #: the never-compromised sentinel overflows a 32-bit default int.
        self._since = np.full(
            (s, self.n), np.iinfo(np.int64).max, dtype=np.int64
        )
        self._fault_schedules: List[FaultSchedule] = []

        for index, trial in enumerate(self.trials):
            fault_schedule = (
                trial.fault_schedule or FaultSchedule()
            ).validate(self.n)
            self._fault_schedules.append(fault_schedule)
            base_faulty = validate_faulty_ids(trial.faulty_ids, self.n)
            since = fault_schedule.compromised_since()
            for agent in base_faulty:
                since[agent] = 0  # compromised from the start wins
            for agent, start_round in since.items():
                self._since[index, agent] = start_round
            byzantine = tuple(sorted(since))

            fault_agents = set(byzantine) | set(
                e.agent for e in fault_schedule.events if e.kind == "crash"
            )
            declared_f = (
                len(fault_agents) if trial.f is None else int(trial.f)
            )
            self._fs[index] = validate_fault_count(
                declared_f, self.n, len(fault_agents)
            )
            self._omniscient.append(
                validate_attack_plan(
                    trial.attack, len(byzantine), trial.omniscient_attack
                )
            )

            if trial.staleness_bound < 0:
                raise ValueError("staleness bound must be non-negative")
            self._tau[index] = int(trial.staleness_bound)
            if trial.missing_policy not in MISSING_POLICIES:
                raise ValueError(
                    f"unknown missing-value policy {trial.missing_policy!r}; "
                    f"known: {', '.join(MISSING_POLICIES)}"
                )
            self._shrink[index] = trial.missing_policy == "shrink"

            if isinstance(trial.aggregator, str):
                self._aggregator_names.append(trial.aggregator)
                aggregator = make_aggregator(
                    trial.aggregator, self.n, int(self._fs[index])
                )
            else:
                self._aggregator_names.append(None)
                aggregator = trial.aggregator
            self._aggregators.append(aggregator)
            if trial.missing_policy == "masked":
                if masked_kernel_for(aggregator) is None:
                    raise ValueError(
                        f"aggregator {aggregator_label(aggregator)} has no "
                        "masked kernel; use missing_policy='shrink'"
                    )
                self._masked_min[index] = max(
                    masked_min_attendance(aggregator), int(self._fs[index]) + 1
                )

            start = (
                default_initial
                if trial.initial_estimate is None
                else validate_initial_estimate(trial.initial_estimate, self.d)
            )
            starts.append(start)
            # The attack stream is seeded exactly like the per-trial
            # engine's (and the synchronous engines').
            self.rngs.append(np.random.default_rng(trial.seed))
            self._schedules.append(trial.schedule or schedule)

        self.estimates = xp.asarray(
            self.constraint.project_batch(np.stack(starts))
        )
        self.iteration = 0
        self.guard = TrialGuard(s, divergence_threshold)
        self._tau_max = int(self._tau.max())

        # The padded in-flight queue: slot k holds the newest view (send
        # round) arriving in k rounds; -1 = empty.  Messages delayed past
        # their trial's τ can never be usable and are never enqueued.
        # Queue state is horizon-independent, so it lives here and simply
        # persists across chunked runs (and through state_dict/load_state).
        self._pending = np.full((s, self.n, self._tau_max + 1), -1, dtype=int)
        self._freshest = np.full((s, self.n), -1, dtype=int)

        # -- static groups (per-round sub-grouping happens on attendance) --
        self._aggregator_groups = group_indices(
            s, lambda index: _config_key(self._aggregators[index])
        )
        self._attack_groups = []
        for rep, idx in group_indices(
            s,
            lambda index: (
                _config_key(self.trials[index].attack),
                self._omniscient[index],
            ),
        ):
            if self.trials[rep].attack is not None:
                self._attack_groups.append(
                    (self.trials[rep].attack, self._omniscient[rep], idx)
                )
        self._schedule_groups = [
            (self._schedules[rep], idx)
            for rep, idx in group_indices(
                s, lambda index: _config_key(self._schedules[index])
            )
        ]
        self._shrunk_cache: Dict[Tuple[str, int, int], GradientAggregator] = {}
        # Integer name ids let the per-round shrink grouping run through
        # one np.unique instead of per-trial Python key building.
        name_ids: Dict[str, int] = {}
        self._name_ids = np.full(s, -1, dtype=int)
        for index, name in enumerate(self._aggregator_names):
            if name is not None:
                self._name_ids[index] = name_ids.setdefault(name, len(name_ids))
        self._names_by_id = {v: k for k, v in name_ids.items()}
        #: Pre-sampled horizon: rounds ``[0, _horizon)`` have network
        #: realizations materialized.  Grows chunk by chunk (resume), and
        #: every chunk is bit-identical to the uninterrupted whole-run
        #: pre-sample by the conditions' chunk-invariance contract.
        self._horizon = 0
        #: Engine-owned deep copies of each trial's conditions: per-run
        #: chain state (e.g. the Gilbert–Elliott burst mask) must persist
        #: across chunks *per trial*, so trials sharing condition instances
        #: cannot share the mutable state.
        self._run_conditions: Optional[List[Tuple[NetworkCondition, ...]]] = None
        #: Per-trial, per-condition network generators (see
        #: :func:`~repro.distsys.faults.network_streams`).
        self._net_rngs: Optional[List[List[np.random.Generator]]] = None

    # -- whole-run pre-sampling (chunked) ---------------------------------
    def _extend_horizon(self, t_total: int) -> None:
        """Pre-sample the network realization out to round ``t_total``.

        The first call plays the historical whole-run pre-sample; later
        calls extend it chunk by chunk with continuous ``start`` and the
        persisted per-trial network generators, so by the conditions'
        chunk-invariance contract every chunking of a run — including a
        checkpoint/resume split — reproduces the uninterrupted realization
        bit for bit.
        """
        if t_total <= self._horizon:
            return
        s = len(self.trials)
        start = self._horizon

        if self._run_conditions is None:
            # First chunk: engine-owned condition copies (per-run chain
            # state must persist per trial across chunks, so trials cannot
            # share mutable condition instances) and per-trial tagged
            # network streams — identical to the per-trial engine's.
            self._run_conditions = [
                copy.deepcopy(tuple(trial.conditions))
                for trial in self.trials
            ]
            self._net_rngs = [
                network_streams(trial.seed, len(conditions))
                for trial, conditions in zip(
                    self.trials, self._run_conditions
                )
            ]
            for conditions, net_rngs in zip(
                self._run_conditions, self._net_rngs
            ):
                for condition, net_rng in zip(conditions, net_rngs):
                    condition.begin_run(self.n, net_rng)
            self._delays = np.empty((0, s, self.n), dtype=int)
            self._sent = np.empty((0, s, self.n), dtype=bool)
            self._trajectory = np.empty((1, s, self.d))
            self._trajectory[0] = self.estimates
            self._stalled = np.zeros((0, s), dtype=bool)
            self._missing_counts = np.zeros((0, s), dtype=int)
            self._usable_counts = np.zeros((0, s), dtype=int)
            self._staleness_sums = np.zeros((0, s))

        chunk = t_total - start
        delays = np.empty((t_total, s, self.n), dtype=int)
        sent = np.empty((t_total, s, self.n), dtype=bool)
        delays[:start] = self._delays[:start]
        sent[:start] = self._sent[:start]
        for index in range(s):
            chunk_delays, dropped = sample_network_run(
                self._run_conditions[index],
                self._net_rngs[index],
                self.n,
                chunk,
                start=start,
            )
            active = self._fault_schedules[index].sample_run(
                None, self.n, chunk, start=start
            )
            delays[start:, index, :] = chunk_delays
            sent[start:, index, :] = active & ~dropped

        # Attack-scheduled silence (crash-style faults) for the new rounds:
        # a compromised agent that silences sends nothing, exactly like the
        # per-trial engine's dispatch check.
        for index, trial in enumerate(self.trials):
            if trial.attack is None:
                continue
            for agent in np.flatnonzero(
                self._since[index] < np.iinfo(np.int64).max
            ):
                first = max(int(self._since[index, agent]), start)
                for t in range(first, t_total):
                    if trial.attack.silences(int(agent), t):
                        sent[t, index, agent] = False
        self._delays = delays
        self._sent = sent

        # Dispatch views and step sizes are deterministic functions of the
        # round index, so extensions simply rebuild them over the full
        # horizon.  Views: round t sends a fresh view t, except the
        # recovery-round dispatch of a warm-restarting agent, which carries
        # its persisted pre-crash view (the per-trial engine's semantics).
        self._send_views = np.broadcast_to(
            np.arange(t_total)[:, None, None], (t_total, s, self.n)
        ).copy()
        for index in range(s):
            warm = self._fault_schedules[index].warm_restart_views()
            for (agent, recovery_round), view in warm.items():
                if recovery_round < t_total:
                    self._send_views[recovery_round, index, agent] = view

        # Stalled rounds still consume their schedule slot, so the step
        # sizes are attendance-independent.
        self._etas = np.empty((t_total, s))
        for sched, idx in self._schedule_groups:
            self._etas[:, idx] = np.array(
                [sched(t) for t in range(t_total)]
            )[:, None]

        trajectory = np.empty((t_total + 1, s, self.d))
        trajectory[: start + 1] = self._trajectory[: start + 1]
        self._trajectory = trajectory
        for name, dtype in (
            ("_stalled", bool),
            ("_missing_counts", int),
            ("_usable_counts", int),
            ("_staleness_sums", float),
        ):
            grown = np.zeros((t_total, s), dtype=dtype)
            grown[:start] = getattr(self, name)[:start]
            setattr(self, name, grown)
        self._horizon = t_total

    # -- quarantine bookkeeping -------------------------------------------
    def _note_quarantined(
        self, trials: Sequence[int], round_index: int, reason: str
    ) -> None:
        """Emit one telemetry event per freshly frozen trial."""
        if not trials or not self.telemetry.enabled:
            return
        for t in trials:
            self.telemetry.emit(
                "trial_quarantined",
                trial=int(t),
                round=int(round_index),
                reason=reason,
                engine=type(self).__name__,
            )

    # -- protocol stages --------------------------------------------------
    def observe(self) -> ProtocolRound:
        """Enqueue, deliver, and evaluate this round's usable messages.

        Quarantined trials are treated as fully missing: their usable mask
        is cleared (so they stall, consume no attack stream, and reach no
        kernel) and their gradients stay zero placeholders.
        """
        if self.iteration >= self._horizon:
            raise RuntimeError(
                "drive BatchAsynchronousSimulator through run(); stand-alone "
                "step() has no pre-sampled horizon"
            )
        t = self.iteration
        x_t = self.estimates

        # Enqueue round-t sends that can still be usable at delivery:
        # delivery age is delay + (t - view), so anything past the trial's
        # staleness bound is dropped here unobservably.  Views are t except
        # warm-restart dispatches, whose pre-crash view may be *older* than
        # a pending slot — the maximum keeps the per-trial engine's
        # newest-view-wins delivery semantics.
        delay_t = self._delays[t]                      # (S, n)
        view_t = self._send_views[t]                   # (S, n)
        enqueue = self._sent[t] & (
            delay_t + (t - view_t) <= self._tau[:, None]
        )
        trial_ix, agent_ix = np.nonzero(enqueue)
        slot_ix = delay_t[trial_ix, agent_ix]
        self._pending[trial_ix, agent_ix, slot_ix] = np.maximum(
            self._pending[trial_ix, agent_ix, slot_ix],
            view_t[trial_ix, agent_ix],
        )

        # Deliver slot 0 and shift the queue one round closer.
        self._freshest = np.maximum(self._freshest, self._pending[:, :, 0])
        self._pending[:, :, :-1] = self._pending[:, :, 1:]
        self._pending[:, :, -1] = -1

        usable = (self._freshest >= 0) & (
            t - self._freshest <= self._tau[:, None]
        )
        usable &= self.guard.active[:, None]

        # The stale-gradient hot path: one gather + one einsum for every
        # agent of every trial at its own view iterate.  Frozen trials are
        # masked out — their held iterates are never differentiated again.
        views = np.where(usable, self._freshest, -1)
        points = gather_view_points(
            self._trajectory[: t + 1], views, x_t
        )
        if self.guard.any_quarantined:
            active = self.guard.active
            all_gradients = xp.zeros((len(self.trials), self.n, self.d))
            all_gradients[active] = self.stack.gradients_each(points[active])
        else:
            all_gradients = self.stack.gradients_each(points)   # (S, n, d)

        live_byzantine = usable & (self._since <= t)        # (S, n)
        return ProtocolRound(
            iteration=t,
            gradients=all_gradients,
            extras={
                "usable": usable,
                "views": views,
                "live_byzantine": live_byzantine,
            },
        )

    def fabricate(self, round: ProtocolRound) -> None:
        """Rewrite the usable messages of currently-compromised agents.

        One :meth:`~repro.attacks.base.ByzantineAttack.fabricate_batch`
        call per (attack configuration, attendance pattern) — trials whose
        compromised/honest attendance coincides this round share a call,
        and each trial's generator is consumed exactly as the per-trial
        engine consumes it (no call when no compromised message is usable).
        """
        t = round.iteration
        usable = round.extras["usable"]
        live = round.extras["live_byzantine"]
        views = round.extras["views"]
        gradients = round.gradients
        for attack, omniscient, idx in self._attack_groups:
            byz_rows = live[idx]                          # (G, n)
            active = byz_rows.any(axis=1)
            if not active.any():
                continue  # nothing usable to rewrite; no stream use
            members = idx[active]
            rows = byz_rows[active]
            if omniscient:
                rows = np.concatenate(
                    [rows, usable[members] & ~live[members]], axis=1
                )
            patterns, inverse = np.unique(rows, axis=0, return_inverse=True)
            for g in range(patterns.shape[0]):
                sub = members[inverse == g]
                faulty = np.flatnonzero(patterns[g, : self.n])
                honest = (
                    np.flatnonzero(patterns[g, self.n :])
                    if omniscient
                    else None
                )
                # Attacks are plain-NumPy plugin code: context observables
                # cross the backend boundary as base arrays.
                context = BatchAttackContext(
                    iteration=t,
                    estimates=xp.to_numpy(self.estimates[sub]),
                    faulty_ids=faulty.tolist(),
                    true_gradients=xp.to_numpy(gradients[np.ix_(sub, faulty)]),
                    honest_gradients=(
                        xp.to_numpy(gradients[np.ix_(sub, honest)])
                        if omniscient
                        else None
                    ),
                    honest_ids=(
                        honest.tolist() if omniscient else None
                    ),
                    rngs=[self.rngs[i] for i in sub],
                    view_rounds=views[np.ix_(sub, faulty)],
                    compromised_since=self._since[np.ix_(sub, faulty)],
                )
                fabricated = np.asarray(
                    attack.fabricate_batch(context), dtype=float
                )
                expected = (sub.size, faulty.size, self.d)
                if fabricated.shape != expected:
                    raise RuntimeError(
                        f"attack {attack.name!r} returned shape "
                        f"{fabricated.shape}, expected {expected}"
                    )
                gradients[np.ix_(sub, faulty)] = fabricated

    def aggregate(self, round: ProtocolRound) -> None:
        """Batched filters through the missing-value policies.

        Full attendance takes each filter group's ``aggregate_batch``
        kernel; partial attendance applies the trial's declared policy —
        masked kernels under per-trial validity masks, or shrink-n groups
        keyed by (filter name, attendance, shrunk tolerance).  Trials whose
        attendance cannot support their policy stall.

        Trials whose strict filter (``quarantines_on_nonfinite``) faces a
        non-finite usable message are quarantined *before* any kernel call
        — reason ``aggregator_refused`` — and then held like stalls.
        """
        t = round.iteration
        usable = round.extras["usable"]
        gradients = round.gradients
        counts = usable.sum(axis=1)                          # (S,)
        s = len(self.trials)
        aggregates = xp.zeros((s, self.d))
        stalled = (counts == 0) | self.guard.frozen

        # Masked-policy trials short of their attendance floor stall too.
        masked_partial = (
            ~self._shrink & (counts > 0) & (counts < self.n)
        )
        stalled |= masked_partial & (counts < self._masked_min)

        # Strict-filter refusal: the pre-check mirrors the kernels' own
        # front-door validation, so no batched kernel ever raises.  A
        # stalled trial calls no kernel, so it cannot refuse — exactly
        # the per-trial engine's policy ordering.
        for rep, idx in self._aggregator_groups:
            aggregator = self._aggregators[rep]
            if not aggregator.quarantines_on_nonfinite:
                continue
            live = self.guard.live(idx)
            live = live[~stalled[live]]
            if not live.size:
                continue
            refused = (
                nonfinite_rows(gradients[live]) & usable[live]
            ).any(axis=1)
            if refused.any():
                fresh = self.guard.quarantine(
                    live[refused], t, AGGREGATOR_REFUSED
                )
                self._note_quarantined(fresh, t, AGGREGATOR_REFUSED)
                stalled[live[refused]] = True

        full = (counts == self.n) & self.guard.active
        for rep, idx in self._aggregator_groups:
            aggregator = self._aggregators[rep]
            full_idx = idx[full[idx]]
            if full_idx.size:
                with aggregation_round(t, aggregator_label(aggregator)):
                    aggregates[full_idx] = aggregator.aggregate_batch(
                        gradients[full_idx]
                    )
            masked_idx = idx[masked_partial[idx] & ~stalled[idx]]
            if masked_idx.size:
                with aggregation_round(t, aggregator_label(aggregator)):
                    aggregates[masked_idx] = aggregate_batch_masked(
                        aggregator, gradients[masked_idx], usable[masked_idx]
                    )

        # Shrink-n: rebuild the declared filter per (attendance, shrunk f)
        # group with step-S1's bookkeeping (missing ~ crashed).
        shrink_partial = np.flatnonzero(
            self._shrink & (counts > 0) & (counts < self.n) & ~stalled
        )
        if shrink_partial.size:
            if (self._name_ids[shrink_partial] < 0).any():
                raise RuntimeError(
                    "the shrink-n missing-value policy rebuilds the filter "
                    "by registry name; pass the aggregator as a string or "
                    "use missing_policy='masked'"
                )
            received = counts[shrink_partial]
            f_rounds = np.maximum(
                0, self._fs[shrink_partial] - (self.n - received)
            )
            # Attendance must outvote the shrunk tolerance (explicit,
            # never assumed) — same contract as the per-trial engine.
            short = received <= f_rounds
            if short.any():
                worst = int(np.flatnonzero(short)[0])
                validate_fault_count(
                    int(f_rounds[worst]), self.n, 0,
                    n_received=int(received[worst]),
                )
            keys = (
                self._name_ids[shrink_partial] * (self.n + 1) + received
            ) * (self.n + 1) + f_rounds
            _, first, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            for g in range(first.size):
                sub = shrink_partial[inverse == g]
                rep = int(shrink_partial[first[g]])
                key = (
                    self._names_by_id[int(self._name_ids[rep])],
                    int(counts[rep]),
                    max(0, int(self._fs[rep]) - (self.n - int(counts[rep]))),
                )
                aggregator = self._shrunk_cache.get(key)
                if aggregator is None:
                    aggregator = make_aggregator(*key)
                    self._shrunk_cache[key] = aggregator
                # Row-major boolean selection stacks each trial's usable
                # gradients in ascending agent order — the per-trial sort.
                stacks = gradients[sub][usable[sub]].reshape(
                    sub.size, key[1], self.d
                )
                with aggregation_round(t, aggregator_label(aggregator)):
                    aggregates[sub] = aggregator.aggregate_batch(stacks)

        round.aggregates = aggregates
        round.extras["stalled"] = stalled

    def project(self, round: ProtocolRound) -> np.ndarray:
        """Batched equation-(21) update; stalled trials hold their estimate.

        Pre-projection candidates are screened per trial: a non-finite or
        diverged candidate quarantines only that trial, which the guard
        then holds bit-exactly at its last healthy iterate.
        """
        t = round.iteration
        stalled = round.extras["stalled"]
        etas = self._etas[t]
        previous = self.estimates
        candidates = xp.where(
            stalled[:, None],
            previous,
            previous - etas[:, None] * round.aggregates,
        )
        before = set(self.guard.records)
        held = self.guard.screen(t, previous, candidates)
        for trial in sorted(self.guard.records.keys() - before):
            self._note_quarantined(
                [trial], t, str(self.guard.records[trial]["reason"])
            )
        # Constraint sets are plain-NumPy plugin code: cross the backend
        # boundary both ways around the projection.
        projected = xp.asarray(
            self.constraint.project_batch(xp.to_numpy(held))
        )
        self.estimates = self.guard.hold(
            previous, xp.where(stalled[:, None], previous, projected)
        )
        self.iteration = t + 1

        usable = round.extras["usable"]
        views = round.extras["views"]
        self._trajectory[t + 1] = self.estimates
        self._stalled[t] = stalled
        self._usable_counts[t] = usable.sum(axis=1)
        self._missing_counts[t] = self.n - self._usable_counts[t]
        self._staleness_sums[t] = np.where(usable, t - views, 0).sum(axis=1)
        return self.estimates

    # -- run --------------------------------------------------------------
    def _run_result(self) -> BatchAsyncTrace:
        labels = []
        for index, trial in enumerate(self.trials):
            aggregator = self._aggregator_names[index] or type(
                self._aggregators[index]
            ).__name__
            attack = trial.attack.name if trial.attack else "honest"
            labels.append(
                trial.label
                or f"{aggregator}/{attack}/tau{int(self._tau[index])}"
            )
        return BatchAsyncTrace(
            estimates=self._trajectory,
            step_sizes=self._etas,
            stalled=self._stalled,
            missing_counts=self._missing_counts,
            usable_counts=self._usable_counts,
            staleness_sums=self._staleness_sums,
            n=self.n,
            labels=labels,
            quarantined=self.guard.summary(),
        )

    def run(
        self, iterations: int, start_round: Optional[int] = None
    ) -> BatchAsyncTrace:
        """Run to round ``iterations`` and return the lazy ``0..T`` trace.

        ``iterations`` is the *absolute* horizon ``T``.  A fresh engine
        (``start_round`` omitted) pre-samples and runs all ``T`` rounds —
        the historical behaviour.  A resumed engine (after
        :meth:`load_state`, or carrying on after an earlier ``run``) passes
        the round it stopped at as ``start_round``; the horizon extension
        re-pre-samples only ``[start_round, T)`` with the persisted
        per-trial network generators, which the chunk-invariance contract
        of :meth:`~repro.distsys.faults.NetworkCondition.sample_run` makes
        bit-identical to the uninterrupted whole-run pre-sample.
        """
        start = 0 if start_round is None else int(start_round)
        if start != self.iteration:
            raise ValueError(
                f"start_round={start} but the engine is at iteration "
                f"{self.iteration}; resume exactly where the engine "
                "stopped (pass start_round=engine.iteration)"
            )
        if iterations <= start:
            raise ValueError(
                f"iterations is the absolute horizon T and must exceed "
                f"start_round; got T={iterations}, start_round={start}"
            )
        self._extend_horizon(int(iterations))
        with self.telemetry.span(
            "engine_run",
            engine=type(self).__name__,
            start_round=start,
            horizon=int(iterations),
            trials=len(self.trials),
        ):
            for _ in range(int(iterations) - start):
                self.step()
        return self._run_result()

    def _record_round_metrics(
        self, recorder: Recorder, round: ProtocolRound
    ) -> None:
        """Per-round asynchrony counters (recording on only)."""
        usable = round.extras["usable"]
        recorder.count("stalled_trials", int(round.extras["stalled"].sum()))
        recorder.count("usable_messages", int(usable.sum()))
        recorder.count(
            "missing_messages", int(usable.size - usable.sum())
        )
        recorder.gauge(
            "queue_depth", int((self._pending >= 0).sum())
        )

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-able snapshot at a chunk boundary of a longer run.

        The engine pre-samples its whole horizon up front, consuming each
        trial's network stream through round ``_horizon`` — so a snapshot
        is only stream-consistent where ``iteration == _horizon``, i.e.
        exactly at the end of a :meth:`run` chunk.  Captures the iterate
        batch, both generator families (attack + network), the per-run
        condition state (burst chains), the in-flight queues and the
        recorded prefix; :meth:`load_state` on a freshly constructed
        engine with the same trials continues bit-identically.
        """
        if self._run_conditions is None:
            raise RuntimeError(
                "state_dict needs a begun run: call run() first"
            )
        k = int(self.iteration)
        if k != self._horizon:
            raise RuntimeError(
                f"state_dict snapshots chunk boundaries only: the engine "
                f"is at round {k} with a pre-sampled horizon of "
                f"{self._horizon}, and the network stream cannot be "
                "rewound — checkpoint exactly at the end of a run() chunk"
            )
        return {
            "schema": "repro/batch-async-state/v1",
            "iteration": k,
            "estimates": self.estimates.tolist(),
            "rng_states": [rng.bit_generator.state for rng in self.rngs],
            "net_rng_states": [
                [rng.bit_generator.state for rng in streams]
                for streams in self._net_rngs
            ],
            "condition_states": [
                [condition.state_dict() for condition in conditions]
                for conditions in self._run_conditions
            ],
            "pending": self._pending.tolist(),
            "freshest": self._freshest.tolist(),
            "quarantine": self.guard.state_dict(),
            "trajectory": self._trajectory[: k + 1].tolist(),
            "stalled": self._stalled[:k].tolist(),
            "missing_counts": self._missing_counts[:k].tolist(),
            "usable_counts": self._usable_counts[:k].tolist(),
            "staleness_sums": self._staleness_sums[:k].tolist(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto a fresh engine."""
        schema = state.get("schema")
        if schema != "repro/batch-async-state/v1":
            raise ValueError(f"unrecognized engine-state schema: {schema!r}")
        if self.iteration != 0 or self._horizon != 0:
            raise RuntimeError(
                "load_state needs a freshly constructed engine"
            )
        s = len(self.trials)
        for name in ("rng_states", "net_rng_states", "condition_states"):
            if len(state[name]) != s:
                raise ValueError(
                    f"state holds {len(state[name])} {name} entries but "
                    f"the engine has {s} trials"
                )
        k = int(state["iteration"])
        self._run_conditions = [
            copy.deepcopy(tuple(trial.conditions)) for trial in self.trials
        ]
        self._net_rngs = [
            network_streams(trial.seed, len(conditions))
            for trial, conditions in zip(self.trials, self._run_conditions)
        ]
        for conditions, net_rngs, condition_states, stream_states in zip(
            self._run_conditions,
            self._net_rngs,
            state["condition_states"],
            state["net_rng_states"],
        ):
            if len(condition_states) != len(conditions):
                raise ValueError(
                    f"state holds {len(condition_states)} condition states "
                    f"for a trial with {len(conditions)} conditions"
                )
            if len(stream_states) != len(conditions):
                raise ValueError(
                    f"state holds {len(stream_states)} network-stream "
                    f"states for a trial with {len(conditions)} conditions"
                )
            for condition, net_rng in zip(conditions, net_rngs):
                condition.begin_run(self.n, net_rng)
            for condition, condition_state in zip(
                conditions, condition_states
            ):
                condition.load_state(condition_state)
            for rng, rng_state in zip(net_rngs, stream_states):
                rng.bit_generator.state = rng_state
        for rng, rng_state in zip(self.rngs, state["rng_states"]):
            rng.bit_generator.state = rng_state

        self.iteration = k
        self._horizon = k
        self.estimates = xp.asarray(
            np.asarray(state["estimates"], dtype=float)
        )
        self._pending = np.asarray(state["pending"], dtype=int)
        self._freshest = np.asarray(state["freshest"], dtype=int)
        # Absent in pre-quarantine snapshots: every trial stays active.
        quarantine = state.get("quarantine")
        if quarantine is not None:
            self.guard.load_state(quarantine)
        # Rounds before k are already consumed: their realization is never
        # re-read, so the prefix tensors stay zero-filled placeholders.
        self._delays = np.zeros((k, s, self.n), dtype=int)
        self._sent = np.zeros((k, s, self.n), dtype=bool)
        self._trajectory = np.asarray(state["trajectory"], dtype=float)
        self._stalled = np.asarray(state["stalled"], dtype=bool)
        self._missing_counts = np.asarray(
            state["missing_counts"], dtype=int
        )
        self._usable_counts = np.asarray(state["usable_counts"], dtype=int)
        self._staleness_sums = np.asarray(
            state["staleness_sums"], dtype=float
        )


def run_asynchronous_batch(
    costs: Union[Sequence[CostFunction], CostStack],
    trials: Sequence[AsyncBatchTrial],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
) -> BatchAsyncTrace:
    """Convenience wrapper mirroring :func:`~repro.distsys.batch.run_dgd_batch`."""
    simulator = BatchAsynchronousSimulator(
        costs=costs,
        trials=trials,
        constraint=constraint,
        schedule=schedule,
        initial_estimate=initial_estimate,
        divergence_threshold=divergence_threshold,
    )
    # Convenience runners report to the ambient recorder: a no-op
    # with the default NULL_RECORDER, a live stream under the CLI's
    # --telemetry-out / the orchestrator's worker recorders.
    return simulator.set_recorder(current_recorder()).run(iterations)
