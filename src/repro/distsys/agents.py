"""Agent processes of the server-based architecture (Figure 1).

``HonestAgent`` evaluates its local cost's gradient at the broadcast
estimate.  ``ByzantineAgent`` defers to a :class:`~repro.attacks.base.ByzantineAttack`
via the simulator (which supplies the attack context), and may also simulate
crash-style silence.  ``StochasticAgent`` generalizes the honest agent to
minibatch gradients for the D-SGD experiments of Appendix K.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from ..functions.base import CostFunction
from .messages import GradientReply, GradientRequest, Silence

__all__ = ["Agent", "HonestAgent", "ByzantineAgent", "StochasticAgent"]


class Agent(abc.ABC):
    """A participant identified by a non-negative integer id."""

    def __init__(self, agent_id: int):
        if agent_id < 0:
            raise ValueError("agent id must be non-negative")
        self.agent_id = int(agent_id)

    @abc.abstractmethod
    def handle_request(
        self, request: GradientRequest
    ) -> Union[GradientReply, Silence]:
        """React to the server's broadcast for this iteration."""

    @property
    def is_byzantine(self) -> bool:
        """Ground-truth fault flag (never consulted by the server logic)."""
        return False


class HonestAgent(Agent):
    """Computes and truthfully reports ``grad Q_i(x_t)``."""

    def __init__(self, agent_id: int, cost: CostFunction):
        super().__init__(agent_id)
        self.cost = cost

    def handle_request(self, request: GradientRequest) -> GradientReply:
        gradient = self.cost.gradient(request.estimate)
        return GradientReply(
            iteration=request.iteration,
            sender=self.agent_id,
            gradient=gradient,
        )

    def __repr__(self) -> str:
        return f"HonestAgent(id={self.agent_id}, cost={self.cost!r})"


class ByzantineAgent(Agent):
    """A compromised agent.

    The actual fabricated gradient is computed by the simulator (attacks may
    collude across agents, so fabrication happens centrally); this class
    carries the agent's *reference cost* — used for attacks defined relative
    to the correct gradient, like gradient-reverse — and an optional
    ``silent_after`` iteration from which the agent stops responding,
    exercising the elimination rule of step S1.
    """

    def __init__(
        self,
        agent_id: int,
        reference_cost: Optional[CostFunction] = None,
        silent_after: Optional[int] = None,
    ):
        super().__init__(agent_id)
        self.reference_cost = reference_cost
        self.silent_after = silent_after

    def true_gradient(self, estimate: np.ndarray) -> np.ndarray:
        """The gradient this agent *would* send if it were honest."""
        if self.reference_cost is None:
            return np.zeros_like(np.asarray(estimate, dtype=float))
        return self.reference_cost.gradient(estimate)

    def is_silent(self, iteration: int) -> bool:
        """Whether the agent crashes (sends nothing) at this iteration."""
        return self.silent_after is not None and iteration >= self.silent_after

    def handle_request(
        self, request: GradientRequest
    ) -> Union[GradientReply, Silence]:
        # The simulator intercepts Byzantine agents and substitutes the
        # attack's fabrication; reaching here means a mis-wired simulator.
        raise RuntimeError(
            "ByzantineAgent replies are fabricated by the simulator"
        )

    @property
    def is_byzantine(self) -> bool:
        return True

    def __repr__(self) -> str:
        return (
            f"ByzantineAgent(id={self.agent_id},"
            f" silent_after={self.silent_after})"
        )


class StochasticAgent(Agent):
    """Honest agent reporting minibatch stochastic gradients (Appendix K).

    ``oracle`` maps ``(estimate, rng)`` to an unbiased gradient estimate; the
    agent owns a deterministic per-agent generator so executions are
    reproducible.
    """

    def __init__(self, agent_id: int, oracle, seed: int = 0):
        super().__init__(agent_id)
        self.oracle = oracle
        self.rng = np.random.default_rng(seed)

    def handle_request(self, request: GradientRequest) -> GradientReply:
        gradient = self.oracle(request.estimate, self.rng)
        return GradientReply(
            iteration=request.iteration,
            sender=self.agent_id,
            gradient=np.asarray(gradient, dtype=float),
        )

    def __repr__(self) -> str:
        return f"StochasticAgent(id={self.agent_id})"
