"""Synchronous Byzantine broadcast — the OM(m) oral-messages protocol.

Section 1.4 of the paper: "Provided that f < n/3, an algorithm for the
server-based architecture can be simulated in the peer-to-peer system using
the well-known Byzantine broadcast primitive [33]."  This module provides
that primitive: the recursive Lamport–Shostak–Pease OM(m) algorithm, which
for ``n > 3m`` guarantees

* IC1 (agreement): all honest receivers decide the same value, and
* IC2 (validity): if the sender is honest, they decide the sender's value.

Traitor behaviour is pluggable through :class:`BroadcastAdversary`, whose
default implementation equivocates (sends different forged values to
different recipients) — the strongest behaviour OM is proved against.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BroadcastAdversary",
    "EquivocatingAdversary",
    "SilentAdversary",
    "TruthfulAdversary",
    "BroadcastStats",
    "byzantine_broadcast",
    "majority_value",
    "om_message_count",
]


class BroadcastAdversary(abc.ABC):
    """Behaviour of traitor nodes while relaying in OM(m)."""

    @abc.abstractmethod
    def forge(
        self,
        sender: int,
        recipient: int,
        path: Tuple[int, ...],
        true_value: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Value a traitor ``sender`` relays to ``recipient``.

        ``path`` is the chain of relays above this message (commander
        first), letting adversaries forge differently at each depth.
        """


class EquivocatingAdversary(BroadcastAdversary):
    """Send the true value to some peers and a forged one to others.

    Recipients with even index receive the truth; odd-index recipients get
    the value shifted by a recipient-dependent offset — maximal inconsistency
    under the oral-message model.
    """

    def __init__(self, magnitude: float = 10.0):
        self.magnitude = float(magnitude)

    def forge(self, sender, recipient, path, true_value, rng) -> np.ndarray:
        if recipient % 2 == 0:
            return np.asarray(true_value, dtype=float).copy()
        offset = self.magnitude * (1.0 + recipient + len(path))
        return np.asarray(true_value, dtype=float) + offset


class SilentAdversary(BroadcastAdversary):
    """Relay a fixed junk value to everyone (modelled silence/garbage)."""

    def __init__(self, junk: float = 0.0):
        self.junk = float(junk)

    def forge(self, sender, recipient, path, true_value, rng) -> np.ndarray:
        return np.full_like(np.asarray(true_value, dtype=float), self.junk)


class TruthfulAdversary(BroadcastAdversary):
    """A 'traitor' that behaves honestly — for differential testing."""

    def forge(self, sender, recipient, path, true_value, rng) -> np.ndarray:
        return np.asarray(true_value, dtype=float).copy()


class BroadcastStats:
    """Mutable message counter threaded through one OM(m) execution."""

    def __init__(self) -> None:
        self.messages = 0

    def __repr__(self) -> str:
        return f"BroadcastStats(messages={self.messages})"


def om_message_count(n: int, rounds: int) -> int:
    """Closed-form message count of OM(m) with ``n`` nodes.

    With L = n − 1 lieutenants: ``M(L, 0) = L`` and
    ``M(L, m) = L + L * M(L − 1, m − 1)`` — the O(n^{m+1}) growth that makes
    the oral-messages protocol expensive, quantified exactly so the
    instrumented simulator can be cross-validated against it.
    """
    if n < 2:
        raise ValueError("broadcast needs at least two nodes")
    if rounds < 0:
        raise ValueError("rounds must be non-negative")

    def recurse(lieutenants: int, m: int) -> int:
        if lieutenants <= 0:
            return 0
        if m == 0:
            return lieutenants
        if lieutenants == 1:
            # A single lieutenant has nobody to relay to.
            return lieutenants
        return lieutenants + lieutenants * recurse(lieutenants - 1, m - 1)

    return recurse(n - 1, rounds)


def _value_key(value: np.ndarray) -> bytes:
    """Hashable identity of a relayed value (exact bytes of float64)."""
    return np.ascontiguousarray(np.asarray(value, dtype=float)).tobytes()


def majority_value(values: Sequence[np.ndarray], default: np.ndarray) -> np.ndarray:
    """Deterministic majority over exact values.

    Returns the most frequent value; ties and empty input fall back to the
    lexicographically smallest byte representation among the most frequent
    (a fixed deterministic choice, as the OM proof requires), or ``default``
    when no values are given.
    """
    if not values:
        return np.asarray(default, dtype=float).copy()
    counts: Dict[bytes, int] = {}
    samples: Dict[bytes, np.ndarray] = {}
    for v in values:
        key = _value_key(v)
        counts[key] = counts.get(key, 0) + 1
        samples.setdefault(key, np.asarray(v, dtype=float))
    best_count = max(counts.values())
    winners = sorted(k for k, c in counts.items() if c == best_count)
    return samples[winners[0]].copy()


def byzantine_broadcast(
    n: int,
    commander: int,
    value: np.ndarray,
    traitors: Sequence[int],
    rounds: Optional[int] = None,
    adversary: Optional[BroadcastAdversary] = None,
    rng: Optional[np.random.Generator] = None,
    stats: Optional[BroadcastStats] = None,
) -> Dict[int, np.ndarray]:
    """Run OM(m) and return each non-commander node's decided value.

    ``rounds`` defaults to ``len(traitors)`` (the classic OM(f)); the
    guarantees IC1/IC2 hold whenever ``n > 3 * rounds`` and at most
    ``rounds`` nodes are traitors.  The returned dict covers *all*
    lieutenants — callers should only rely on honest entries.
    """
    if n < 2:
        raise ValueError("broadcast needs at least two nodes")
    if not 0 <= commander < n:
        raise ValueError("commander id out of range")
    traitor_set = frozenset(int(t) for t in traitors)
    if any(t < 0 or t >= n for t in traitor_set):
        raise ValueError("traitor id out of range")
    m = len(traitor_set) if rounds is None else int(rounds)
    if m < 0:
        raise ValueError("rounds must be non-negative")
    if n <= 3 * m and len(traitor_set) > 0:
        # OM is still *runnable* below the n > 3m threshold; guarantees lapse.
        # We permit it so tests can demonstrate the impossibility region.
        pass
    adversary = adversary or EquivocatingAdversary()
    rng = rng or np.random.default_rng(0)
    base = np.asarray(value, dtype=float)
    default = np.zeros_like(base)
    lieutenants = [i for i in range(n) if i != commander]
    return _oral_messages(
        commander,
        lieutenants,
        base,
        m,
        (),
        traitor_set,
        adversary,
        rng,
        default,
        stats,
    )


def _oral_messages(
    commander: int,
    lieutenants: List[int],
    value: np.ndarray,
    m: int,
    path: Tuple[int, ...],
    traitors: frozenset,
    adversary: BroadcastAdversary,
    rng: np.random.Generator,
    default: np.ndarray,
    stats: Optional[BroadcastStats] = None,
) -> Dict[int, np.ndarray]:
    """Recursive OM(m): the value each lieutenant decides."""
    received: Dict[int, np.ndarray] = {}
    for i in lieutenants:
        if commander in traitors:
            received[i] = adversary.forge(commander, i, path, value, rng)
        else:
            received[i] = np.asarray(value, dtype=float)
    if stats is not None:
        stats.messages += len(lieutenants)
    if m == 0:
        return received

    relayed: Dict[int, Dict[int, np.ndarray]] = {}
    for j in lieutenants:
        others = [i for i in lieutenants if i != j]
        if not others:
            continue
        relayed[j] = _oral_messages(
            j,
            others,
            received[j],
            m - 1,
            path + (commander,),
            traitors,
            adversary,
            rng,
            default,
            stats,
        )

    decided: Dict[int, np.ndarray] = {}
    for i in lieutenants:
        votes = [received[i]]
        votes.extend(
            relayed[j][i] for j in lieutenants if j != i and j in relayed
        )
        decided[i] = majority_value(votes, default)
    return decided
