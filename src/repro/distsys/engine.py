"""The protocol core shared by every execution engine.

All of the repository's engines — the per-trial server simulator, the
batched lockstep sweep engine, the peer-to-peer replica simulator and the
decentralized graph engine — execute the *same* synchronous protocol round:

1. **observe** — honest participants evaluate their local gradients at the
   round's estimate(s);
2. **fabricate** — the Byzantine adversary replaces the compromised
   participants' messages (and, where no broadcast primitive is in force,
   may equivocate per edge);
3. **aggregate** — a gradient-filter condenses each decision maker's view
   into one update direction;
4. **project** — the projected gradient step moves the estimate(s).

:class:`ProtocolEngine` owns that loop as a template method; each engine is
a thin configuration supplying the four stage hooks.  The module also
centralizes the engines' input validation: duplicate/out-of-range faulty
ids and non-finite initial estimates fail loudly in every engine, and
:func:`validate_fault_count` guards the engines that *declare* a tolerance
``f`` separately from their fault set (the server simulator; batched
trials carry no declared ``f`` — their fault count is the ground truth).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ProtocolRound",
    "ProtocolEngine",
    "validate_faulty_ids",
    "validate_fault_count",
    "validate_initial_estimate",
]


# -- shared input validation ---------------------------------------------------

def validate_faulty_ids(faulty_ids: Sequence[int], n: int) -> Tuple[int, ...]:
    """Normalize a faulty-id collection to a sorted tuple, loudly.

    Rejects duplicate ids (historically silently de-duplicated, masking
    misconfigured sweeps) and ids outside ``range(n)``.
    """
    ids = [int(i) for i in faulty_ids]
    seen: set = set()
    duplicates = sorted({i for i in ids if i in seen or seen.add(i)})
    if duplicates:
        raise ValueError(f"duplicate faulty ids {duplicates}")
    unknown = sorted(i for i in ids if not 0 <= i < n)
    if unknown:
        raise ValueError(f"faulty ids {unknown} out of range for n={n}")
    return tuple(sorted(ids))


def validate_fault_count(f: int, n: int, n_faulty: int) -> int:
    """Check the declared tolerance ``f`` against the actual fault count.

    The paper treats ``f`` as a known system parameter: the server must
    tolerate *up to* ``f`` faults, so a system declaring ``f`` while hosting
    more than ``f`` Byzantine agents is a silent lie — every guarantee is
    void while the run still "works".  Requires ``0 <= f < n`` and
    ``n_faulty <= f``.
    """
    f = int(f)
    if not 0 <= f < n:
        raise ValueError(f"need 0 <= f < n, got n={n}, f={f}")
    if n_faulty > f:
        raise ValueError(
            f"{n_faulty} Byzantine agents exceed the declared tolerance f={f}"
        )
    return f


def validate_initial_estimate(
    initial_estimate: Sequence[float], dim: Optional[int] = None
) -> np.ndarray:
    """Coerce the initial estimate to a finite 1-D float vector."""
    arr = np.asarray(initial_estimate, dtype=float)
    if arr.ndim != 1:
        raise ValueError(
            f"initial estimate must be a 1-D vector, got shape {arr.shape}"
        )
    if dim is not None and arr.shape != (dim,):
        raise ValueError(
            f"initial estimate must have shape ({dim},), got {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("initial estimate contains non-finite entries")
    return arr


# -- the protocol round --------------------------------------------------------

@dataclass
class ProtocolRound:
    """Mutable state threaded through one observe→fabricate→aggregate→project
    round.

    Engines populate the slots they need: the per-trial server engine keeps a
    gradient *dict* keyed by agent id, the batch engines keep ``(S, n, d)``
    tensors, and the peer-to-peer engine additionally records each replica's
    post-broadcast ``views``.  ``extras`` carries engine-specific context
    (e.g. the live Byzantine agents of the round).
    """

    iteration: int
    estimate: Optional[np.ndarray] = None     # shared estimate x_t (server/P2P)
    gradients: Any = None                     # observed→delivered messages
    views: Any = None                         # per-receiver delivery (P2P)
    aggregates: Any = None                    # filter output(s)
    eliminated: List[int] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)


class ProtocolEngine(abc.ABC):
    """Template method owning the canonical synchronous protocol loop.

    Subclasses implement the four stage hooks; the base class owns the round
    ordering, the run loop, and the (optional) per-run recording hooks used
    by trace-producing engines.
    """

    #: current iteration index; engines mirroring external state (e.g. the
    #: server's counter) may override this as a property.
    iteration: int = 0

    # -- stage hooks ------------------------------------------------------
    @abc.abstractmethod
    def observe(self) -> ProtocolRound:
        """Collect the honest participants' gradients for this round."""

    @abc.abstractmethod
    def fabricate(self, round: ProtocolRound) -> None:
        """Let the Byzantine adversary replace/deliver compromised messages."""

    @abc.abstractmethod
    def aggregate(self, round: ProtocolRound) -> None:
        """Apply the gradient-filter(s) to each decision maker's view."""

    @abc.abstractmethod
    def project(self, round: ProtocolRound) -> Any:
        """Apply the projected update; returns the engine's step result."""

    # -- the loop ---------------------------------------------------------
    def step(self) -> Any:
        """Run one full protocol round through the four stages."""
        round = self.observe()
        self.fabricate(round)
        self.aggregate(round)
        return self.project(round)

    def run(self, iterations: int) -> Any:
        """Run ``iterations`` rounds; returns the engine's run result."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self._begin_run(iterations)
        for _ in range(iterations):
            self._record_step(self.step())
        return self._run_result()

    # -- per-run recording hooks (trace-producing engines override) -------
    def _begin_run(self, iterations: int) -> None:
        """Allocate per-run recording state (default: none)."""

    def _record_step(self, result: Any) -> None:
        """Record one step's result during :meth:`run` (default: none)."""

    def _run_result(self) -> Any:
        """The value :meth:`run` returns (default: ``None``)."""
        return None
