"""The protocol core shared by every execution engine.

All of the repository's engines — the per-trial server simulator, the
batched lockstep sweep engine, the peer-to-peer replica simulator and the
decentralized graph engine — execute the *same* synchronous protocol round:

1. **observe** — honest participants evaluate their local gradients at the
   round's estimate(s);
2. **fabricate** — the Byzantine adversary replaces the compromised
   participants' messages (and, where no broadcast primitive is in force,
   may equivocate per edge);
3. **aggregate** — a gradient-filter condenses each decision maker's view
   into one update direction;
4. **project** — the projected gradient step moves the estimate(s).

:class:`ProtocolEngine` owns that loop as a template method; each engine is
a thin configuration supplying the four stage hooks.  The module also
centralizes the engines' input validation: duplicate/out-of-range faulty
ids and non-finite initial estimates fail loudly in every engine, and
:func:`validate_fault_count` guards the engines that *declare* a tolerance
``f`` separately from their fault set (the server simulator; batched
trials carry no declared ``f`` — their fault count is the ground truth).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..telemetry.recorder import NULL_RECORDER, Recorder

__all__ = [
    "ProtocolRound",
    "ProtocolEngine",
    "validate_faulty_ids",
    "validate_fault_count",
    "validate_initial_estimate",
    "validate_attack_plan",
]


# -- shared input validation ---------------------------------------------------

def validate_faulty_ids(faulty_ids: Sequence[int], n: int) -> Tuple[int, ...]:
    """Normalize a faulty-id collection to a sorted tuple, loudly.

    Rejects duplicate ids (historically silently de-duplicated, masking
    misconfigured sweeps) and ids outside ``range(n)``.
    """
    ids = [int(i) for i in faulty_ids]
    seen: set = set()
    duplicates = sorted({i for i in ids if i in seen or seen.add(i)})
    if duplicates:
        raise ValueError(f"duplicate faulty ids {duplicates}")
    unknown = sorted(i for i in ids if not 0 <= i < n)
    if unknown:
        raise ValueError(f"faulty ids {unknown} out of range for n={n}")
    return tuple(sorted(ids))


def validate_fault_count(
    f: int, n: int, n_faulty: int, n_received: Optional[int] = None
) -> int:
    """Check the declared tolerance ``f`` against the actual fault count.

    The paper treats ``f`` as a known system parameter: the server must
    tolerate *up to* ``f`` faults, so a system declaring ``f`` while hosting
    more than ``f`` Byzantine agents is a silent lie — every guarantee is
    void while the run still "works".  Requires ``0 <= f < n`` and
    ``n_faulty <= f``.

    ``n_received`` makes partial attendance explicit: the synchronous
    engines always receive ``n`` messages, but an asynchronous round may
    aggregate fewer.  When given, a round whose attendance cannot outvote
    the declared tolerance (``n_received <= f``) is rejected — up to ``f``
    of the received messages may be fabricated, so such a round has no
    honest majority of inputs and must be stalled or shrunk, never
    silently aggregated as if attendance were full.
    """
    f = int(f)
    if not 0 <= f < n:
        raise ValueError(f"need 0 <= f < n, got n={n}, f={f}")
    if n_faulty > f:
        raise ValueError(
            f"{n_faulty} Byzantine agents exceed the declared tolerance f={f}"
        )
    if n_received is not None:
        n_received = int(n_received)
        if not 0 <= n_received <= n:
            raise ValueError(
                f"received {n_received} messages in a system of {n} agents"
            )
        if n_received <= f:
            raise ValueError(
                f"only {n_received} of {n} agents attended; a round tolerating "
                f"f={f} faults needs at least f+1 = {f + 1} messages"
            )
    return f


def validate_initial_estimate(
    initial_estimate: Sequence[float], dim: Optional[int] = None
) -> np.ndarray:
    """Coerce the initial estimate to a finite 1-D float vector."""
    arr = np.asarray(initial_estimate, dtype=float)
    if arr.ndim != 1:
        raise ValueError(
            f"initial estimate must be a 1-D vector, got shape {arr.shape}"
        )
    if dim is not None and arr.shape != (dim,):
        raise ValueError(
            f"initial estimate must have shape ({dim},), got {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("initial estimate contains non-finite entries")
    return arr


def validate_attack_plan(
    attack,
    n_faulty: int,
    omniscient: Optional[bool] = None,
    full_attendance_engine: Optional[str] = None,
) -> bool:
    """Shared validation of an engine's attack configuration.

    Every engine runs the same three preconditions: faulty agents need an
    attack to speak for them; engines that cannot represent a missing
    message (named via ``full_attendance_engine``) must reject
    crash-capable attacks (``may_be_silent``) instead of silently
    fabricating for a crashed agent; and an attack requiring omniscient
    access cannot have it explicitly withheld.  Returns the resolved
    omniscience flag (defaulting to the attack's own requirement).
    """
    if n_faulty and attack is None:
        raise ValueError("faulty agents present but no attack given")
    if attack is None:
        return False
    if full_attendance_engine is not None and attack.may_be_silent:
        raise ValueError(
            f"attack {attack.name!r} models crash-style silence; the "
            f"{full_attendance_engine} runs full-attendance lockstep — "
            "use SynchronousSimulator or AsynchronousSimulator"
        )
    if omniscient is None:
        omniscient = bool(attack.requires_omniscience)
    if attack.requires_omniscience and not omniscient:
        raise ValueError(f"attack {attack.name!r} requires omniscient access")
    return bool(omniscient)


# -- the protocol round --------------------------------------------------------

@dataclass
class ProtocolRound:
    """Mutable state threaded through one observe→fabricate→aggregate→project
    round.

    Engines populate the slots they need: the per-trial server engine keeps a
    gradient *dict* keyed by agent id, the batch engines keep ``(S, n, d)``
    tensors, and the peer-to-peer engine additionally records each replica's
    post-broadcast ``views``.  ``extras`` carries engine-specific context
    (e.g. the live Byzantine agents of the round).
    """

    iteration: int
    estimate: Optional[np.ndarray] = None     # shared estimate x_t (server/P2P)
    gradients: Any = None                     # observed→delivered messages
    views: Any = None                         # per-receiver delivery (P2P)
    aggregates: Any = None                    # filter output(s)
    eliminated: List[int] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)


class ProtocolEngine(abc.ABC):
    """Template method owning the canonical synchronous protocol loop.

    Subclasses implement the four stage hooks; the base class owns the round
    ordering, the run loop, and the (optional) per-run recording hooks used
    by trace-producing engines.
    """

    #: current iteration index; engines mirroring external state (e.g. the
    #: server's counter) may override this as a property.
    iteration: int = 0

    #: the engine's telemetry recorder.  The class-level default is the
    #: shared :data:`~repro.telemetry.recorder.NULL_RECORDER`, so every
    #: engine — including ones whose constructors predate telemetry — is
    #: born with recording off and the hot loop pays one attribute check
    #: per round (the overhead ``BENCH_telemetry.json`` gates).
    telemetry: Recorder = NULL_RECORDER

    def set_recorder(self, recorder: Optional[Recorder]) -> "ProtocolEngine":
        """Attach a telemetry recorder (``None`` restores the null one).

        Recording is strictly observational: the engine's RNG streams,
        estimates and traces are untouched, so trajectories are
        bit-identical with recording on or off (the determinism
        invariant pinned by ``tests/distsys/test_telemetry_determinism``).
        """
        self.telemetry = recorder if recorder is not None else NULL_RECORDER
        return self

    # -- stage hooks ------------------------------------------------------
    @abc.abstractmethod
    def observe(self) -> ProtocolRound:
        """Collect the honest participants' gradients for this round."""

    @abc.abstractmethod
    def fabricate(self, round: ProtocolRound) -> None:
        """Let the Byzantine adversary replace/deliver compromised messages."""

    @abc.abstractmethod
    def aggregate(self, round: ProtocolRound) -> None:
        """Apply the gradient-filter(s) to each decision maker's view."""

    @abc.abstractmethod
    def project(self, round: ProtocolRound) -> Any:
        """Apply the projected update; returns the engine's step result."""

    # -- the loop ---------------------------------------------------------
    def step(self) -> Any:
        """Run one full protocol round through the four stages."""
        if self.telemetry.enabled:
            return self._step_recorded(self.telemetry)
        round = self.observe()
        self.fabricate(round)
        self.aggregate(round)
        return self.project(round)

    def _step_recorded(self, recorder: Recorder) -> Any:
        """One round with per-stage wall-time recording.

        Only reached when a live recorder is attached; the disabled path
        in :meth:`step` stays branch-plus-dispatch identical to the
        pre-telemetry loop.
        """
        clock = recorder.clock
        t0 = clock()
        round = self.observe()
        t1 = clock()
        self.fabricate(round)
        t2 = clock()
        self.aggregate(round)
        t3 = clock()
        result = self.project(round)
        recorder.stage_times(
            t1 - t0, t2 - t1, t3 - t2, clock() - t3, self.iteration
        )
        self._record_round_metrics(recorder, round)
        return result

    def _record_round_metrics(
        self, recorder: Recorder, round: ProtocolRound
    ) -> None:
        """Engine-specific per-round counters (stalls, queue depths, ...).

        Called only when recording is on; the default records nothing.
        """

    def run(self, iterations: int) -> Any:
        """Run ``iterations`` rounds; returns the engine's run result."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self._begin_run(iterations)
        with self.telemetry.span(
            "engine_run",
            engine=type(self).__name__,
            rounds=int(iterations),
        ):
            for _ in range(iterations):
                self._record_step(self.step())
        return self._run_result()

    # -- per-run recording hooks (trace-producing engines override) -------
    def _begin_run(self, iterations: int) -> None:
        """Allocate per-run recording state (default: none)."""

    def _record_step(self, result: Any) -> None:
        """Record one step's result during :meth:`run` (default: none)."""

    def _run_result(self) -> Any:
        """The value :meth:`run` returns (default: ``None``)."""
        return None
