"""Event-driven asynchronous execution with bounded staleness.

Every other engine in :mod:`repro.distsys` runs the paper's lock-step
synchronous round.  This engine drops that assumption: messages take
rounds to arrive, get lost, straggle, and agents crash (and recover, and
turn Byzantine) mid-run — the regimes described by
:mod:`repro.distsys.faults`.  The server no longer waits: each round it
aggregates *whichever gradients have arrived*, evaluated at the stale
iterates their senders saw.

The round is still the observe → fabricate → aggregate → project template
of :class:`~repro.distsys.engine.ProtocolEngine`:

* **observe** — dispatch this round's messages through the composed
  :class:`~repro.distsys.faults.NetworkCondition` pipeline (delays, drops,
  straggler slowdowns), deliver everything due, and evaluate the usable
  (staleness ≤ τ) messages' gradients at their *view* iterates.  The
  evaluation is one :meth:`~repro.functions.batched.CostStack.gradients_each`
  call over the per-agent view points, so the stale-gradient hot path
  stays loop-free and batched over agents.
* **fabricate** — currently-compromised agents with a usable message get
  their content rewritten by the attack, through a timeline-aware
  :class:`~repro.attacks.base.AttackContext` (per-message view rounds and
  compromise rounds).  The adversary rewrites at *delivery* time — the
  worst case — while honest messages are genuinely stale.
* **aggregate** — full attendance takes the server's standard path
  (bit-for-bit the synchronous engine); otherwise the declared
  **missing-value policy** applies: ``"shrink"`` rebuilds the
  name-registered filter for this round's attendance with the step-S1
  ``n``/``f`` bookkeeping (missing treated as crashed), ``"masked"``
  keeps the declared filter and runs the masked kernels of
  :mod:`repro.aggregators.masked` under a validity mask (missing treated
  as honest-but-slow, so the full tolerance ``f`` is retained).  A round
  whose attendance cannot support the policy *stalls*: the estimate holds
  and the stall is recorded.
* **project** — the equation-(21) update through the same
  :class:`~repro.distsys.server.RobustServer` as the synchronous engine.

Unlike step S1, nobody is ever eliminated: in an asynchronous system
silence is not proof of crash, only of lateness.

**Degenerate configuration.**  With no conditions, no fault schedule, no
drops and any staleness bound, every message is fresh and delivered in its
own round, and the engine pins **bit-for-bit** to
:class:`~repro.distsys.simulator.SynchronousSimulator` (DESIGN invariant
4; asserted by ``tests/distsys/test_asynchronous.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.masked import (
    aggregator_label,
    masked_kernel_for,
    masked_min_attendance,
)
from ..aggregators.registry import make_aggregator
from ..attacks.base import AttackContext, ByzantineAttack
from ..functions.base import CostFunction
from ..functions.batched import CostStack, stack_costs
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import current_recorder
from .engine import (
    ProtocolEngine,
    ProtocolRound,
    validate_attack_plan,
    validate_fault_count,
    validate_faulty_ids,
    validate_initial_estimate,
)
from .faults import (
    FaultSchedule,
    NetworkCondition,
    network_streams,
    sample_network_run,
)
from .health import (
    AGGREGATOR_REFUSED,
    DEFAULT_DIVERGENCE_THRESHOLD,
    QuarantineError,
    RunGuard,
    aggregation_round,
)
from .server import RobustServer

__all__ = [
    "AsyncIterationRecord",
    "AsynchronousTrace",
    "AsynchronousSimulator",
    "run_asynchronous",
]

#: The two declared missing-value policies.
MISSING_POLICIES = ("shrink", "masked")


@dataclass
class AsyncIterationRecord:
    """Everything observed during one asynchronous round.

    ``aggregate`` is ``None`` for a *stalled* round (attendance could not
    support the missing-value policy; the estimate held).  ``staleness``
    maps each aggregated agent to ``t - view_round`` of its message.
    """

    iteration: int
    estimate: np.ndarray
    gradients: Dict[int, np.ndarray]
    aggregate: Optional[np.ndarray]
    step_size: float
    next_estimate: np.ndarray
    missing: Tuple[int, ...] = ()
    staleness: Dict[int, int] = field(default_factory=dict)
    delivered: int = 0
    #: True on every round at or after the run's quarantine (the estimate
    #: is held); distinct from a stall, which is a healthy hold.
    quarantined: bool = False


@dataclass
class AsynchronousTrace:
    """Full history of an asynchronous execution."""

    records: List[AsyncIterationRecord] = field(default_factory=list)
    #: ``{"round": int, "reason": str}`` when the run was quarantined —
    #: the reason is one of :data:`repro.health.QUARANTINE_REASONS`.
    quarantine: Optional[Dict[str, object]] = None

    def append(self, record: AsyncIterationRecord) -> None:
        """Add the record of one completed round."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def final_estimate(self) -> np.ndarray:
        """The last computed iterate ``x_T``."""
        if not self.records:
            raise ValueError("trace is empty")
        return self.records[-1].next_estimate

    def estimates(self, include_final: bool = True) -> np.ndarray:
        """Row-stacked iterates ``x_0, x_1, ..., x_T``."""
        if not self.records:
            raise ValueError("trace is empty")
        points = [r.estimate for r in self.records]
        if include_final:
            points.append(self.records[-1].next_estimate)
        return np.vstack(points)

    def distances_to(self, target: Sequence[float]) -> np.ndarray:
        """Series ``||x_t - target||`` — the paper's *distance* curves."""
        tgt = np.asarray(target, dtype=float)
        return np.linalg.norm(self.estimates() - tgt, axis=1)

    def missing_fraction(self) -> np.ndarray:
        """Per-round fraction of agents with no usable message."""
        return np.array(
            [
                len(r.missing) / (len(r.missing) + len(r.gradients))
                for r in self.records
            ]
        )

    def staleness_profile(self) -> np.ndarray:
        """Per-round mean staleness of the aggregated messages.

        Stalled rounds (nothing aggregated) contribute ``nan`` — reduce
        with ``np.nanmean``.
        """
        out = np.full(len(self.records), np.nan)
        for idx, record in enumerate(self.records):
            if record.staleness:
                out[idx] = float(np.mean(list(record.staleness.values())))
        return out

    def stalled_rounds(self) -> int:
        """Number of rounds where the estimate held for lack of messages."""
        return sum(1 for r in self.records if r.aggregate is None)


class AsynchronousSimulator(ProtocolEngine):
    """Bounded-staleness robust DGD under composable network faults.

    Args:
        costs: the agents' local costs — a sequence (stacked through
            :func:`~repro.functions.batched.stack_costs`) or a prebuilt
            :class:`~repro.functions.batched.CostStack`.
        aggregator: the gradient-filter; the ``"shrink"`` missing-value
            policy rebuilds it per-attendance and therefore needs the
            registry *name*, not an instance.
        f: declared fault tolerance.  Every agent the run ever faults —
            Byzantine from the start (``faulty_ids``), compromised later,
            or crashed by the schedule — counts against it; stragglers
            and lossy links are network conditions, not agent faults, and
            do not.
        faulty_ids: agents compromised from round 0.
        conditions: :class:`~repro.distsys.faults.NetworkCondition`
            pipeline applied, in order, to every round's dispatches.
        fault_schedule: crash / recover / Byzantine-from-round timeline.
            Crash events may declare ``recovery="warm"``: the recovering
            agent's first dispatch is then evaluated at its persisted
            pre-crash view instead of the current broadcast estimate
            (``"reset"``, the default), so a long outage's first
            contribution may itself be too stale to use.
        staleness_bound: τ — a delivered message is usable while
            ``t - view_round <= τ``.  τ = 0 accepts only fresh messages
            (the synchronous limit on a zero-delay network).
        missing_policy: ``"shrink"`` or ``"masked"`` (see module docs).
        seed: seeds both the attack stream (identically to the
            synchronous engine) and a *separate* network stream, so
            adding conditions never perturbs an attack's fabrications.
    """

    def __init__(
        self,
        costs: Union[Sequence[CostFunction], CostStack],
        aggregator: Union[GradientAggregator, str],
        constraint: ConvexSet,
        schedule: StepSchedule,
        f: int,
        initial_estimate: Sequence[float],
        attack: Optional[ByzantineAttack] = None,
        faulty_ids: Sequence[int] = (),
        conditions: Sequence[NetworkCondition] = (),
        fault_schedule: Optional[FaultSchedule] = None,
        staleness_bound: int = 0,
        missing_policy: str = "shrink",
        omniscient_attack: Optional[bool] = None,
        seed: int = 0,
        divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    ):
        self.stack: CostStack = (
            costs if isinstance(costs, CostStack) else stack_costs(list(costs))
        )
        self.n = self.stack.n
        self.d = self.stack.dim

        self.fault_schedule = (fault_schedule or FaultSchedule()).validate(self.n)
        #: warm-recovery dispatch views: (agent, recovery round) -> view.
        self._warm_views = self.fault_schedule.warm_restart_views()
        base_faulty = validate_faulty_ids(faulty_ids, self.n)
        since = self.fault_schedule.compromised_since()
        for agent in base_faulty:
            since[agent] = 0  # compromised from the start wins
        self.compromised_since: Dict[int, int] = since
        self.byzantine_ids: Tuple[int, ...] = tuple(sorted(since))

        fault_agents = set(self.byzantine_ids) | set(
            e.agent for e in self.fault_schedule.events if e.kind == "crash"
        )
        self.f = validate_fault_count(f, self.n, len(fault_agents))
        self.attack = attack
        self.omniscient_attack = validate_attack_plan(
            attack, len(self.byzantine_ids), omniscient_attack
        )

        if staleness_bound < 0:
            raise ValueError("staleness bound must be non-negative")
        self.staleness_bound = int(staleness_bound)
        if missing_policy not in MISSING_POLICIES:
            raise ValueError(
                f"unknown missing-value policy {missing_policy!r}; "
                f"known: {', '.join(MISSING_POLICIES)}"
            )
        self.missing_policy = missing_policy

        # The attack stream is seeded exactly like the synchronous
        # engine's; the network streams are separate, tagged, and one per
        # condition — each pipeline position owns its generator so chunked
        # horizon extension is bit-identical to a whole-run pre-sample.
        self.rng = np.random.default_rng(seed)
        self.conditions: Tuple[NetworkCondition, ...] = tuple(conditions)
        self.net_rngs = network_streams(seed, len(self.conditions))

        self._aggregator_name: Optional[str] = (
            aggregator if isinstance(aggregator, str) else None
        )
        self.server = RobustServer(
            initial_estimate=validate_initial_estimate(
                initial_estimate, dim=self.d
            ),
            aggregator=aggregator,
            constraint=constraint,
            schedule=schedule,
            n=self.n,
            f=self.f,
        )
        self._masked_kernel = None
        self._masked_min = 1
        if missing_policy == "masked":
            kernel = masked_kernel_for(self.server.aggregator)
            if kernel is None:
                raise ValueError(
                    f"aggregator {aggregator_label(self.server.aggregator)} "
                    "has no masked kernel; use missing_policy='shrink'"
                )
            self._masked_kernel = kernel
            # The kernel's own floor, and never fewer messages than can
            # outvote the declared tolerance: a round whose attendance is
            # <= f could consist entirely of fabrications and must stall,
            # not aggregate (the same contract validate_fault_count's
            # n_received check enforces on the shrink path).
            self._masked_min = max(
                masked_min_attendance(self.server.aggregator), self.f + 1
            )

        for condition, net_rng in zip(self.conditions, self.net_rngs):
            condition.begin_run(self.n, net_rng)

        # Pre-sampled network/fault tensors, extended in chunks: row ``t``
        # holds round ``t``'s per-agent delays, drop mask and crash mask.
        # ``run`` pre-samples its whole horizon in one vectorized chunk;
        # stand-alone ``step`` calls extend one round at a time, which
        # consumes the network stream exactly like the historical
        # per-round sampling.
        self._net_horizon = 0
        self._net_delays = np.zeros((0, self.n), dtype=int)
        self._net_dropped = np.zeros((0, self.n), dtype=bool)
        self._net_crashed = np.zeros((0, self.n), dtype=bool)

        #: iterate history x_0 .. x_t — the views stale evaluations index.
        self._history: List[np.ndarray] = [self.server.estimate.copy()]
        #: freshest delivered view round per agent (-1: nothing yet).
        self._freshest = np.full(self.n, -1, dtype=int)
        #: arrival round -> [(agent, view round)] for in-flight messages.
        self._in_flight: Dict[int, List[Tuple[int, int]]] = {}
        self._shrunk_cache: Dict[Tuple[int, int], GradientAggregator] = {}
        self.trace = AsynchronousTrace()
        self.guard = RunGuard(divergence_threshold)

    @property
    def iteration(self) -> int:
        """Current round index (mirrors the server's counter)."""
        return self.server.iteration

    @property
    def estimate(self) -> np.ndarray:
        """The server's current estimate."""
        return self.server.estimate.copy()

    def _is_compromised(self, agent: int, iteration: int) -> bool:
        since = self.compromised_since.get(agent)
        return since is not None and iteration >= since

    def _ensure_network(self, horizon: int) -> None:
        """Extend the pre-sampled network/fault tensors to cover ``horizon``.

        The conditions sample for all n agents every round — the network
        stream's consumption never depends on the fault timeline.
        """
        if horizon <= self._net_horizon:
            return
        chunk = horizon - self._net_horizon
        delays, dropped = sample_network_run(
            self.conditions, self.net_rngs, self.n, chunk,
            start=self._net_horizon,
        )
        active = self.fault_schedule.sample_run(
            None, self.n, chunk, start=self._net_horizon
        )
        self._net_delays = np.concatenate([self._net_delays, delays])
        self._net_dropped = np.concatenate([self._net_dropped, dropped])
        self._net_crashed = np.concatenate([self._net_crashed, ~active])
        self._net_horizon = horizon

    def _begin_run(self, iterations: int) -> None:
        # One vectorized pre-sampling chunk covers the whole run — the
        # per-round per-link Python RNG calls disappear from the loop.
        self._ensure_network(self.server.iteration + iterations)

    def _note_quarantine(self, round_index: int, reason: str) -> None:
        """Record a fresh quarantine on the trace and the telemetry stream."""
        self.trace.quarantine = self.guard.summary()
        if self.telemetry.enabled:
            self.telemetry.emit(
                "trial_quarantined",
                round=int(round_index),
                reason=reason,
                engine=type(self).__name__,
            )

    # -- protocol stages --------------------------------------------------
    def observe(self) -> ProtocolRound:
        """Dispatch, deliver, and evaluate this round's usable messages."""
        t = self.server.iteration
        x_t = self.server.estimate.copy()
        if self.guard.quarantined:
            # Frozen run: no dispatches, no deliveries, no RNG consumption
            # — the round only appends a held record to the trace.
            return ProtocolRound(
                iteration=t,
                estimate=x_t,
                gradients={},
                extras={
                    "frozen": True,
                    "missing": tuple(range(self.n)),
                    "views": {},
                    "delivered": 0,
                },
            )

        # Round-t dispatch conditions come from the pre-sampled tensors
        # (extended on demand when stepping past the run's horizon).
        self._ensure_network(t + 1)
        delays = self._net_delays[t]
        dropped = self._net_dropped[t]
        crashed = self._net_crashed[t]
        for agent in range(self.n):
            if crashed[agent] or dropped[agent]:
                continue
            if (
                self.attack is not None
                and self._is_compromised(agent, t)
                and self.attack.silences(agent, t)
            ):
                continue
            # A warm-restarting agent's recovery-round dispatch carries its
            # persisted pre-crash view; everyone else sends a fresh view.
            view = self._warm_views.get((agent, t), t)
            arrival = t + int(delays[agent])
            self._in_flight.setdefault(arrival, []).append((agent, view))

        # Deliver everything due this round (zero delay arrives in-round,
        # which is exactly the synchronous rendezvous).
        delivered = self._in_flight.pop(t, [])
        for agent, view in delivered:
            if view > self._freshest[agent]:
                self._freshest[agent] = view

        usable = (self._freshest >= 0) & (
            t - self._freshest <= self.staleness_bound
        )

        # The stale-gradient hot path: every agent's gradient at its own
        # view iterate, one batched gradients_each call.
        points = np.stack(
            [
                self._history[self._freshest[agent]] if usable[agent] else x_t
                for agent in range(self.n)
            ]
        )[None]
        all_gradients = self.stack.gradients_each(points)[0]

        gradients: Dict[int, np.ndarray] = {}
        live_byzantine: List[int] = []
        views: Dict[int, int] = {}
        for agent in range(self.n):
            if not usable[agent]:
                continue
            views[agent] = int(self._freshest[agent])
            if self._is_compromised(agent, t):
                live_byzantine.append(agent)
            else:
                gradients[agent] = all_gradients[agent]
        missing = tuple(int(i) for i in np.flatnonzero(~usable))
        return ProtocolRound(
            iteration=t,
            estimate=x_t,
            gradients=gradients,
            extras={
                "all_gradients": all_gradients,
                "live_byzantine": live_byzantine,
                "views": views,
                "missing": missing,
                "delivered": len(delivered),
            },
        )

    def fabricate(self, round: ProtocolRound) -> None:
        """Rewrite the usable messages of currently-compromised agents."""
        if round.extras.get("frozen"):
            return
        live_byzantine: List[int] = round.extras["live_byzantine"]
        if not live_byzantine:
            return
        all_gradients = round.extras["all_gradients"]
        views: Dict[int, int] = round.extras["views"]
        faulty_ids = sorted(live_byzantine)
        context = AttackContext(
            iteration=round.iteration,
            estimate=round.estimate,
            faulty_ids=faulty_ids,
            true_gradients={i: all_gradients[i] for i in faulty_ids},
            honest_gradients=(
                dict(round.gradients) if self.omniscient_attack else None
            ),
            rng=self.rng,
            view_rounds={i: views[i] for i in faulty_ids},
            compromised_since={
                i: self.compromised_since[i] for i in faulty_ids
            },
        )
        fabricated = self.attack.fabricate(context)
        missing = set(faulty_ids) - set(fabricated)
        if missing:
            raise RuntimeError(
                f"attack produced no gradient for agents {sorted(missing)}"
            )
        for agent in faulty_ids:
            round.gradients[agent] = np.asarray(
                fabricated[agent], dtype=float
            )

    def aggregate(self, round: ProtocolRound) -> None:
        """Apply the filter — through the missing-value policy if short.

        A strict filter's typed refusal of non-finite input quarantines
        the run (reason ``aggregator_refused``) on every policy path; the
        estimate freezes at its pre-update value.
        """
        if round.extras.get("frozen"):
            round.aggregates = None
            return
        try:
            with aggregation_round(
                round.iteration, aggregator_label(self.server.aggregator)
            ):
                self._aggregate_policy(round)
        except QuarantineError:
            self.guard.quarantine(round.iteration, AGGREGATOR_REFUSED)
            self._note_quarantine(round.iteration, AGGREGATOR_REFUSED)
            round.extras["frozen"] = True
            round.aggregates = None

    def _aggregate_policy(self, round: ProtocolRound) -> None:
        """The policy dispatch of the aggregate stage (may refuse)."""
        received = round.gradients
        n_received = len(received)
        if n_received == self.n:
            # Full attendance: the synchronous engine's exact path.
            round.aggregates = self.server.filter_gradients(received)
            return
        if n_received == 0:
            round.aggregates = None  # stall: nothing arrived in time
            return
        if self.missing_policy == "masked":
            if n_received < self._masked_min:
                round.aggregates = None  # stall: cannot keep tolerating f
                return
            values = np.zeros((1, 1, self.n, self.d))
            mask = np.zeros((1, self.n), dtype=bool)
            for agent, gradient in received.items():
                values[0, 0, agent] = gradient
                mask[0, agent] = True
            round.aggregates = self._masked_kernel(values, mask)[0, 0]
            return
        # Shrink-n: rebuild the declared filter for this round's
        # attendance with step S1's bookkeeping (missing ~ crashed, so n
        # and f both shrink) — sound exactly when every missing agent
        # really is one of the f faulty, which is the policy's declared
        # belief; a missing *honest* agent costs tolerance the round
        # still spends on the attending adversary.
        if self._aggregator_name is None:
            raise RuntimeError(
                "the shrink-n missing-value policy rebuilds the filter by "
                "registry name; pass the aggregator as a string or use "
                "missing_policy='masked'"
            )
        n_missing = self.n - n_received
        f_round = max(0, self.f - n_missing)
        # Attendance must outvote the shrunk tolerance (explicit, never
        # assumed): who among the received is faulty is unknowable here,
        # so only the counts are checked.
        validate_fault_count(f_round, self.n, 0, n_received=n_received)
        key = (n_received, f_round)
        aggregator = self._shrunk_cache.get(key)
        if aggregator is None:
            aggregator = make_aggregator(
                self._aggregator_name, n_received, f_round
            )
            self._shrunk_cache[key] = aggregator
        stacked = np.vstack([received[i] for i in sorted(received)])
        round.aggregates = aggregator.aggregate(stacked)

    def project(self, round: ProtocolRound) -> AsyncIterationRecord:
        """Equation-(21) update (or a recorded stall); append the record.

        The pre-projection candidate is screened first: a non-finite or
        diverged candidate quarantines the run and the estimate is held,
        so garbage never reaches the projection.
        """
        t = round.iteration
        frozen = bool(round.extras.get("frozen"))
        if frozen or round.aggregates is None:
            self.server.hold()  # time passes; the estimate holds
        else:
            eta = self.server.schedule(t)
            candidate = round.estimate - eta * round.aggregates
            reason = self.guard.screen(t, candidate)
            if reason is None:
                self.server.descend(round.aggregates)
            else:
                self._note_quarantine(t, reason)
                frozen = True
                round.aggregates = None
                self.server.hold()
        next_estimate = self.server.estimate.copy()
        self._history.append(next_estimate)
        record = AsyncIterationRecord(
            iteration=t,
            estimate=round.estimate,
            gradients=round.gradients,
            aggregate=round.aggregates,
            step_size=self.server.schedule(t),
            next_estimate=next_estimate,
            missing=round.extras["missing"],
            staleness={
                agent: t - view
                for agent, view in round.extras["views"].items()
            },
            delivered=round.extras["delivered"],
            quarantined=frozen,
        )
        self.trace.append(record)
        return record

    # -- run --------------------------------------------------------------
    def _run_result(self) -> AsynchronousTrace:
        return self.trace

    def run(self, iterations: int) -> AsynchronousTrace:
        """Run ``iterations`` rounds and return the accumulated trace."""
        return super().run(iterations)


def run_asynchronous(
    costs: Union[Sequence[CostFunction], CostStack],
    faulty_ids: Sequence[int],
    aggregator: Union[GradientAggregator, str],
    attack: Optional[ByzantineAttack],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    conditions: Sequence[NetworkCondition] = (),
    fault_schedule: Optional[FaultSchedule] = None,
    staleness_bound: int = 0,
    missing_policy: str = "shrink",
    seed: int = 0,
    omniscient_attack: Optional[bool] = None,
    divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
) -> AsynchronousTrace:
    """Convenience wrapper mirroring :func:`~repro.distsys.simulator.run_dgd`.

    ``f`` is the ground truth: the number of distinct agents the run ever
    faults (initially Byzantine, compromised later, or crashed).
    """
    schedule_faults = fault_schedule or FaultSchedule()
    fault_agents = set(int(i) for i in faulty_ids) | set(
        schedule_faults.fault_agents()
    )
    simulator = AsynchronousSimulator(
        costs=costs,
        aggregator=aggregator,
        constraint=constraint,
        schedule=schedule,
        f=len(fault_agents),
        initial_estimate=initial_estimate,
        attack=attack,
        faulty_ids=faulty_ids,
        conditions=conditions,
        fault_schedule=schedule_faults,
        staleness_bound=staleness_bound,
        missing_policy=missing_policy,
        omniscient_attack=omniscient_attack,
        seed=seed,
        divergence_threshold=divergence_threshold,
    )
    # Convenience runners report to the ambient recorder: a no-op
    # with the default NULL_RECORDER, a live stream under the CLI's
    # --telemetry-out / the orchestrator's worker recorders.
    return simulator.set_recorder(current_recorder()).run(iterations)
