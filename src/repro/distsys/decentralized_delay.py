"""Delay-tolerant decentralized robust DGD: gossip over lossy, stale edges.

:class:`~repro.distsys.decentralized.DecentralizedSimulator` assumes every
edge of the communication graph delivers instantly every round.  This engine
drops that assumption and composes the graph engine with
:mod:`repro.distsys.faults`: each directed **edge** of the topology carries
its own delay/drop/straggler realization, agents mix and aggregate whatever
neighbor iterates *and* gradients arrived within a bounded staleness ``τ``,
and a :class:`~repro.distsys.faults.FaultSchedule` timeline crashes,
recovers and compromises agents mid-run.  It is the decentralized mirror of
the server-side asynchronous pair — the per-uplink conditions of
:class:`~repro.distsys.asynchronous.AsynchronousSimulator` become per-edge
conditions keyed on the ``(sender, receiver)`` edge list of
:meth:`~repro.distsys.topology.CommunicationTopology.directed_edges`.

Execution model, per round ``t``:

* **observe** — every agent evaluates its own gradient at its own iterate
  (one :meth:`~repro.functions.batched.CostStack.gradients_each` einsum,
  appended to a gradient history).  Live agents dispatch that
  (iterate, gradient) message on every out-edge; the pre-sampled per-edge
  network realization decides each copy's delay and loss.  Deliveries
  update each edge's *last-delivered view round*; a delivered message is
  usable while ``t - view ≤ τ``.  Both payload channels are stored
  factored — per-edge view rounds gathered against the ``(T + 1, S, n, d)``
  iterate trajectory and the matching gradient history — so the queue
  never copies payloads (DESIGN: per-edge padded-queue invariants).
* **fabricate** — attacks rewrite at *delivery* time: every usable slot
  whose sender is currently compromised carries the attack's round-``t``
  per-edge fabrication
  (:meth:`~repro.attacks.base.ByzantineAttack.fabricate_edges`, same
  context and stream consumption as the synchronous graph engine), so the
  adversary is never handicapped by its own stale sends.
* **aggregate** — full-attendance rounds take the synchronous engine's
  exact kernels (folded or masked — the bit-for-bit degenerate path).
  Partial rounds apply the declared **missing-neighbor policy**, the
  graph analogue of the asynchronous missing-value contract: ``"masked"``
  keeps every filter's declared tolerance over the valid slots,
  ``"shrink"`` lowers each agent's tolerance by its neighborhood's
  missing count — both through the tolerance-parameterized masked kernels
  of :mod:`repro.aggregators.masked`, with the consensus-mix trim treated
  the same way.  An agent whose attendance cannot support its policy (or
  whose receiver crashed) **stalls**: it holds its iterate and the trace
  records it.
* **project** — the projected update applies to the non-stalled agents;
  crashed agents hold their iterate and naturally resume from it on
  recovery (a decentralized agent's local state *is* its iterate, so
  recovery is always a warm restart here).

**Degenerate configuration.**  With ``τ = 0``, no conditions and no fault
schedule every edge is fresh every round and the engine pins
**bit-for-bit** to :class:`~repro.distsys.decentralized.DecentralizedSimulator`
across aggregator × attack × topology × seed
(``tests/distsys/test_decentralized_delay.py``,
``benchmarks/test_bench_decentralized_delay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.masked import (
    aggregator_label,
    masked_min_attendance_for_tolerance,
    masked_partial_kernel_for,
    masked_trimmed_mean_batch,
)
from ..attacks.base import DecentralizedAttackContext
from ..functions.base import CostFunction
from ..functions.batched import CostStack, stack_costs
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import current_recorder
from .asynchronous import MISSING_POLICIES
from .batch import BatchTrial
from .health import DEFAULT_DIVERGENCE_THRESHOLD
from .decentralized import DecentralizedSimulator, DecentralizedTrace
from .engine import ProtocolRound
from .faults import (
    FaultSchedule,
    NetworkCondition,
    network_streams,
    sample_network_run,
)
from .topology import CommunicationTopology

__all__ = [
    "DelayedDecentralizedTrace",
    "DelayedDecentralizedSimulator",
    "run_decentralized_delayed",
]


@dataclass
class DelayedDecentralizedTrace(DecentralizedTrace):
    """Decentralized trace plus the gossip-under-delay diagnostics.

    Extends :class:`~repro.distsys.decentralized.DecentralizedTrace` (the
    ``(T + 1, S, n, d)`` trajectory and its consensus-gap / radius
    analytics) with the per-round asynchrony record: which agents stalled,
    how many of the ``E`` directed edges carried a usable message, and how
    stale the usable deliveries ran.
    """

    stalled: np.ndarray = field(default=None)          # (T, S, n) bool
    usable_edge_counts: np.ndarray = field(default=None)   # (T, S)
    staleness_sums: np.ndarray = field(default=None)       # (T, S)
    edges: int = 0

    def stalled_fraction(self) -> np.ndarray:
        """Per-trial per-round fraction of agents holding, ``(S, T)``."""
        return self.stalled.mean(axis=2).T

    def stalled_agent_rounds(self) -> np.ndarray:
        """Total (agent, round) stalls per trial, ``(S,)``."""
        return self.stalled.sum(axis=(0, 2))

    def missing_fraction(self) -> np.ndarray:
        """Per-trial per-round fraction of edges with no usable message.

        Shape ``(S, T)``; an edgeless topology (single agent) reports 0.
        """
        if self.edges == 0:
            return np.zeros((self.stalled.shape[1], self.stalled.shape[0]))
        return (self.edges - self.usable_edge_counts.T) / float(self.edges)

    def staleness_profile(self) -> np.ndarray:
        """Per-trial per-round mean staleness of the usable edges, ``(S, T)``.

        Rounds with no usable edge contribute ``nan`` (reduce with
        ``np.nanmean``), matching the asynchronous traces.
        """
        counts = self.usable_edge_counts.T.astype(float)
        with np.errstate(invalid="ignore"):
            return np.where(
                counts > 0, self.staleness_sums.T / counts, np.nan
            )


class DelayedDecentralizedSimulator(DecentralizedSimulator):
    """Decentralized robust DGD under per-edge delays, drops and timelines.

    Args:
        costs, topology, trials, constraint, schedule, initial_estimate,
            mixing, allow_disconnected: as for
            :class:`~repro.distsys.decentralized.DecentralizedSimulator`.
        conditions: :class:`~repro.distsys.faults.NetworkCondition`
            pipeline applied to every round's per-**edge** dispatches.
            Conditions are keyed on the edge enumeration of
            :meth:`~repro.distsys.topology.CommunicationTopology.directed_edges`
            (an ``agents=[...]`` subset names *edge indices*, see
            :meth:`~repro.distsys.topology.CommunicationTopology.edge_index`);
            each trial replays its own realization from the tagged
            ``(seed, net)`` stream, exactly like the asynchronous engines.
            Self-messages are local and never conditioned.
        fault_schedule: crash / crash-and-recover / Byzantine-from-round
            timeline applied per agent, shared by every trial of the
            batch.  Timeline-compromised agents join each trial's faulty
            set (trials then need an attack to speak for them); crashed
            agents dispatch nothing and hold their iterate — recovery
            resumes from the held iterate (decentralized recovery is
            inherently warm).
        staleness_bound: τ — a delivered edge message is usable while
            ``t - view ≤ τ``.  τ = 0 accepts only fresh messages (the
            synchronous limit on a zero-delay network).
        missing_policy: ``"masked"`` (default) keeps every filter's and
            the consensus mix's declared tolerance over the valid slots;
            ``"shrink"`` lowers each agent's tolerance by its
            neighborhood's missing count (the step-S1 belief that missing
            neighbors are the faulty ones).
    """

    _full_attendance_engine = None  # this engine represents silence

    def __init__(
        self,
        costs: Union[Sequence[CostFunction], CostStack],
        topology: CommunicationTopology,
        trials: Sequence[BatchTrial],
        constraint: ConvexSet,
        schedule: StepSchedule,
        initial_estimate: Sequence[float],
        mixing: bool = True,
        conditions: Sequence[NetworkCondition] = (),
        fault_schedule: Optional[FaultSchedule] = None,
        staleness_bound: int = 0,
        missing_policy: str = "masked",
        allow_disconnected: bool = False,
        divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    ):
        stack = costs if isinstance(costs, CostStack) else stack_costs(costs)
        self.fault_schedule = (
            fault_schedule or FaultSchedule()
        ).validate(stack.n)
        if staleness_bound < 0:
            raise ValueError("staleness bound must be non-negative")
        self.staleness_bound = int(staleness_bound)
        if missing_policy not in MISSING_POLICIES:
            raise ValueError(
                f"unknown missing-neighbor policy {missing_policy!r}; "
                f"known: {', '.join(MISSING_POLICIES)}"
            )
        self.missing_policy = missing_policy
        self.conditions: Tuple[NetworkCondition, ...] = tuple(conditions)

        # Timeline-compromised agents join every trial's faulty set before
        # the base engine validates and groups attacks; their compromise
        # *round* is kept separately so fabrications only land once live.
        since_map = self.fault_schedule.compromised_since()
        merged_trials: List[BatchTrial] = []
        base_faulty: List[Tuple[int, ...]] = []
        for trial in trials:
            declared = tuple(int(i) for i in trial.faulty_ids)
            base_faulty.append(declared)
            extra = sorted(set(since_map) - set(declared))
            if extra:
                trial = replace(
                    trial,
                    faulty_ids=tuple(sorted(set(declared) | set(since_map))),
                )
            merged_trials.append(trial)

        super().__init__(
            stack,
            topology,
            merged_trials,
            constraint,
            schedule,
            initial_estimate,
            mixing=mixing,
            allow_disconnected=allow_disconnected,
            divergence_threshold=divergence_threshold,
        )

        s = len(self.trials)
        #: first compromise round per (trial, agent); int64 — the
        #: never-compromised sentinel overflows a 32-bit default int.
        self._since = np.full(
            (s, self.n), np.iinfo(np.int64).max, dtype=np.int64
        )
        for index in range(s):
            for agent, start in since_map.items():
                self._since[index, agent] = start
            for agent in base_faulty[index]:
                self._since[index, agent] = 0  # from-the-start wins
        #: per-trial Byzantine count — the declared consensus/outvote
        #: tolerance (crashes are availability faults, not adversarial
        #: ones, and do not consume trim capacity).
        self._fault_counts = np.array(
            [len(f) for f in self._faulty], dtype=int
        )

        # Partial rounds run through the tolerance-parameterized masked
        # kernels regardless of topology regularity — reject filters
        # without one at construction, naming the offender.
        self._partial_groups = []
        for aggregator, kernel, grouped, idx in self._aggregator_groups:
            partial = masked_partial_kernel_for(aggregator)
            if partial is None:
                raise ValueError(
                    f"aggregator {aggregator_label(aggregator)} has no "
                    "masked neighborhood kernel; the delay-tolerant "
                    "decentralized engine supports mean, cwtm, median, "
                    "cge and cge_mean"
                )
            declared = int(getattr(aggregator, "f", 0))
            self._partial_groups.append(
                (aggregator, kernel, grouped, partial, declared, idx)
            )

        # Per-edge structure: the canonical (sender, receiver) enumeration.
        senders, receivers, slots = topology.directed_edges()
        self._edge_senders = senders
        self._edge_receivers = receivers
        self._edge_slots = slots
        self.edges = int(senders.size)
        #: position of each agent's own message in its padded neighborhood.
        self._self_slots = np.array(
            [
                int(np.flatnonzero(self.neighbor_index[i] == i)[0])
                for i in range(self.n)
            ]
        )
        self._expected_counts = self.neighbor_mask.sum(axis=1)  # (n,)
        self._begun = False

    # -- whole-run pre-sampling -------------------------------------------
    def _begin_run(self, iterations: int) -> None:
        if self._begun:
            raise RuntimeError(
                "DelayedDecentralizedSimulator is one-shot: construct a new "
                "engine per run (the pre-sampled horizon is not resumable)"
            )
        self._begun = True
        super()._begin_run(iterations)
        s = len(self.trials)
        t_total = iterations

        # Every trial's per-edge network realization, from its own tagged
        # stream — the asynchronous engines' convention, with the edge
        # list standing in for the n uplinks.
        self._net_delays = np.empty((t_total, s, self.edges), dtype=int)
        self._net_dropped = np.empty((t_total, s, self.edges), dtype=bool)
        for index, trial in enumerate(self.trials):
            net_rngs = network_streams(trial.seed, len(self.conditions))
            for condition, net_rng in zip(self.conditions, net_rngs):
                condition.begin_run(self.edges, net_rng)
            delays, dropped = sample_network_run(
                self.conditions, net_rngs, self.edges, t_total
            )
            self._net_delays[:, index, :] = delays
            self._net_dropped[:, index, :] = dropped

        self._active = self.fault_schedule.sample_run(
            None, self.n, t_total
        )  # (T, n)

        # Attack-scheduled silence (crash-style faults): a compromised
        # agent that silences dispatches on no out-edge that round.
        self._silenced = np.zeros((t_total, s, self.n), dtype=bool)
        for index, trial in enumerate(self.trials):
            if trial.attack is None or not trial.attack.may_be_silent:
                continue
            for agent in np.flatnonzero(
                self._since[index] < np.iinfo(np.int64).max
            ):
                start = int(self._since[index, agent])
                for t in range(start, t_total):
                    if trial.attack.silences(int(agent), t):
                        self._silenced[t, index, agent] = True

        # The per-edge padded queue: slot k holds the newest view (send
        # round) arriving in k rounds; -1 = empty.  Messages delayed past
        # τ can never be usable and are never enqueued.
        self._pending = np.full(
            (s, self.edges, self.staleness_bound + 1), -1, dtype=int
        )
        self._freshest = np.full((s, self.edges), -1, dtype=int)

        #: round-v gradients of every agent at its own iterate — the
        #: second payload channel the per-edge views gather against.
        self._grad_history = np.empty((t_total, s, self.n, self.d))

        self._stalled = np.zeros((t_total, s, self.n), dtype=bool)
        self._usable_edge_counts = np.zeros((t_total, s), dtype=int)
        self._staleness_sums = np.zeros((t_total, s))

    # -- protocol stages --------------------------------------------------
    def observe(self) -> ProtocolRound:
        """Dispatch on every live edge, deliver, and gather the views."""
        if not self._begun:
            raise RuntimeError(
                "drive DelayedDecentralizedSimulator through run(); "
                "stand-alone step() has no pre-sampled horizon"
            )
        t = self.iteration
        s = len(self.trials)

        gradients = self.stack.gradients_each(self.estimates)  # (S, n, d)
        self._grad_history[t] = gradients

        # Dispatch: live senders put this round's message on each out-edge
        # whose sampled delay keeps it usable; the send round t is newer
        # than every pending view, so overwrite wins.
        sends = self._active[t][None, :] & ~self._silenced[t]   # (S, n)
        sent_e = (
            sends[:, self._edge_senders] & ~self._net_dropped[t]
        )  # (S, E)
        delay_e = self._net_delays[t]
        enqueue = sent_e & (delay_e <= self.staleness_bound)
        trial_ix, edge_ix = np.nonzero(enqueue)
        self._pending[trial_ix, edge_ix, delay_e[trial_ix, edge_ix]] = t

        # Deliver slot 0 and shift the queue one round closer.
        self._freshest = np.maximum(self._freshest, self._pending[:, :, 0])
        self._pending[:, :, :-1] = self._pending[:, :, 1:]
        self._pending[:, :, -1] = -1

        usable_e = (self._freshest >= 0) & (
            t - self._freshest <= self.staleness_bound
        )  # (S, E)

        # Per-slot view rounds: own message always fresh; real edges carry
        # their last usable delivery; padding and dead edges stay -1.
        views = np.full((s, self.n, self.k), -1, dtype=int)
        views[:, np.arange(self.n), self._self_slots] = t
        views[:, self._edge_receivers, self._edge_slots] = np.where(
            usable_e, self._freshest, -1
        )
        valid = views >= 0

        # Gather both payload channels against the histories: one fancy
        # gather each, no per-message Python objects.
        safe_views = np.maximum(views, 0)
        trials_ix = np.arange(s)[:, None, None]
        sender_ix = self.neighbor_index[None, :, :]
        grad_views = self._grad_history[safe_views, trials_ix, sender_ix]
        est_views = self._trajectory[safe_views, trials_ix, sender_ix]

        return ProtocolRound(
            iteration=t,
            gradients=gradients,
            extras={
                "valid": valid,
                "views": views,
                "grad_views": grad_views,
                "est_views": est_views,
                "usable_edges": usable_e,
                "crashed": ~self._active[t],
            },
        )

    def fabricate(self, round: ProtocolRound) -> None:
        """Rewrite usable slots of currently-compromised senders.

        The attack context and stream consumption match the synchronous
        graph engine round for round (the adversary observes the *current*
        state and rewrites at delivery time — the worst case); fabrications
        only land on valid slots whose sender's compromise has started.
        """
        t = round.iteration
        gradients = round.gradients
        neighborhoods = round.extras["grad_views"]
        valid = round.extras["valid"]
        live = self._since <= t  # (S, n)
        for (
            attack,
            faulty,
            honest,
            omniscient,
            idx,
            scatter,
            receivers,
        ) in self._attack_groups:
            # Quarantined trials neither consume their attack stream nor
            # receive fabrications — their views stay honest and finite.
            active = self.guard.live(idx)
            if active.size == 0:
                continue
            context = DecentralizedAttackContext(
                iteration=t,
                reference_estimates=self.estimates[np.ix_(active, honest[:1])][:, 0],
                agent_estimates=self.estimates[active],
                faulty_ids=faulty.tolist(),
                true_gradients=gradients[np.ix_(active, faulty)],
                honest_gradients=(
                    gradients[np.ix_(active, honest)] if omniscient else None
                ),
                honest_ids=honest.tolist(),
                receivers=receivers,
                rngs=[self.rngs[i] for i in active],
            )
            fabricated = np.asarray(attack.fabricate_edges(context), dtype=float)
            expected = (active.size, faulty.size, self.n, self.d)
            if fabricated.shape != expected:
                raise RuntimeError(
                    f"attack {attack.name!r} returned shape {fabricated.shape},"
                    f" expected {expected}"
                )
            rows, slots, columns = scatter
            keep = (
                valid[active][:, rows, slots]
                & live[active][:, faulty[columns]]
            )
            current = neighborhoods[active[:, None], rows[None, :], slots[None, :]]
            neighborhoods[active[:, None], rows[None, :], slots[None, :]] = (
                np.where(keep[:, :, None], fabricated[:, columns, rows], current)
            )
        round.views = neighborhoods

    def aggregate(self, round: ProtocolRound) -> None:
        """Filter + mix through the missing-neighbor policy; mark stalls.

        The fully-attended / partial split is decided **per trial**, never
        batch-globally: a trial whose round delivered every slot takes the
        synchronous graph engine's exact kernels regardless of what its
        batch peers dropped, so each trial's trajectory is bit-identical
        whether it runs solo or inside any sweep composition (the same
        replayability contract every other batched engine keeps).
        """
        t = round.iteration
        s = len(self.trials)
        valid = round.extras["valid"]                   # (S, n, k)
        est_views = round.extras["est_views"]
        crashed = round.extras["crashed"]               # (n,)

        # Strict filters refuse non-finite valid slots per trial before any
        # kernel runs — refused trials freeze (aggregator_refused) and
        # their views are zeroed so the shared kernels stay warning-free.
        self._screen_strict_views(round.views, t)

        full_mask = np.broadcast_to(self.neighbor_mask, valid.shape)
        full_trials = (
            (valid == full_mask).all(axis=(1, 2)) & ~crashed.any()
        )  # (S,)
        if full_trials.all():
            # Every trial fully attended: the bit-for-bit degenerate path.
            round.aggregates = self._aggregate_views(round.views, t)
            if self.mixing:
                round.extras["mix"] = self._mix_neighborhoods(est_views)
            round.extras["stalled_agents"] = np.zeros((s, self.n), dtype=bool)
            return

        partial_trials = np.flatnonzero(~full_trials)
        counts = valid.sum(axis=2)                      # (S, n)
        missing = self._expected_counts[None, :] - counts
        shrink = self.missing_policy == "shrink"

        # Consensus/outvote tolerance per (trial, agent): the trial's
        # Byzantine count, shrunk with the neighborhood's shortfall under
        # the shrink policy (missing ≈ the faulty ones staying silent).
        declared = np.broadcast_to(
            self._fault_counts[:, None], (s, self.n)
        )
        trim = np.maximum(0, declared - missing) if shrink else declared

        # Fully-attended trials never stall (the construction-time degree
        # checks guarantee their floors); only partial trials can.
        stalled = np.zeros((s, self.n), dtype=bool)
        stalled[partial_trials] |= crashed[None, :]
        # Attendance must outvote the (possibly shrunk) tolerance.
        stalled[partial_trials] |= (counts < trim + 1)[partial_trials]
        if self.mixing:
            stalled[partial_trials] |= (counts - 2 * trim < 1)[partial_trials]

        # Per-group filter tolerance and its kernel floor.
        tolerance = np.zeros((s, self.n), dtype=int)
        for aggregator, _, _, _, declared_f, idx in self._partial_groups:
            tol = np.full((idx.size, self.n), declared_f, dtype=int)
            if shrink:
                tol = np.maximum(0, tol - missing[idx])
            tolerance[idx] = tol
            floor = masked_min_attendance_for_tolerance(aggregator, tol)
            stalled[idx] |= (counts[idx] < floor) & ~full_trials[idx, None]

        # Stalled agents hold; give them a self-only mask at zero
        # tolerance so the batched kernels stay defined, then discard.
        mask = valid & ~stalled[:, :, None]
        stall_trials, stall_agents = np.nonzero(stalled)
        mask[stall_trials, stall_agents, self._self_slots[stall_agents]] = True
        tolerance[stalled] = 0
        trim = np.where(stalled, 0, trim)

        updates = np.empty((s, self.n, self.d))
        for (
            aggregator,
            kernel,
            grouped,
            partial_kernel,
            _,
            idx,
        ) in self._partial_groups:
            exact = idx[full_trials[idx]]
            if exact.size:
                # This group's fully-attended trials: the exact kernels.
                if kernel is None:
                    folded = round.views[exact].reshape(
                        exact.size * self.n, self.k, self.d
                    )
                    updates[exact] = aggregator.aggregate_batch(
                        folded
                    ).reshape(exact.size, self.n, self.d)
                elif grouped is not None:
                    updates[exact] = grouped(round.views[exact])
                else:
                    updates[exact] = kernel(
                        round.views[exact], self.neighbor_mask
                    )
            sub = idx[~full_trials[idx]]
            if sub.size:
                folded_values = round.views[sub].reshape(
                    1, sub.size * self.n, self.k, self.d
                )
                folded_mask = mask[sub].reshape(sub.size * self.n, self.k)
                folded_tol = tolerance[sub].reshape(sub.size * self.n)
                updates[sub] = partial_kernel(
                    folded_values, folded_mask, folded_tol
                )[0].reshape(sub.size, self.n, self.d)
        round.aggregates = updates

        if self.mixing:
            mixed = np.empty((s, self.n, self.d))
            exact_trials = np.flatnonzero(full_trials)
            if exact_trials.size:
                mixed[exact_trials] = self._mix_subset(
                    est_views, exact_trials
                )
            mixed[partial_trials] = masked_trimmed_mean_batch(
                est_views[partial_trials].reshape(
                    1, partial_trials.size * self.n, self.k, self.d
                ),
                mask[partial_trials].reshape(
                    partial_trials.size * self.n, self.k
                ),
                trim[partial_trials].reshape(partial_trials.size * self.n),
            )[0].reshape(partial_trials.size, self.n, self.d)
            round.extras["mix"] = mixed
        round.extras["stalled_agents"] = stalled

    def _mix_subset(
        self, neighborhoods: np.ndarray, subset: np.ndarray
    ) -> np.ndarray:
        """Exact consensus mix of the fully-attended trials in ``subset``."""
        from ..aggregators.trimmed_mean import trimmed_mean_batch

        in_subset = np.zeros(len(self.trials), dtype=bool)
        in_subset[subset] = True
        mixed = np.empty((subset.size, self.n, self.d))
        position = np.cumsum(in_subset) - 1  # trial id -> row in ``mixed``
        for rep, gidx in self._mixing_groups:
            members = gidx[in_subset[gidx]]
            if not members.size:
                continue
            trim = len(self._faulty[rep])
            views = neighborhoods[members]
            if self.uniform:
                folded = views.reshape(members.size * self.n, self.k, self.d)
                mixed[position[members]] = trimmed_mean_batch(
                    folded, trim
                ).reshape(members.size, self.n, self.d)
            else:
                # Degree-bucketed dense dispatch, matching the parent's
                # _mix_neighborhoods so every exact mixing path agrees
                # bit-for-bit across the engine family.
                for degree, ids in self._degree_buckets:
                    dense = views[:, ids, :degree, :].reshape(
                        members.size * ids.size, degree, self.d
                    )
                    mixed[np.ix_(position[members], ids)] = (
                        trimmed_mean_batch(dense, trim).reshape(
                            members.size, ids.size, self.d
                        )
                    )
        return mixed

    def project(self, round: ProtocolRound) -> np.ndarray:
        """Projected update on the live agents; stalled agents hold.

        The *effective* candidates (stalled agents already holding) are
        screened per trial before the projection: a trial with a
        non-finite or diverged candidate freezes all its agents at their
        pre-update iterates, exactly as in the synchronous graph engine.
        """
        t = round.iteration
        etas = np.empty(len(self.trials))
        for sched, idx in self._schedule_groups:
            etas[idx] = sched(t)
        base = round.extras["mix"] if self.mixing else self.estimates
        candidates = base - etas[:, None, None] * round.aggregates
        stalled = round.extras["stalled_agents"]
        previous = self.estimates
        effective = np.where(stalled[:, :, None], previous, candidates)
        before = set(self.guard.records)
        held = self.guard.screen(t, previous, effective)
        for trial in sorted(self.guard.records.keys() - before):
            self._note_quarantined(
                [trial], t, str(self.guard.records[trial]["reason"])
            )
        projected = self._project_all(held)
        self.estimates = self.guard.hold(
            previous,
            np.where(stalled[:, :, None], previous, projected),
        )
        self.iteration += 1
        self._last_etas = etas

        usable_e = round.extras["usable_edges"]
        self._stalled[t] = stalled
        self._usable_edge_counts[t] = usable_e.sum(axis=1)
        self._staleness_sums[t] = np.where(
            usable_e, t - self._freshest, 0
        ).sum(axis=1)
        return self.estimates

    # -- run recording ----------------------------------------------------
    def _run_result(self) -> DelayedDecentralizedTrace:
        base = super()._run_result()
        return DelayedDecentralizedTrace(
            estimates=base.estimates,
            step_sizes=base.step_sizes,
            honest_ids=base.honest_ids,
            labels=base.labels,
            quarantined=base.quarantined,
            stalled=self._stalled,
            usable_edge_counts=self._usable_edge_counts,
            staleness_sums=self._staleness_sums,
            edges=self.edges,
        )

    def run(self, iterations: int) -> DelayedDecentralizedTrace:
        """Run ``iterations`` lockstep rounds and return the trace."""
        return super().run(iterations)


def run_decentralized_delayed(
    costs: Union[Sequence[CostFunction], CostStack],
    topology: CommunicationTopology,
    trials: Sequence[BatchTrial],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    mixing: bool = True,
    conditions: Sequence[NetworkCondition] = (),
    fault_schedule: Optional[FaultSchedule] = None,
    staleness_bound: int = 0,
    missing_policy: str = "masked",
    allow_disconnected: bool = False,
    divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
) -> DelayedDecentralizedTrace:
    """Convenience wrapper mirroring :func:`~repro.distsys.decentralized.run_decentralized`."""
    simulator = DelayedDecentralizedSimulator(
        costs=costs,
        topology=topology,
        trials=trials,
        constraint=constraint,
        schedule=schedule,
        initial_estimate=initial_estimate,
        mixing=mixing,
        conditions=conditions,
        fault_schedule=fault_schedule,
        staleness_bound=staleness_bound,
        missing_policy=missing_policy,
        allow_disconnected=allow_disconnected,
        divergence_threshold=divergence_threshold,
    )
    # Convenience runners report to the ambient recorder: a no-op
    # with the default NULL_RECORDER, a live stream under the CLI's
    # --telemetry-out / the orchestrator's worker recorders.
    return simulator.set_recorder(current_recorder()).run(iterations)
