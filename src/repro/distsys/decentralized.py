"""Decentralized robust DGD over an arbitrary communication graph.

The companion works to the source paper — "Byzantine Fault-Tolerance in
Peer-to-Peer Distributed Gradient-Descent" (arXiv:2101.12316) and
"Byzantine Fault-Tolerance in Decentralized Optimization under Minimal
Redundancy" (arXiv:2009.14763) — drop the trusted server *and* the complete
network: each agent ``i`` holds its own iterate ``x_i``, evaluates its local
gradient at ``x_i``, and hears only its in-neighborhood on a
:class:`~repro.distsys.topology.CommunicationTopology`.  Every honest agent
then takes the decentralized robust-DGD step those works pair together:

1. **consensus** — a trimmed-mean mix of its closed neighborhood's
   iterates (trim = the trial's fault count; plain averaging when
   fault-free), which drives honest agents toward agreement, and
2. **descent** — a *neighborhood-wise* gradient-filter over the ``k``
   gradient messages it received (own message included), applied from the
   mixed point through the projected update.

``mixing=False`` disables step 1 for ablations (each agent then descends
its filtered neighborhood gradients from its own iterate and honest agents
generally settle into persistent disagreement on sparse graphs).

This engine executes that protocol for ``S`` lockstep trials entirely as
tensor programs on the :class:`~repro.distsys.batch.BatchSimulator` kernel
layer — no per-agent Python inner loop:

* observation is one ``gradients_each`` einsum, ``(S, n, d)``;
* fabrication is per-edge: attacks receive a
  :class:`~repro.attacks.base.DecentralizedAttackContext` and may
  equivocate (different vectors on different out-edges), since no broadcast
  primitive forces consistency here;
* aggregation gathers the ``(S, n, k, d)`` closed-neighborhood stacks and
  runs either the standard ``aggregate_batch`` kernels with agents folded
  into the batch axis (regular topologies) or the masked kernels of
  :mod:`repro.aggregators.masked` (irregular topologies);
* the projected update applies to all ``S * n`` iterates at once.

On the **complete graph** every closed neighborhood is the full agent set,
so each honest agent's filtered update coincides with the server's — the
engine-equivalence suite pins complete-graph runs to
:class:`~repro.distsys.simulator.SynchronousSimulator` trajectories at
1e-9 across aggregator × attack × seed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..aggregators.masked import (
    aggregator_label,
    degree_grouped_kernel_for,
    masked_kernel_for,
)
from ..aggregators.trimmed_mean import trimmed_mean_batch
from ..attacks.base import DecentralizedAttackContext
from ..backend import xp
from ..functions.base import CostFunction
from ..functions.batched import CostStack, stack_costs
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from ..telemetry.recorder import current_recorder
from .batch import (
    BatchTrial,
    _config_key,
    group_indices,
    normalize_trace_rounds,
)
from .engine import (
    ProtocolEngine,
    ProtocolRound,
    validate_attack_plan,
    validate_faulty_ids,
    validate_initial_estimate,
)
from .health import (
    AGGREGATOR_REFUSED,
    DEFAULT_DIVERGENCE_THRESHOLD,
    TrialGuard,
    aggregation_round,
    nonfinite_rows,
)
from .topology import CommunicationTopology

__all__ = [
    "DecentralizedTrace",
    "DecentralizedSimulator",
    "run_decentralized",
]


@dataclass
class DecentralizedTrace:
    """Lazy trace of a decentralized execution.

    ``estimates`` stacks every agent's trajectory: shape ``(T + 1, S, n, d)``.
    """

    estimates: np.ndarray                   # (K, S, n, d); K = T + 1 dense
    step_sizes: np.ndarray                  # (T, S)
    honest_ids: List[Tuple[int, ...]]       # per trial
    labels: List[str] = field(default_factory=list)
    #: quarantine records ``{"trial", "round", "reason"}`` of frozen trials
    #: (reasons from :data:`repro.health.QUARANTINE_REASONS`); a frozen
    #: trial's agents all hold at their last healthy iterates.
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    #: absolute round of each stored snapshot under a windowed
    #: ``trace_rounds`` run; ``None`` = every round ``0..T`` is stored.
    rounds: Optional[np.ndarray] = None

    @property
    def iterations(self) -> int:
        """Number of completed iterations ``T``."""
        if self.rounds is not None:
            return int(self.rounds[-1])
        return self.estimates.shape[0] - 1

    @property
    def stored_rounds(self) -> np.ndarray:
        """Absolute round of each stored snapshot, shape ``(K,)``."""
        if self.rounds is not None:
            return self.rounds
        return np.arange(self.estimates.shape[0])

    @property
    def trials(self) -> int:
        """Batch width ``S``."""
        return self.estimates.shape[1]

    @property
    def agents(self) -> int:
        """Number of agents ``n``."""
        return self.estimates.shape[2]

    def agent_trajectory(self, trial: int, agent: int) -> np.ndarray:
        """Iterates ``x_agent^0 .. x_agent^T`` of one trial, ``(T + 1, d)``."""
        return self.estimates[:, trial, agent, :].copy()

    def final_honest_estimates(self, trial: int) -> np.ndarray:
        """Final iterate of every honest agent of ``trial``, ``(h, d)``."""
        honest = list(self.honest_ids[trial])
        return self.estimates[-1, trial, honest, :].copy()

    def _honest_groups(self) -> List[Tuple[List[int], np.ndarray]]:
        """Trials grouped by honest set, so per-trial reductions vectorize.

        Sweep traces repeat one honest set across hundreds of trials; a
        grouped gather turns the per-trial Python loop into one tensor
        reduction per distinct set without changing any float (the same
        norms reduce over the same elements).
        """
        order: Dict[Tuple[int, ...], List[int]] = {}
        for trial, honest in enumerate(self.honest_ids):
            order.setdefault(tuple(honest), []).append(trial)
        return [
            (list(honest), np.asarray(trials, dtype=int))
            for honest, trials in order.items()
        ]

    def consensus_gap(
        self, rounds: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Max pairwise honest-iterate distance per trial/iteration, ``(S, T+1)``.

        The decentralized analogue of the peer-to-peer consistency check:
        on the complete graph it stays exactly zero; on sparse graphs it
        measures how far the honest agents are from agreement.  ``rounds``
        restricts the reduction to those snapshot indices (``(S,
        len(rounds))``) — reports that only need the final iterate pass
        ``rounds=[-1]`` instead of reducing the whole trajectory.  Under a
        windowed ``trace_rounds`` run the indices address the *stored*
        snapshots; map absolute rounds through :attr:`stored_rounds`.
        """
        estimates = (
            self.estimates
            if rounds is None
            else self.estimates[np.asarray(rounds, dtype=int)]
        )
        t_sel, s, _, d = estimates.shape
        gaps = np.empty((s, t_sel))
        for honest, trials in self._honest_groups():
            points = estimates[:, trials][:, :, honest, :]
            h = len(honest)
            # Blockwise over the time axis: the pairwise difference tensor
            # is (B, G, h, h, d), so a long large-n trajectory never
            # materializes the full (T, G, h, h, d) temporary at once.
            per_round = max(1, trials.size * h * h * d)
            block = max(1, (1 << 24) // per_round)
            for start in range(0, t_sel, block):
                chunk = points[start : start + block]
                diffs = chunk[:, :, :, None, :] - chunk[:, :, None, :, :]
                gaps[trials, start : start + block] = (
                    np.linalg.norm(diffs, axis=4).max(axis=(2, 3)).T
                )
        return gaps

    def component_consensus_gaps(
        self, components: Sequence[Sequence[int]]
    ) -> List[np.ndarray]:
        """Per-component honest consensus gap series, ``(S, T + 1)`` each.

        ``components`` is a partition of the agents (typically
        :meth:`~repro.distsys.topology.CommunicationTopology.connected_components`).
        On a disconnected graph the *global* :meth:`consensus_gap` mixes
        agents that can never hear each other — a meaningless number; this
        restricts the max-pairwise-honest-distance to each component.  A
        component whose honest intersection is a singleton reports ``0.0``
        (nothing to disagree with); one with no honest agent reports
        ``nan``.
        """
        t_plus_1, s, _, _ = self.estimates.shape
        gaps: List[np.ndarray] = []
        for component in components:
            members = set(int(i) for i in component)
            out = np.zeros((s, t_plus_1))
            for trial in range(s):
                honest = [i for i in self.honest_ids[trial] if i in members]
                if not honest:
                    out[trial] = np.nan
                    continue
                points = self.estimates[:, trial, honest, :]
                diffs = points[:, :, None, :] - points[:, None, :, :]
                out[trial] = np.linalg.norm(diffs, axis=3).max(axis=(1, 2))
            gaps.append(out)
        return gaps

    def distances_to(
        self,
        target: Sequence[float],
        rounds: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Honest convergence radius per trial/iteration, ``(S, T + 1)``.

        The radius is ``max_{i honest} ||x_i^t - target||`` — the quantity
        the decentralized convergence statements bound.  ``rounds``
        restricts the reduction to those snapshot indices, as in
        :meth:`consensus_gap`.
        """
        tgt = np.asarray(target, dtype=float)
        estimates = (
            self.estimates
            if rounds is None
            else self.estimates[np.asarray(rounds, dtype=int)]
        )
        t_sel, s, _, _ = estimates.shape
        radii = np.empty((s, t_sel))
        for honest, trials in self._honest_groups():
            points = estimates[:, trials][:, :, honest, :]
            radii[trials] = np.linalg.norm(points - tgt, axis=3).max(axis=2).T
        return radii


class DecentralizedSimulator(ProtocolEngine):
    """Run ``S`` decentralized DGD trials over one topology in lockstep."""

    #: Engines that cannot represent a missing message reject
    #: crash-capable attacks; the delay-tolerant subclass can, and clears
    #: this label to accept them.
    _full_attendance_engine: Optional[str] = "decentralized engine"

    def __init__(
        self,
        costs: Union[Sequence[CostFunction], CostStack],
        topology: CommunicationTopology,
        trials: Sequence[BatchTrial],
        constraint: ConvexSet,
        schedule: StepSchedule,
        initial_estimate: Sequence[float],
        mixing: bool = True,
        allow_disconnected: bool = False,
        divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
        trace_rounds=None,
    ):
        if not trials:
            raise ValueError("need at least one trial")
        self.mixing = bool(mixing)
        self.stack: CostStack = (
            costs if isinstance(costs, CostStack) else stack_costs(costs)
        )
        self.topology = topology
        self.n = self.stack.n
        self.d = self.stack.dim
        if topology.n != self.n:
            raise ValueError(
                f"topology covers {topology.n} agents but {self.n} costs given"
            )
        if not topology.is_connected():
            # A disconnected graph (e.g. erdos_renyi_topology with
            # require_connected=False) makes the global consensus gap and
            # the decentralized convergence statements meaningless across
            # components — fail at construction, never mid-analysis.
            message = (
                f"topology {topology.name!r} is disconnected: honest agents "
                "in different components can never agree, so the global "
                "consensus_gap() and convergence radius are meaningless"
            )
            if not allow_disconnected:
                raise ValueError(
                    message + "; pass allow_disconnected=True to run anyway "
                    "and analyse components separately"
                )
            warnings.warn(message, RuntimeWarning, stacklevel=2)
        self.trials: List[BatchTrial] = list(trials)
        self.constraint = constraint

        self.neighbor_index, self.neighbor_mask = topology.neighborhoods()
        self.k = int(self.neighbor_index.shape[1])
        self.uniform = topology.is_regular
        # Irregular graphs dispatch per closed-in-degree bucket: each
        # bucket's prefix slice of the padded gather is dense, so the
        # folded kernels apply and only odd-degree buckets pay extra.
        self._degree_buckets = topology.degree_groups()

        default_initial = validate_initial_estimate(initial_estimate, self.d)
        starts = []
        self.rngs: List[np.random.Generator] = []
        self._schedules: List[StepSchedule] = []
        self._faulty: List[Tuple[int, ...]] = []
        self._omniscient: List[bool] = []
        for trial in self.trials:
            faulty = validate_faulty_ids(trial.faulty_ids, self.n)
            if len(faulty) >= self.n:
                raise ValueError("at least one agent must be honest")
            omniscient = validate_attack_plan(
                trial.attack,
                len(faulty),
                trial.omniscient_attack,
                full_attendance_engine=self._full_attendance_engine,
            )
            self._faulty.append(faulty)
            self._omniscient.append(bool(omniscient))
            start = (
                default_initial
                if trial.initial_estimate is None
                else validate_initial_estimate(trial.initial_estimate, self.d)
            )
            starts.append(start)
            self.rngs.append(np.random.default_rng(trial.seed))
            self._schedules.append(trial.schedule or schedule)

        # Every agent starts from the trial's initial estimate: (S, n, d).
        tiled = np.repeat(np.stack(starts)[:, None, :], self.n, axis=1)
        self.estimates = self._project_all(tiled)
        self.iteration = 0
        self.guard = TrialGuard(len(self.trials), divergence_threshold)
        # ``trace_rounds`` switches the (T + 1, S, n, d) trajectory to the
        # windowed mode: only the planned rounds (plus 0 and the horizon)
        # are stored — essential at large n, where the dense trajectory
        # dominates the run's memory.
        self._trace_plan = normalize_trace_rounds(trace_rounds)
        self._kept: Optional[np.ndarray] = None
        self._slot: Dict[int, int] = {}

        self._attack_groups = self._group_attacks()
        self._aggregator_groups = self._group_aggregators()
        self._mixing_groups = (
            group_indices(
                len(self.trials), lambda index: len(self._faulty[index])
            )
            if self.mixing
            else []
        )
        if self.mixing:
            # Fail at construction, not mid-run: every mixing trim level
            # must leave at least one iterate per closed neighborhood.
            smallest = int(self.topology.closed_in_degrees.min())
            for rep, _ in self._mixing_groups:
                trim = len(self._faulty[rep])
                if smallest - 2 * trim < 1:
                    raise ValueError(
                        f"closed in-degree {smallest} cannot support "
                        f"consensus trimming at f={trim}"
                    )
        self._schedule_groups = [
            (self._schedules[rep], idx)
            for rep, idx in group_indices(
                len(self.trials),
                lambda index: _config_key(self._schedules[index]),
            )
        ]

    # -- grouping ---------------------------------------------------------
    def _group_attacks(self):
        groups = []
        for rep, idx in group_indices(
            len(self.trials),
            lambda index: (
                _config_key(self.trials[index].attack),
                self._faulty[index],
                self._omniscient[index],
            ),
        ):
            trial = self.trials[rep]
            if trial.attack is None or not self._faulty[rep]:
                continue
            faulty = np.array(self._faulty[rep])
            honest = np.array(
                [i for i in range(self.n) if i not in set(self._faulty[rep])]
            )
            groups.append(
                (
                    trial.attack,
                    faulty,
                    honest,
                    self._omniscient[rep],
                    idx,
                    self._edge_scatter(faulty),
                    self._receiver_mask(faulty),
                )
            )
        return groups

    def _edge_scatter(self, faulty: np.ndarray):
        """Indices rewriting gathered neighborhoods with per-edge fabrications.

        Returns ``(receivers, slots, columns)``: slot ``slots[m]`` of
        receiver ``receivers[m]``'s neighborhood carries the message of
        faulty column ``columns[m]``.
        """
        hit = self.neighbor_mask & np.isin(self.neighbor_index, faulty)
        receivers, slots = np.nonzero(hit)
        column_of = {int(fid): c for c, fid in enumerate(faulty)}
        columns = np.array(
            [column_of[int(self.neighbor_index[r, s])] for r, s in zip(receivers, slots)],
            dtype=int,
        )
        return receivers, slots, columns

    def _receiver_mask(self, faulty: np.ndarray) -> np.ndarray:
        """Closed out-neighborhood delivery mask per faulty agent, ``(F, n)``."""
        mask = self.topology.adjacency[:, faulty].T.copy()
        mask[np.arange(faulty.size), faulty] = True
        return mask

    def _group_aggregators(self):
        groups = []
        for rep, idx in group_indices(
            len(self.trials),
            lambda index: _config_key(self.trials[index].aggregator),
        ):
            aggregator = self.trials[rep].aggregator
            kernel: Optional[Callable] = None
            grouped: Optional[Callable] = None
            if not self.uniform:
                kernel = masked_kernel_for(aggregator)
                if kernel is None:
                    raise ValueError(
                        f"aggregator {aggregator.name!r} has no masked "
                        "neighborhood kernel; irregular topologies support "
                        "mean, cwtm, median, cge and cge_mean"
                    )
                grouped = degree_grouped_kernel_for(
                    aggregator, self.neighbor_mask
                )
                try:
                    # Probe the path aggregate() will actually run.
                    if grouped is not None:
                        grouped(np.zeros((1, self.n, self.k, self.d)))
                    else:
                        kernel(
                            np.zeros((1, self.n, self.k, self.d)),
                            self.neighbor_mask,
                        )
                except ValueError as error:
                    raise ValueError(
                        f"aggregator {aggregator.name!r} cannot aggregate "
                        f"the neighborhoods of topology "
                        f"{self.topology.name!r}: {error}"
                    ) from error
            else:
                # Fail at construction, not mid-run: filters built for the
                # full system (n-derived parameters) must also fit the
                # closed neighborhoods they actually aggregate here.
                try:
                    aggregator.aggregate_batch(np.zeros((1, self.k, self.d)))
                except ValueError as error:
                    raise ValueError(
                        f"aggregator {aggregator.name!r} cannot aggregate "
                        f"the size-{self.k} closed neighborhoods of "
                        f"topology {self.topology.name!r}: {error}"
                    ) from error
            groups.append((aggregator, kernel, grouped, idx))
        return groups

    # -- helpers ----------------------------------------------------------
    def _project_all(self, estimates: np.ndarray) -> np.ndarray:
        s, n, d = estimates.shape
        # Constraint sets are plain-NumPy plugin code: cross the backend
        # boundary both ways around the projection.
        flat = self.constraint.project_batch(
            xp.to_numpy(estimates).reshape(s * n, d)
        )
        return xp.asarray(flat).reshape(s, n, d)

    # -- quarantine bookkeeping -------------------------------------------
    def _note_quarantined(
        self, quarantined: Sequence[int], round_index: int, reason: str
    ) -> None:
        """Emit one telemetry event per freshly frozen trial."""
        if not quarantined or not self.telemetry.enabled:
            return
        for trial in quarantined:
            self.telemetry.emit(
                "trial_quarantined",
                trial=int(trial),
                round=int(round_index),
                reason=reason,
                engine=type(self).__name__,
            )

    # -- protocol stages --------------------------------------------------
    def observe(self) -> ProtocolRound:
        """Every agent's local gradient at its own iterate: one einsum.

        Quarantined trials are masked out of the einsum — their rows stay
        zero placeholders that no later stage reads.
        """
        if self.guard.any_quarantined:
            s = len(self.trials)
            gradients = xp.zeros((s, self.n, self.d))
            live = self.guard.active
            gradients[live] = self.stack.gradients_each(self.estimates[live])
        else:
            gradients = self.stack.gradients_each(self.estimates)  # (S, n, d)
        return ProtocolRound(iteration=self.iteration, gradients=gradients)

    def fabricate(self, round: ProtocolRound) -> None:
        """Gather neighborhoods, then let each attack rewrite its edges.

        Each group's index set is intersected with the guard's active
        mask, so frozen trials neither consume their attack stream nor
        receive fabrications — their neighborhoods stay honest and finite.
        """
        gradients = round.gradients
        # (S, n, k, d): slot order is ascending sender id per receiver.
        neighborhoods = gradients[:, self.neighbor_index, :]
        for (
            attack,
            faulty,
            honest,
            omniscient,
            idx,
            scatter,
            receivers,
        ) in self._attack_groups:
            live = self.guard.live(idx)
            if live.size == 0:
                continue
            # Attacks are plain-NumPy plugin code: context observables
            # cross the backend boundary as base arrays.
            context = DecentralizedAttackContext(
                iteration=round.iteration,
                reference_estimates=xp.to_numpy(
                    self.estimates[np.ix_(live, honest[:1])][:, 0]
                ),
                agent_estimates=xp.to_numpy(self.estimates[live]),
                faulty_ids=faulty.tolist(),
                true_gradients=xp.to_numpy(gradients[np.ix_(live, faulty)]),
                honest_gradients=(
                    xp.to_numpy(gradients[np.ix_(live, honest)])
                    if omniscient
                    else None
                ),
                honest_ids=honest.tolist(),
                receivers=receivers,
                rngs=[self.rngs[i] for i in live],
            )
            fabricated = np.asarray(attack.fabricate_edges(context), dtype=float)
            expected = (live.size, faulty.size, self.n, self.d)
            if fabricated.shape != expected:
                raise RuntimeError(
                    f"attack {attack.name!r} returned shape {fabricated.shape},"
                    f" expected {expected}"
                )
            rows, slots, columns = scatter
            neighborhoods[live[:, None], rows[None, :], slots[None, :]] = (
                fabricated[:, columns, rows]
            )
        round.views = neighborhoods

    def aggregate(self, round: ProtocolRound) -> None:
        """Neighborhood-wise filtering: folded or masked batch kernels."""
        round.aggregates = self._aggregate_views(round.views, round.iteration)
        if self.mixing:
            round.extras["mix"] = self._mix_neighborhoods(
                self.estimates[:, self.neighbor_index, :]
            )

    def _screen_strict_views(
        self, views: np.ndarray, round_index: int
    ) -> None:
        """Quarantine trials whose strict filter faces non-finite slots.

        Mirrors the batched server engine's pre-check: a trial is refused
        (``aggregator_refused``, frozen at its pre-update iterates) exactly
        when any valid neighborhood slot it would aggregate is non-finite.
        The refused trials' views are zeroed so the shared kernel call
        stays warning-free; their outputs are discarded by the hold.
        """
        for aggregator, kernel, _grouped, idx in self._aggregator_groups:
            if not aggregator.quarantines_on_nonfinite:
                continue
            live = self.guard.live(idx)
            if live.size == 0:
                continue
            bad_slots = nonfinite_rows(views[live])  # (L, n, k)
            if kernel is not None:
                bad_slots = bad_slots & self.neighbor_mask[None]
            refused = bad_slots.any(axis=(1, 2))
            if refused.any():
                fresh = self.guard.quarantine(
                    live[refused], round_index, AGGREGATOR_REFUSED
                )
                self._note_quarantined(fresh, round_index, AGGREGATOR_REFUSED)
                views[live[refused]] = 0.0

    def _aggregate_views(
        self, views: np.ndarray, round_index: int
    ) -> np.ndarray:
        """Run every trial's filter over its ``(S, n, k, d)`` neighborhoods."""
        self._screen_strict_views(views, round_index)
        updates = xp.empty((len(self.trials), self.n, self.d))
        for aggregator, kernel, grouped, idx in self._aggregator_groups:
            group_views = views[idx]  # (S_g, n, k, d)
            with aggregation_round(round_index, aggregator_label(aggregator)):
                if kernel is None:
                    folded = group_views.reshape(
                        idx.size * self.n, self.k, self.d
                    )
                    updates[idx] = aggregator.aggregate_batch(folded).reshape(
                        idx.size, self.n, self.d
                    )
                elif grouped is not None:
                    updates[idx] = grouped(group_views)
                else:
                    updates[idx] = kernel(group_views, self.neighbor_mask)
        return updates

    def _mix_neighborhoods(self, neighborhoods: np.ndarray) -> np.ndarray:
        """Consensus step: trimmed mean of each closed neighborhood's iterates.

        The decentralized convergence statements pair robust gradient
        aggregation with an iterate-averaging (consensus) step — without it
        honest agents descend toward *different* neighborhood-local fixed
        points and never agree.  Trim level is each trial's fault count, so
        fault-free trials mix with the plain neighborhood mean (classic
        DGD consensus).  All agents — Byzantine included — are mixed from
        the iterates the engine tracks; the adversary here attacks the
        gradient channel (per-edge estimate fabrication is not modelled).
        The synchronous engine mixes the current iterates; the
        delay-tolerant subclass passes the *delivered* (possibly stale)
        neighborhood views instead.
        """
        mixed = xp.empty_like(self.estimates)
        for rep, idx in self._mixing_groups:
            trim = len(self._faulty[rep])
            views = neighborhoods[idx]
            if self.uniform:
                folded = views.reshape(idx.size * self.n, self.k, self.d)
                mixed[idx] = trimmed_mean_batch(folded, trim).reshape(
                    idx.size, self.n, self.d
                )
            else:
                # Same degree-bucketed dispatch as _aggregate_views: each
                # bucket's prefix slice is dense, so the folded trimmed
                # mean applies without the widest-pad masked kernel.
                for degree, ids in self._degree_buckets:
                    dense = views[:, ids, :degree, :].reshape(
                        idx.size * ids.size, degree, self.d
                    )
                    mixed[np.ix_(idx, ids)] = trimmed_mean_batch(
                        dense, trim
                    ).reshape(idx.size, ids.size, self.d)
        return mixed

    def project(self, round: ProtocolRound) -> np.ndarray:
        """Projected update on all ``S * n`` iterates at once.

        Pre-projection candidates are screened per trial: a trial with a
        non-finite or diverged candidate (any agent) freezes all its
        agents at their pre-update iterates, and every frozen trial is
        re-held after the projection so survivors are bit-identical to a
        run without the frozen trials.
        """
        etas = np.empty(len(self.trials))
        for sched, idx in self._schedule_groups:
            etas[idx] = sched(round.iteration)
        base = round.extras["mix"] if self.mixing else self.estimates
        candidates = base - etas[:, None, None] * round.aggregates
        previous = self.estimates
        before = set(self.guard.records)
        held = self.guard.screen(round.iteration, previous, candidates)
        for t in sorted(self.guard.records.keys() - before):
            self._note_quarantined(
                [t], round.iteration, str(self.guard.records[t]["reason"])
            )
        self.estimates = self.guard.hold(previous, self._project_all(held))
        self.iteration += 1
        self._last_etas = etas
        return self.estimates

    # -- run recording ----------------------------------------------------
    def _begin_run(self, iterations: int) -> None:
        s = len(self.trials)
        self._step_sizes = np.empty((iterations, s))
        if self._trace_plan is not None:
            # Windowed trace: only the planned rounds of this run get a
            # (S, n, d) snapshot slot — the dense trajectory is the memory
            # hot spot at large n.
            plan = self._trace_plan
            if isinstance(plan, int):
                kept = set(range(0, iterations + 1, plan))
            else:
                kept = {r for r in plan if r <= iterations}
            kept.add(0)
            kept.add(int(iterations))
            self._kept = np.array(sorted(kept), dtype=int)
            self._slot = {int(r): i for i, r in enumerate(self._kept)}
            self._trajectory = np.empty(
                (self._kept.size, s, self.n, self.d)
            )
        else:
            self._kept = None
            self._slot = {}
            self._trajectory = np.empty((iterations + 1, s, self.n, self.d))
        self._trajectory[0] = xp.to_numpy(self.estimates)
        self._cursor = 0

    def _record_step(self, estimates: np.ndarray) -> None:
        k = self._cursor
        self._step_sizes[k] = self._last_etas
        if self._kept is not None:
            slot = self._slot.get(k + 1)
            if slot is not None:
                self._trajectory[slot] = xp.to_numpy(estimates)
        else:
            self._trajectory[k + 1] = xp.to_numpy(estimates)
        self._cursor = k + 1

    def _run_result(self) -> DecentralizedTrace:
        honest_ids = [
            tuple(i for i in range(self.n) if i not in set(faulty))
            for faulty in self._faulty
        ]
        labels = [
            trial.label
            or f"{self.topology.name}/{trial.aggregator.name}"
            f"/{trial.attack.name if trial.attack else 'honest'}"
            for trial in self.trials
        ]
        return DecentralizedTrace(
            estimates=self._trajectory,
            step_sizes=self._step_sizes,
            honest_ids=honest_ids,
            labels=labels,
            quarantined=self.guard.summary(),
            rounds=None if self._kept is None else self._kept.copy(),
        )

    def run(self, iterations: int) -> DecentralizedTrace:
        """Run ``iterations`` lockstep rounds and return the trace."""
        return super().run(iterations)


def run_decentralized(
    costs: Union[Sequence[CostFunction], CostStack],
    topology: CommunicationTopology,
    trials: Sequence[BatchTrial],
    constraint: ConvexSet,
    schedule: StepSchedule,
    initial_estimate: Sequence[float],
    iterations: int,
    mixing: bool = True,
    allow_disconnected: bool = False,
    divergence_threshold: float = DEFAULT_DIVERGENCE_THRESHOLD,
    trace_rounds=None,
) -> DecentralizedTrace:
    """Convenience wrapper mirroring :func:`repro.distsys.batch.run_dgd_batch`."""
    simulator = DecentralizedSimulator(
        costs=costs,
        topology=topology,
        trials=trials,
        constraint=constraint,
        schedule=schedule,
        initial_estimate=initial_estimate,
        mixing=mixing,
        allow_disconnected=allow_disconnected,
        divergence_threshold=divergence_threshold,
        trace_rounds=trace_rounds,
    )
    # Convenience runners report to the ambient recorder: a no-op
    # with the default NULL_RECORDER, a live stream under the CLI's
    # --telemetry-out / the orchestrator's worker recorders.
    return simulator.set_recorder(current_recorder()).run(iterations)
