"""Peer-to-peer simulation of the server-based algorithm (Section 1.4).

Every agent runs a local replica of the server: at each iteration each agent
broadcasts its gradient to all peers through the OM(f) Byzantine broadcast of
:mod:`repro.distsys.broadcast` (requiring ``f < n/3``), so all honest agents
agree on the full ``(n, d)`` gradient stack — Byzantine equivocation is
neutralized by the primitive.  Each honest agent then applies the same
deterministic gradient-filter and projected update locally, keeping every
honest replica's estimate identical, which is exactly the simulation argument
the paper invokes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..aggregators.base import GradientAggregator
from ..aggregators.registry import make_aggregator
from ..attacks.base import AttackContext, ByzantineAttack
from ..functions.base import CostFunction
from ..optim.projections import ConvexSet
from ..optim.schedules import StepSchedule
from .broadcast import BroadcastAdversary, EquivocatingAdversary, byzantine_broadcast

__all__ = ["PeerToPeerSimulator"]


class PeerToPeerSimulator:
    """Complete-network peer-to-peer robust DGD with Byzantine broadcast."""

    def __init__(
        self,
        costs: Sequence[CostFunction],
        faulty_ids: Sequence[int],
        aggregator: Union[GradientAggregator, str],
        constraint: ConvexSet,
        schedule: StepSchedule,
        initial_estimate: Sequence[float],
        attack: Optional[ByzantineAttack] = None,
        broadcast_adversary: Optional[BroadcastAdversary] = None,
        seed: int = 0,
        enforce_threshold: bool = True,
    ):
        self.n = len(costs)
        self.costs = list(costs)
        self.faulty = frozenset(int(i) for i in faulty_ids)
        if any(i < 0 or i >= self.n for i in self.faulty):
            raise ValueError("faulty id out of range")
        self.f = len(self.faulty)
        if enforce_threshold and self.f > 0 and self.n <= 3 * self.f:
            raise ValueError(
                f"peer-to-peer simulation requires f < n/3 "
                f"(got n={self.n}, f={self.f})"
            )
        if self.faulty and attack is None:
            raise ValueError("faulty agents present but no attack given")
        self.attack = attack
        self.broadcast_adversary = broadcast_adversary or EquivocatingAdversary()
        if isinstance(aggregator, str):
            aggregator = make_aggregator(aggregator, self.n, self.f)
        self.aggregator = aggregator
        self.constraint = constraint
        self.schedule = schedule
        self.rng = np.random.default_rng(seed)
        start = constraint.project(np.asarray(initial_estimate, dtype=float))
        self.honest_ids: List[int] = [
            i for i in range(self.n) if i not in self.faulty
        ]
        #: per-honest-agent local replica of the estimate
        self.estimates: Dict[int, np.ndarray] = {
            i: start.copy() for i in self.honest_ids
        }
        self.iteration = 0

    def _broadcast_gradients(
        self, outgoing: Dict[int, np.ndarray]
    ) -> Dict[int, Dict[int, np.ndarray]]:
        """Each agent's view of everyone's gradient after OM(f).

        Returns ``views[i][j]`` — what honest agent ``i`` decided agent
        ``j``'s gradient to be.
        """
        views: Dict[int, Dict[int, np.ndarray]] = {
            i: {} for i in self.honest_ids
        }
        for j in range(self.n):
            decided = byzantine_broadcast(
                n=self.n,
                commander=j,
                value=outgoing[j],
                traitors=sorted(self.faulty),
                rounds=self.f,
                adversary=self.broadcast_adversary,
                rng=self.rng,
            )
            for i in self.honest_ids:
                if i == j:
                    views[i][j] = outgoing[j]  # own value known directly
                else:
                    views[i][j] = decided[i]
        return views

    def step(self) -> None:
        """One synchronous iteration across all honest replicas."""
        t = self.iteration
        # Honest replicas hold identical estimates; use any as the round's x_t.
        reference = self.estimates[self.honest_ids[0]]

        outgoing: Dict[int, np.ndarray] = {}
        honest_grads: Dict[int, np.ndarray] = {}
        for i in self.honest_ids:
            grad = self.costs[i].gradient(self.estimates[i])
            outgoing[i] = grad
            honest_grads[i] = grad
        if self.faulty:
            context = AttackContext(
                iteration=t,
                estimate=reference,
                faulty_ids=sorted(self.faulty),
                true_gradients={
                    i: self.costs[i].gradient(reference) for i in self.faulty
                },
                honest_gradients=(
                    honest_grads if self.attack.requires_omniscience else None
                ),
                rng=self.rng,
            )
            fabricated = self.attack.fabricate(context)
            for i in sorted(self.faulty):
                outgoing[i] = np.asarray(fabricated[i], dtype=float)

        views = self._broadcast_gradients(outgoing)
        eta = self.schedule(t)
        for i in self.honest_ids:
            stack = np.vstack([views[i][j] for j in range(self.n)])
            aggregate = self.aggregator.aggregate(stack)
            candidate = self.estimates[i] - eta * aggregate
            self.estimates[i] = self.constraint.project(candidate)
        self.iteration += 1

    def run(self, iterations: int) -> Dict[int, np.ndarray]:
        """Run ``iterations`` steps; returns the honest estimates."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        for _ in range(iterations):
            self.step()
        return {i: x.copy() for i, x in self.estimates.items()}

    def consistency_gap(self) -> float:
        """Max distance between any two honest replicas' estimates.

        Zero (exactly) when the Byzantine-broadcast simulation is working:
        agreement makes every honest replica see identical inputs.
        """
        points = [self.estimates[i] for i in self.honest_ids]
        gap = 0.0
        for a in range(len(points)):
            for b in range(a + 1, len(points)):
                gap = max(gap, float(np.linalg.norm(points[a] - points[b])))
        return gap
